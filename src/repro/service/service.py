"""The thread-safe search service: the only sanctioned query path.

:class:`SearchService` wraps an engine (the integrated
:class:`~repro.core.engine.SearchEngine`, or any object exposing
``execute(request)`` such as a bare
:class:`~repro.ir.engine.IrEngine`) and layers on everything a live
digital library needs that a naked engine lacks:

* **Admission control** — a token bucket plus a bounded wait queue
  (:mod:`repro.service.admission`); overload sheds requests with a
  :class:`~repro.errors.ServiceOverloadedError` carrying
  ``retry_after`` instead of queueing unboundedly.
* **Single-flight coalescing** — identical in-flight requests execute
  once (:mod:`repro.service.singleflight`), on top of the PR-3 query
  cache which only collapses repeats *over time*.
* **Reader–writer locking** — queries run concurrently with each
  other but serialize against every write path
  (``reindex``/``populate``/``recrawl``/``maintain``/snapshot
  restore), so no request ever reads a torn index.
* **Graceful drain** — :meth:`drain` finishes admitted requests and
  rejects new ones with :class:`~repro.errors.ServiceClosedError`.

Fully instrumented: ``service.request``/``service.write`` spans and
``service.admitted/shed/coalesced/rejected`` counters, an
``service.inflight`` gauge and queue/latency histograms.
"""

from __future__ import annotations

import threading

from repro.cache import policy_signature
from repro.errors import QueryError, ServiceClosedError, \
    ServiceOverloadedError
from repro.service.admission import AdmissionController, ServicePolicy
from repro.service.api import SearchRequest, SearchResponse
from repro.service.rwlock import RwLock
from repro.service.singleflight import SingleFlight
from repro.telemetry.runtime import get_telemetry

__all__ = ["SearchService", "ServicePolicy"]


def _generation_of(engine) -> object:
    """The engine's current index-generation stamp, best effort."""
    stamp = getattr(engine, "_generation", None)
    if callable(stamp):
        return stamp()
    return getattr(engine, "generation", None)


class SearchService:
    """An embeddable, concurrent front door over one search engine."""

    def __init__(self, engine, policy: ServicePolicy | None = None):
        self.engine = engine
        self.policy = policy or ServicePolicy()
        self._rw = RwLock()
        self._admission = AdmissionController(self.policy)
        self._flights = SingleFlight()
        self._lifecycle = threading.Condition()
        self._state = "running"
        self._inflight = 0
        self._stats_lock = threading.Lock()
        self._counters = {"admitted": 0, "shed": 0, "coalesced": 0,
                          "rejected": 0, "writes": 0}

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------

    def search(self, request: SearchRequest) -> SearchResponse:
        """Admit, coalesce and execute one request under the read lock."""
        if not isinstance(request, SearchRequest):
            raise QueryError("SearchService.search takes a SearchRequest "
                             f"(got {type(request).__name__}); build one "
                             "with repro.service.SearchRequest")
        telemetry = get_telemetry()
        with telemetry.tracer.span("service.request", mode=request.mode,
                                   trace_id=request.trace_id) as span:
            self._enter(telemetry)
            try:
                try:
                    queue_ms = self._admission.admit()
                except ServiceOverloadedError as error:
                    self._count("shed")
                    telemetry.metrics.counter("service.shed",
                                              reason=error.reason).add(1)
                    span.set_attributes(shed=True, reason=error.reason)
                    raise
                self._count("admitted")
                telemetry.metrics.counter("service.admitted").add(1)
                telemetry.metrics.histogram("service.queue_ms") \
                    .observe(queue_ms)
                try:
                    response, coalesced = self._run(request)
                finally:
                    self._admission.release()
                if coalesced:
                    self._count("coalesced")
                    telemetry.metrics.counter("service.coalesced").add(1)
                response = response.annotate(queue_ms=queue_ms,
                                             coalesced=coalesced)
                span.set_attributes(rows=len(response.hits),
                                    cache_hit=response.cache_hit,
                                    coalesced=coalesced,
                                    degraded=response.degraded)
                telemetry.metrics.histogram("service.request_ms") \
                    .observe(response.elapsed_ms)
                return response
            finally:
                self._leave(telemetry)

    def submit(self, query: str, mode: str = "conceptual",
               policy=None, trace_id: str | None = None) -> SearchResponse:
        """Convenience wrapper: build the request, run :meth:`search`."""
        from repro.core.config import ExecutionPolicy

        return self.search(SearchRequest(
            query=query, mode=mode,
            policy=policy if policy is not None else ExecutionPolicy(),
            trace_id=trace_id))

    def _run(self, request: SearchRequest
             ) -> tuple[SearchResponse, bool]:
        if not self.policy.coalesce:
            return self._execute(request), False
        key = (request.mode, request.query.strip(),
               policy_signature(request.policy),
               _generation_of(self.engine))
        return self._flights.run(key, lambda: self._execute(request))

    def _execute(self, request: SearchRequest) -> SearchResponse:
        with self._rw.read_locked():
            return self.engine.execute(request)

    # ------------------------------------------------------------------
    # the write side (serialized against all queries)
    # ------------------------------------------------------------------

    @property
    def _ir(self):
        return getattr(self.engine, "ir", self.engine)

    def _write(self, name: str, operation):
        telemetry = get_telemetry()
        with telemetry.tracer.span("service.write", operation=name):
            with self._rw.write_locked():
                outcome = operation()
        self._count("writes")
        telemetry.metrics.counter("service.writes", operation=name).add(1)
        return outcome

    def reindex(self, url: str, text: str) -> None:
        """Replace one document's index entry, atomically for readers."""
        self._write("reindex", lambda: self._ir.reindex(url, text))

    def remove(self, url: str) -> None:
        """Un-index one document, atomically for readers."""
        self._write("remove", lambda: self._ir.remove(url))

    def add_documents(self, documents, policy=None) -> None:
        """Bulk-index on the clustered backend (see DistributedIndex)."""
        self._write("add_documents",
                    lambda: self._ir.index.add_documents(documents, policy))

    def populate(self):
        return self._write("populate", self.engine.populate)

    def recrawl(self):
        return self._write("recrawl", self.engine.recrawl)

    def maintain(self):
        return self._write("maintain", self.engine.maintain)

    def snapshot(self, directory, keep: int = 3):
        """Checkpoint the engine; writes serialize against queries
        because saving materialises deferred IDF refreshes."""
        from repro.persistence import save_engine

        return self._write("snapshot",
                           lambda: save_engine(self.engine, directory,
                                               keep=keep))

    def restore(self, directory, *, verify: bool = True,
                on_corrupt: str = "raise") -> None:
        """Swap in an engine restored from a checkpoint, under the
        write lock — queries in flight finish against the old engine;
        the next admitted query sees the restored one."""
        from repro.persistence import load_engine

        def swap():
            self.engine = load_engine(
                directory, self.engine.schema, self.engine.server,
                extractor=self.engine.extractor, verify=verify,
                on_corrupt=on_corrupt)

        self._write("restore", swap)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def _enter(self, telemetry) -> None:
        with self._lifecycle:
            if self._state != "running":
                self._count("rejected")
                telemetry.metrics.counter("service.rejected").add(1)
                raise ServiceClosedError(
                    f"service is {self._state}; not accepting requests")
            self._inflight += 1
        telemetry.metrics.gauge("service.inflight").set(self._inflight)

    def _leave(self, telemetry) -> None:
        with self._lifecycle:
            self._inflight -= 1
            telemetry.metrics.gauge("service.inflight").set(self._inflight)
            self._lifecycle.notify_all()

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting, wait for in-flight requests; True if empty.

        Graceful shutdown: every request admitted before the drain
        finishes normally; every later arrival is rejected with
        :class:`ServiceClosedError`.  A timeout leaves the service in
        the ``draining`` state (still rejecting) with stragglers
        running.
        """
        with self._lifecycle:
            if self._state == "running":
                self._state = "draining"
            drained = self._lifecycle.wait_for(
                lambda: self._inflight == 0, timeout)
            if drained:
                self._state = "closed"
            return drained

    def close(self) -> None:
        self.drain()

    @property
    def state(self) -> str:
        return self._state

    def __enter__(self) -> "SearchService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # introspection (healthz / metrics endpoints, tests)
    # ------------------------------------------------------------------

    def _count(self, name: str) -> None:
        with self._stats_lock:
            self._counters[name] += 1

    def status(self) -> dict[str, object]:
        """A JSON-friendly liveness/throughput snapshot."""
        from repro.service.api import SCHEMA_VERSION

        with self._stats_lock:
            counters = dict(self._counters)
        with self._lifecycle:
            state = self._state
            inflight = self._inflight
        status = {
            "schema_version": SCHEMA_VERSION,
            "state": state,
            "inflight": inflight,
            "admission": self._admission.status(),
            "lock": self._rw.status(),
            "flights": self._flights.status(),
            "counters": counters,
        }
        # with the process backend attached, healthz reports per-replica
        # health so an operator sees failed/bootstrapping workers
        remote = getattr(getattr(self._ir, "index", None), "remote", None)
        if remote is not None:
            status["replicas"] = remote.status()
        return status
