"""The thread-safe search service: the only sanctioned query path.

:class:`SearchService` wraps an engine (the integrated
:class:`~repro.core.engine.SearchEngine`, or any object exposing
``execute(request)`` such as a bare
:class:`~repro.ir.engine.IrEngine`) and layers on everything a live
digital library needs that a naked engine lacks:

* **Admission control** — a token bucket plus a bounded wait queue
  (:mod:`repro.service.admission`); overload sheds requests with a
  :class:`~repro.errors.ServiceOverloadedError` carrying
  ``retry_after`` instead of queueing unboundedly.
* **Single-flight coalescing** — identical in-flight requests execute
  once (:mod:`repro.service.singleflight`), on top of the PR-3 query
  cache which only collapses repeats *over time*.
* **Reader–writer locking** — queries run concurrently with each
  other but serialize against every write path
  (``reindex``/``populate``/``recrawl``/``maintain``/snapshot
  restore), so no request ever reads a torn index.
* **Graceful drain** — :meth:`drain` finishes admitted requests and
  rejects new ones with :class:`~repro.errors.ServiceClosedError`.

Fully instrumented: ``service.request``/``service.write`` spans and
``service.admitted/shed/coalesced/rejected`` counters, an
``service.inflight`` gauge and queue/latency histograms.
"""

from __future__ import annotations

import threading

from repro.cache import policy_signature
from repro.errors import QueryError, ReproError, ServiceClosedError, \
    ServiceOverloadedError
from repro.service.admission import AdmissionController, ServicePolicy
from repro.service.api import SearchRequest, SearchResponse
from repro.service.rwlock import RwLock
from repro.service.singleflight import SingleFlight
from repro.telemetry.runtime import get_telemetry

__all__ = ["SearchService", "ServicePolicy"]


def _generation_of(engine) -> object:
    """The engine's current index-generation stamp, best effort."""
    stamp = getattr(engine, "_generation", None)
    if callable(stamp):
        return stamp()
    return getattr(engine, "generation", None)


class SearchService:
    """An embeddable, concurrent front door over one search engine.

    With a :class:`~repro.wal.WriteAheadLog` attached (``wal=``), every
    writer op is appended and fsynced *before* it is applied and
    acknowledged only after both — so a crash at any point after the
    acknowledgement loses nothing: recovery loads the newest snapshot
    and replays the log tail past its ``wal_seq``
    (:func:`repro.persistence.load_engine` with ``wal=``).
    """

    def __init__(self, engine, policy: ServicePolicy | None = None,
                 wal=None):
        self.engine = engine
        self.policy = policy or ServicePolicy()
        self._wal = wal
        # (generation, wal_seq) of checkpoints this service took, newest
        # last; log truncation follows the *oldest retained* checkpoint
        # so an on_corrupt="fallback" load still finds its tail
        self._checkpoints: list[tuple[int, int]] = []
        self._rw = RwLock()
        self._admission = AdmissionController(self.policy)
        self._flights = SingleFlight()
        self._lifecycle = threading.Condition()
        self._state = "running"
        self._inflight = 0
        self._stats_lock = threading.Lock()
        self._counters = {"admitted": 0, "shed": 0, "coalesced": 0,
                          "rejected": 0, "writes": 0}

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------

    def search(self, request: SearchRequest) -> SearchResponse:
        """Admit, coalesce and execute one request under the read lock."""
        if not isinstance(request, SearchRequest):
            raise QueryError("SearchService.search takes a SearchRequest "
                             f"(got {type(request).__name__}); build one "
                             "with repro.service.SearchRequest")
        telemetry = get_telemetry()
        with telemetry.tracer.span("service.request", mode=request.mode,
                                   trace_id=request.trace_id) as span:
            self._enter(telemetry)
            try:
                try:
                    queue_ms = self._admission.admit()
                except ServiceOverloadedError as error:
                    self._count("shed")
                    telemetry.metrics.counter("service.shed",
                                              reason=error.reason).add(1)
                    span.set_attributes(shed=True, reason=error.reason)
                    raise
                self._count("admitted")
                telemetry.metrics.counter("service.admitted").add(1)
                telemetry.metrics.histogram("service.queue_ms") \
                    .observe(queue_ms)
                try:
                    response, coalesced = self._run(request)
                finally:
                    self._admission.release()
                if coalesced:
                    self._count("coalesced")
                    telemetry.metrics.counter("service.coalesced").add(1)
                response = response.annotate(queue_ms=queue_ms,
                                             coalesced=coalesced)
                span.set_attributes(rows=len(response.hits),
                                    cache_hit=response.cache_hit,
                                    coalesced=coalesced,
                                    degraded=response.degraded)
                telemetry.metrics.histogram("service.request_ms") \
                    .observe(response.elapsed_ms)
                return response
            finally:
                self._leave(telemetry)

    def execute_bulk(self, requests) -> list:
        """Evaluate a whole batch under one admission and one lock hold.

        The amortized path for analytics workloads: the batch is
        admitted *once* (charging the token bucket per item, so rate
        limits stay limits on query load), occupies one execution
        slot, and takes the read lock once — hundreds of requests per
        call without hundreds of admission/lock round-trips.  Items
        evaluate sequentially in order; each result slot is either the
        item's :class:`SearchResponse` or — per-item error isolation —
        an :class:`~repro.service.api.ErrorResponse`, so one malformed
        sub-request never fails its batch.  Only batch-level failures
        raise: an empty or oversized batch
        (:data:`~repro.service.api.MAX_BULK_ITEMS`), shedding, or a
        draining service.

        Bulk items bypass single-flight coalescing: the batch already
        holds its slot, and its items execute back-to-back under one
        lock hold — there is no concurrent duplicate to coalesce with
        that could answer sooner.
        """
        from repro.service.api import MAX_BULK_ITEMS, ErrorResponse

        requests = list(requests)
        if not requests:
            raise QueryError("execute_bulk needs at least one request")
        if len(requests) > MAX_BULK_ITEMS:
            raise QueryError(
                f"bulk batch of {len(requests)} requests exceeds the "
                f"{MAX_BULK_ITEMS}-item cap; split the batch")
        telemetry = get_telemetry()
        with telemetry.tracer.span("service.bulk",
                                   items=len(requests)) as span:
            self._enter(telemetry)
            try:
                try:
                    queue_ms = self._admission.admit(weight=len(requests))
                except ServiceOverloadedError as error:
                    self._count("shed")
                    telemetry.metrics.counter("service.shed",
                                              reason=error.reason).add(1)
                    span.set_attributes(shed=True, reason=error.reason)
                    raise
                self._count("admitted")
                telemetry.metrics.counter("service.admitted").add(1)
                telemetry.metrics.histogram("service.queue_ms") \
                    .observe(queue_ms)
                results: list = []
                errors = 0
                try:
                    with self._rw.read_locked():
                        for request in requests:
                            try:
                                if not isinstance(request, SearchRequest):
                                    raise QueryError(
                                        "bulk items must be SearchRequests"
                                        f" (got "
                                        f"{type(request).__name__})")
                                response = self.engine.execute(request)
                                results.append(
                                    response.annotate(queue_ms=queue_ms))
                            except ReproError as error:
                                errors += 1
                                results.append(
                                    ErrorResponse.from_exception(error))
                finally:
                    self._admission.release()
                telemetry.metrics.counter("service.bulk_items") \
                    .add(len(requests))
                if errors:
                    telemetry.metrics.counter("service.bulk_errors") \
                        .add(errors)
                span.set_attributes(errors=errors)
                return results
            finally:
                self._leave(telemetry)

    def submit(self, query: str, mode: str = "conceptual",
               policy=None, trace_id: str | None = None) -> SearchResponse:
        """Convenience wrapper: build the request, run :meth:`search`."""
        from repro.core.config import ExecutionPolicy

        return self.search(SearchRequest(
            query=query, mode=mode,
            policy=policy if policy is not None else ExecutionPolicy(),
            trace_id=trace_id))

    def _run(self, request: SearchRequest
             ) -> tuple[SearchResponse, bool]:
        if not self.policy.coalesce:
            return self._execute(request), False
        # the shape token folds in schema_version and every v2 extra
        # (filters/facets/sort/pagination/boosts), so two requests only
        # coalesce when their full wire contract is identical
        key = (request.mode, request.query.strip(),
               policy_signature(request.policy),
               request.shape_token(),
               _generation_of(self.engine))
        return self._flights.run(key, lambda: self._execute(request))

    def _execute(self, request: SearchRequest) -> SearchResponse:
        with self._rw.read_locked():
            return self.engine.execute(request)

    # ------------------------------------------------------------------
    # the write side (serialized against all queries)
    # ------------------------------------------------------------------

    @property
    def _ir(self):
        return getattr(self.engine, "ir", self.engine)

    def _write(self, name: str, operation, *, log_params: dict | None = None):
        """Run one writer op under the write lock, WAL-logged first.

        ``log_params`` non-``None`` marks the op as replayable: with a
        WAL attached the record is appended *and fsynced* before
        ``operation()`` runs (log-before-apply, both under the write
        lock so log order is apply order), and the call returns — the
        acknowledgement — only after both.  ``None`` skips logging
        (snapshot/restore manage the log themselves).
        """
        telemetry = get_telemetry()
        with telemetry.tracer.span("service.write", operation=name):
            with self._rw.write_locked():
                if self._wal is not None and log_params is not None:
                    seq = self._wal.append(name, log_params)
                    if hasattr(self.engine, "wal_seq"):
                        self.engine.wal_seq = seq
                outcome = operation()
        self._count("writes")
        telemetry.metrics.counter("service.writes", operation=name).add(1)
        return outcome

    def reindex(self, url: str, text: str) -> None:
        """Replace one document's index entry, atomically for readers."""
        self._write("reindex", lambda: self._ir.reindex(url, text),
                    log_params={"url": url, "text": text})

    def remove(self, url: str) -> None:
        """Un-index one document, atomically for readers."""
        self._write("remove", lambda: self._ir.remove(url),
                    log_params={"url": url})

    def add_documents(self, documents, policy=None) -> None:
        """Bulk-index on the clustered backend (see DistributedIndex)."""
        documents = [(str(url), str(text)) for url, text in documents]
        self._write("add_documents",
                    lambda: self._ir.index.add_documents(documents, policy),
                    log_params={"documents": [list(pair)
                                              for pair in documents]})

    def populate(self):
        return self._write("populate", self.engine.populate, log_params={})

    def recrawl(self):
        return self._write("recrawl", self.engine.recrawl, log_params={})

    def maintain(self, batch_size: int | None = None):
        """Run pending maintenance; ``batch_size`` bounds each lock hold.

        Unbatched, one write-lock acquisition drains the whole queue —
        readers stall for the duration.  With ``batch_size`` the queue
        drains in bounded generation bumps: at most ``batch_size``
        scheduler tasks per write-lock acquisition, readers interleaving
        between batches.  Only the first batch logs a WAL record
        (replaying ``maintain`` drains the restored queue whole, which
        reaches the same state).
        """
        if batch_size is None:
            return self._write("maintain", self.engine.maintain,
                               log_params={})
        if batch_size < 1:
            raise QueryError(f"maintain batch_size must be >= 1, got "
                             f"{batch_size}")
        report = None
        while True:
            batch = self._write(
                "maintain", lambda: self.engine.maintain(limit=batch_size),
                log_params={} if report is None else None)
            report = batch if report is None else report.merge(batch)
            pending = getattr(self.engine, "maintenance_pending", None)
            if pending is None or pending() == 0:
                return report

    def snapshot(self, directory, keep: int = 3):
        """Checkpoint the engine; writes serialize against queries
        because saving materialises deferred IDF refreshes.

        With a WAL attached the manifest records the log position the
        checkpoint covers, then the log rotates onto a fresh segment
        and drops segments fully covered by the *oldest retained*
        checkpoint — a later fallback load of an older generation can
        still find its replay tail.
        """
        from repro.persistence import save_engine

        def checkpoint():
            wal_seq = self._wal.last_seq if self._wal is not None else None
            path = save_engine(self.engine, directory, keep=keep,
                               wal_seq=wal_seq)
            if self._wal is not None:
                generation = int(path.name)
                self._checkpoints.append((generation, wal_seq))
                del self._checkpoints[:-max(1, keep)]
                self._wal.checkpoint(self._checkpoints[0][1], generation)
            return path

        return self._write("snapshot", checkpoint)

    def restore(self, directory, *, verify: bool = True,
                on_corrupt: str = "raise") -> None:
        """Swap in an engine restored from a checkpoint, under the
        write lock — queries in flight finish against the old engine;
        the next admitted query sees the restored one.

        With a WAL attached, the log tail past the snapshot's
        ``wal_seq`` is replayed before the swap completes, so the
        restored engine includes every acknowledged write.  The
        single-flight table and the query caches flush on swap: a
        restored engine's generation stamps can coincide with the old
        one's, and a post-restore query must never coalesce onto or be
        served a pre-restore result.
        """
        from repro.persistence import load_engine

        def swap():
            old = self.engine
            self.engine = load_engine(
                directory, old.schema, old.server,
                extractor=old.extractor, verify=verify,
                on_corrupt=on_corrupt, wal=self._wal)
            flushed = self._flights.flush()
            invalidated = 0
            for owner in (old, self.engine):
                for cache in (getattr(owner, "query_cache", None),
                              getattr(getattr(owner, "ir", None),
                                      "query_cache", None)):
                    if cache is not None:
                        invalidated += cache.invalidate()
            telemetry = get_telemetry()
            telemetry.metrics.counter("service.restore_flushed_flights") \
                .add(flushed)
            telemetry.metrics.counter("service.restore_invalidated") \
                .add(invalidated)

        self._write("restore", swap)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def _enter(self, telemetry) -> None:
        with self._lifecycle:
            if self._state != "running":
                self._count("rejected")
                telemetry.metrics.counter("service.rejected").add(1)
                raise ServiceClosedError(
                    f"service is {self._state}; not accepting requests")
            self._inflight += 1
        telemetry.metrics.gauge("service.inflight").set(self._inflight)

    def _leave(self, telemetry) -> None:
        with self._lifecycle:
            self._inflight -= 1
            telemetry.metrics.gauge("service.inflight").set(self._inflight)
            self._lifecycle.notify_all()

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting, wait for in-flight requests; True if empty.

        Graceful shutdown: every request admitted before the drain
        finishes normally; every later arrival is rejected with
        :class:`ServiceClosedError`.  A timeout leaves the service in
        the ``draining`` state (still rejecting) with stragglers
        running.
        """
        with self._lifecycle:
            if self._state == "running":
                self._state = "draining"
            drained = self._lifecycle.wait_for(
                lambda: self._inflight == 0, timeout)
            if drained:
                self._state = "closed"
            return drained

    def close(self) -> None:
        self.drain()

    @property
    def state(self) -> str:
        return self._state

    def __enter__(self) -> "SearchService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # introspection (healthz / metrics endpoints, tests)
    # ------------------------------------------------------------------

    def _count(self, name: str) -> None:
        with self._stats_lock:
            self._counters[name] += 1

    def status(self) -> dict[str, object]:
        """A JSON-friendly liveness/throughput snapshot."""
        from repro.service.api import SCHEMA_VERSION

        with self._stats_lock:
            counters = dict(self._counters)
        with self._lifecycle:
            state = self._state
            inflight = self._inflight
        status = {
            "schema_version": SCHEMA_VERSION,
            "state": state,
            "inflight": inflight,
            "admission": self._admission.status(),
            "lock": self._rw.status(),
            "flights": self._flights.status(),
            "counters": counters,
        }
        if self._wal is not None:
            status["wal"] = self._wal.status()
        # with the process backend attached, healthz reports per-replica
        # health so an operator sees failed/bootstrapping workers
        remote = getattr(getattr(self._ir, "index", None), "remote", None)
        if remote is not None:
            status["replicas"] = remote.status()
        return status
