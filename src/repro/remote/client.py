"""Socket client for one node worker: deadlines, retries, typed errors.

A :class:`WorkerClient` opens one TCP connection per call — the RPCs
are chunky (a search, a bulk add), so connection reuse buys little and
per-call connections make cancellation trivial: closing the socket of
an abandoned hedge attempt makes its blocked ``recv`` fail immediately
instead of leaking a thread until the worker answers.

Failure taxonomy (what callers key replica-health decisions on):

* :class:`~repro.errors.RemoteTransportError` — connect refused/reset,
  deadline exceeded, torn frame.  The *worker* is suspect; the replica
  set marks it unhealthy and fails over.
* :class:`~repro.errors.RemoteProtocolError` — oversized or malformed
  frames.  A bug or corruption; never mere slowness.
* :class:`~repro.errors.RemoteError` — the worker executed the request
  and replied with a structured error (``ok: false``); ``kind`` names
  the worker-side exception type.  The worker is healthy.

Byte and call counts land on the ``remote.rpcs`` /
``remote.bytes_sent`` / ``remote.bytes_received`` telemetry counters.
"""

from __future__ import annotations

import socket
import time
from typing import Callable

from repro.errors import (RemoteError, RemoteTransportError)
from repro.remote.protocol import (MAX_FRAME_BYTES, PROTOCOL_VERSION,
                                   frame_size, recv_frame, send_frame)
from repro.telemetry.runtime import get_telemetry

__all__ = ["WorkerClient", "DEFAULT_CONNECT_TIMEOUT_S"]

#: Connect budget when the caller supplies no deadline: workers are
#: local processes, so a connect that takes longer than this is dead.
DEFAULT_CONNECT_TIMEOUT_S = 5.0


class WorkerClient:
    """Typed RPC calls against one worker address."""

    def __init__(self, host: str, port: int, name: str = "worker",
                 max_frame_bytes: int = MAX_FRAME_BYTES):
        self.host = host
        self.port = port
        self.name = name
        self.max_frame_bytes = max_frame_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkerClient({self.name}@{self.host}:{self.port})"

    def call(self, op: str, params: dict | None = None, *,
             deadline_s: float | None = None,
             on_socket: Callable[[socket.socket], None] | None = None
             ) -> dict:
        """One RPC: connect, send, await the reply, close.

        ``deadline_s`` bounds the *whole* call (connect + send + reply)
        measured from entry; ``None`` means the default connect budget
        and no read deadline.  ``on_socket`` receives the connected
        socket before the request is sent — the hedging executor uses
        it to retain a cancellation handle (closing the socket aborts a
        blocked read immediately).
        """
        request = {"v": PROTOCOL_VERSION, "op": op}
        if params:
            request.update(params)
        started = time.monotonic()
        connect_timeout = DEFAULT_CONNECT_TIMEOUT_S if deadline_s is None \
            else max(deadline_s, 0.001)
        metrics = get_telemetry().metrics
        metrics.counter("remote.rpcs").add(1)
        try:
            sock = socket.create_connection((self.host, self.port),
                                            timeout=connect_timeout)
        except socket.timeout as exc:
            raise RemoteTransportError(
                f"connect to {self.name} ({self.host}:{self.port}) "
                f"timed out") from exc
        except OSError as exc:
            raise RemoteTransportError(
                f"connect to {self.name} ({self.host}:{self.port}) "
                f"failed: {exc}") from exc
        try:
            if on_socket is not None:
                on_socket(sock)
            if deadline_s is not None:
                remaining = deadline_s - (time.monotonic() - started)
                if remaining <= 0:
                    raise RemoteTransportError(
                        f"deadline exceeded before sending to {self.name}")
                sock.settimeout(remaining)
            else:
                sock.settimeout(None)
            sent = send_frame(sock, request, self.max_frame_bytes)
            metrics.counter("remote.bytes_sent").add(sent)
            if deadline_s is not None:
                remaining = deadline_s - (time.monotonic() - started)
                if remaining <= 0:
                    raise RemoteTransportError(
                        f"deadline exceeded awaiting {self.name}")
                sock.settimeout(remaining)
            reply = recv_frame(sock, self.max_frame_bytes)
        finally:
            try:
                sock.close()
            except OSError:  # pragma: no cover - close never matters
                pass
        if reply is None:
            raise RemoteTransportError(
                f"worker {self.name} closed the connection before "
                f"replying to {op!r}")
        metrics.counter("remote.bytes_received").add(frame_size(reply))
        if reply.get("ok"):
            return reply.get("value", {})
        raise RemoteError(
            f"worker {self.name} failed {op!r}: "
            f"{reply.get('error', 'unknown error')}",
            kind=reply.get("kind"))

    def ping(self, deadline_s: float | None = 2.0) -> dict:
        return self.call("ping", deadline_s=deadline_s)

    def call_with_retry(self, op: str, params: dict | None = None, *,
                        deadline_s: float | None = None,
                        attempts: int = 3, backoff_s: float = 0.05
                        ) -> dict:
        """A write-path helper: retry transport failures a few times.

        Only :class:`RemoteTransportError` retries — an application
        error means the worker *executed* the request and replaying it
        could double-apply a write.
        """
        last: RemoteTransportError | None = None
        for attempt in range(max(1, attempts)):
            if attempt:
                time.sleep(backoff_s * (2 ** (attempt - 1)))
            try:
                return self.call(op, params, deadline_s=deadline_s)
            except RemoteTransportError as exc:
                last = exc
        assert last is not None
        raise last
