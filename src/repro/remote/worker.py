"""One shared-nothing node as its own process: the :class:`NodeWorker`.

The paper distributes TF fragments over "several database servers";
this module is one such server.  A worker owns a private
:class:`~repro.ir.relations.IrRelations` (its slice of the document
collection), keeps its idf-ordered fragment set memoized against the
relations' generation, and answers a small JSON RPC over the framing of
:mod:`repro.remote.protocol`:

======================  ====================================================
op                      effect
======================  ====================================================
``ping``                liveness probe (name, pid)
``status``              document count, generation, collection length
``add_documents``       index ``[url, text]`` pairs (write-locked)
``remove_document``     un-index one url
``refresh``             refresh idf + rebuild the fragment set eagerly
``search``              local top-N for a pushed term list + global idf —
                        request/reply reuse the frozen
                        :class:`~repro.service.api.SearchRequest` /
                        ``SearchResponse`` wire shapes
``checkpoint``          save the catalog to a path (snapshot bootstrap)
``bootstrap``           replace the relations from a catalog snapshot
``set_fault``           inject per-search latency (tests, benchmarks)
``shutdown``            reply, then stop serving
======================  ====================================================

Reads run concurrently; writes (``add_documents``, ``remove_document``,
``bootstrap``) serialize against them on the service layer's
write-preferring :class:`~repro.service.rwlock.RwLock` — the same
discipline the coordinator's :class:`~repro.service.SearchService`
applies, one level down.

Run standalone with ``python -m repro.remote.worker --port 0``: the
worker binds, prints one ``{"ready": true, "port": ...}`` JSON line on
stdout (the spawn handshake :mod:`repro.remote.replicas` reads), and
serves until ``shutdown`` or SIGTERM.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import sys
import threading
import time

from repro.errors import (QueryError, RemoteProtocolError,
                          RemoteTransportError, ReproError)
from repro.ir.fragmentation import FragmentSet, fragment_by_idf
from repro.ir.relations import IrRelations
from repro.ir.topn import topn_fragmented
from repro.monetdb.persistence import load_catalog, save_catalog
from repro.remote.protocol import (MAX_FRAME_BYTES, PROTOCOL_VERSION,
                                   recv_frame, send_frame)
from repro.service import api
from repro.service.rwlock import RwLock

__all__ = ["NodeWorker", "main"]


class NodeWorker:
    """A process-local node server: private relations behind socket RPC."""

    def __init__(self, name: str = "worker", host: str = "127.0.0.1",
                 port: int = 0, fragment_count: int = 4,
                 max_frame_bytes: int = MAX_FRAME_BYTES):
        self.name = name
        self.fragment_count = fragment_count
        self.max_frame_bytes = max_frame_bytes
        self.relations = IrRelations()
        self._rw = RwLock()
        self._fragments: FragmentSet | None = None
        self._fragments_generation = -1
        self._fragments_lock = threading.Lock()
        self._fault_delay_ms = 0.0
        self._closing = threading.Event()
        self._conn_threads: list[threading.Thread] = []
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        # short accept timeout: the serve loop polls the closing flag
        self._listener.settimeout(0.1)
        self.host, self.port = self._listener.getsockname()[:2]

    # -- serving ---------------------------------------------------------

    def serve_forever(self) -> None:
        """Accept connections until :meth:`close`; one thread each."""
        try:
            while not self._closing.is_set():
                try:
                    conn, _ = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break  # listener closed under us
                thread = threading.Thread(
                    target=self._serve_connection, args=(conn,),
                    name=f"repro-worker-{self.name}")
                thread.start()
                self._conn_threads.append(thread)
                self._reap_threads()
        finally:
            self._listener.close()
            for thread in self._conn_threads:
                thread.join(timeout=5.0)

    def serve_in_thread(self) -> threading.Thread:
        """Run the accept loop on a background thread (in-process tests)."""
        thread = threading.Thread(target=self.serve_forever,
                                  name=f"repro-worker-{self.name}-acceptor")
        thread.start()
        return thread

    def close(self) -> None:
        """Stop accepting; in-flight connections finish their frame."""
        self._closing.set()

    def _reap_threads(self) -> None:
        self._conn_threads = [thread for thread in self._conn_threads
                              if thread.is_alive()]

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            # a stuck client must not pin the connection thread forever
            conn.settimeout(300.0)
            while not self._closing.is_set():
                try:
                    request = recv_frame(conn, self.max_frame_bytes)
                except (RemoteProtocolError, RemoteTransportError):
                    # a torn or malformed frame poisons the stream; the
                    # only safe reaction is to drop the connection
                    return
                if request is None:
                    return  # clean EOF
                reply = self._dispatch(request)
                try:
                    send_frame(conn, reply, self.max_frame_bytes)
                except (RemoteProtocolError, RemoteTransportError):
                    return  # peer went away (e.g. a cancelled hedge)
                if request.get("op") == "shutdown":
                    self.close()
                    return

    # -- dispatch --------------------------------------------------------

    def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) \
            else None
        if handler is None or (isinstance(op, str) and op.startswith("_")):
            return self._error(QueryError(f"unknown worker op {op!r}"))
        version = request.get("v", PROTOCOL_VERSION)
        if version != PROTOCOL_VERSION:
            return self._error(QueryError(
                f"unsupported protocol version {version!r}; this worker "
                f"speaks {PROTOCOL_VERSION}"))
        try:
            return {"v": PROTOCOL_VERSION, "ok": True,
                    "value": handler(request)}
        except ReproError as error:
            return self._error(error)
        except (KeyError, TypeError, ValueError, OSError) as error:
            return self._error(error)

    @staticmethod
    def _error(error: Exception) -> dict:
        return {"v": PROTOCOL_VERSION, "ok": False,
                "error": str(error) or type(error).__name__,
                "kind": type(error).__name__}

    # -- ops -------------------------------------------------------------

    def _op_ping(self, request: dict) -> dict:
        return {"name": self.name, "pid": os.getpid()}

    def _op_status(self, request: dict) -> dict:
        with self._rw.read_locked():
            return {
                "name": self.name,
                "pid": os.getpid(),
                "documents": self.relations.document_count(),
                "generation": self.relations.generation,
                "collection_length": self.relations.collection_length,
            }

    def _op_add_documents(self, request: dict) -> dict:
        documents = request["documents"]
        with self._rw.write_locked():
            for url, text in documents:
                self.relations.add_document(url, text)
            return {"count": len(documents),
                    "generation": self.relations.generation}

    def _op_remove_document(self, request: dict) -> dict:
        with self._rw.write_locked():
            self.relations.remove_document(request["url"])
            return {"generation": self.relations.generation}

    def _op_refresh(self, request: dict) -> dict:
        with self._rw.read_locked():
            self.relations.refresh_idf()
            self._fragment_set()
            return {"generation": self.relations.generation}

    def _op_search(self, request: dict) -> dict:
        search = api.SearchRequest.from_dict(request["request"])
        terms = request["terms"]
        global_idf = request["idf"]
        started = time.perf_counter()
        delay_ms = self._fault_delay_ms
        if delay_ms > 0:
            time.sleep(delay_ms / 1000.0)  # injected straggler latency
        with self._rw.read_locked():
            local_terms = []
            for term in terms:
                oid = self.relations.term_oid(term)
                if oid is not None:
                    local_terms.append(oid)
            fragments = _patched(self._fragment_set(), self.relations,
                                 global_idf)
            local = topn_fragmented(fragments, local_terms,
                                    search.policy.n,
                                    prune=search.policy.prune, refine=True,
                                    plan_cache=search.policy.plan_cache)
            pairs = [(self.relations.doc_url(doc), score)
                     for doc, score in local.ranking]
            generation = self.relations.generation
        response = api.response_from_ranking(
            search, pairs, api.elapsed_ms_since(started),
            tuples_touched=local.tuples_read)
        reply = response.to_dict()
        reply["accounting"] = {
            "tuples_read": local.tuples_read,
            "fragments_read": local.fragments_read,
            "stopped_early": local.stopped_early,
            "generation": generation,
        }
        return reply

    def _op_checkpoint(self, request: dict) -> dict:
        with self._rw.read_locked():
            self.relations.refresh_idf()
            records = save_catalog(self.relations.catalog, request["path"])
            return {"records": records,
                    "generation": self.relations.generation}

    def _op_bootstrap(self, request: dict) -> dict:
        catalog = load_catalog(request["path"])
        restored = IrRelations(catalog)
        restored.generation = int(request.get("generation", 0))
        with self._rw.write_locked():
            self.relations = restored
            self._fragments = None
            self._fragments_generation = -1
            return {"documents": restored.document_count(),
                    "generation": restored.generation}

    def _op_set_fault(self, request: dict) -> dict:
        self._fault_delay_ms = float(request.get("delay_ms", 0.0))
        return {"delay_ms": self._fault_delay_ms}

    def _op_shutdown(self, request: dict) -> dict:
        return {"name": self.name, "stopping": True}

    # -- fragments -------------------------------------------------------

    def _fragment_set(self) -> FragmentSet:
        """The memoized fragment set (caller holds at least a read lock)."""
        generation = self.relations.generation
        with self._fragments_lock:
            if self._fragments is None \
                    or self._fragments_generation != generation:
                self._fragments = fragment_by_idf(self.relations,
                                                  self.fragment_count)
                self._fragments_generation = generation
            return self._fragments


def _patched(fragments: FragmentSet, relations: IrRelations,
             global_idf: dict) -> FragmentSet:
    """The fragment view scored against the pushed global idf weights."""
    from repro.ir.distributed import patch_fragment_idf
    return patch_fragment_idf(fragments, relations, global_idf)


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro.remote.worker``."""
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="one shared-nothing search node (socket RPC)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="listen port; 0 picks an ephemeral port")
    parser.add_argument("--name", default="worker")
    parser.add_argument("--fragments", type=int, default=4)
    args = parser.parse_args(argv)
    try:
        worker = NodeWorker(name=args.name, host=args.host, port=args.port,
                            fragment_count=args.fragments)
    except OSError as error:
        print(json.dumps({"ready": False, "error": str(error)}),
              flush=True)
        return 1
    # the spawn handshake: exactly one JSON line, then silence
    print(json.dumps({"ready": True, "name": worker.name,
                      "host": worker.host, "port": worker.port,
                      "pid": os.getpid()}), flush=True)
    signal.signal(signal.SIGTERM, lambda *_: worker.close())
    signal.signal(signal.SIGINT, lambda *_: worker.close())
    worker.serve_forever()
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
