"""Length-prefixed JSON framing for the worker RPC.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON; a connection carries a sequence of frames in each
direction.  The format deliberately has no compression, no streaming
and no negotiation — a shared-nothing node exchanges small requests
(term lists, pushed idf weights) and small replies (a top-N ranking),
and the failure modes that matter are the blunt ones:

* a **torn frame** — the stream ends inside the header or body
  (worker crashed, connection reset) — raises
  :class:`~repro.errors.RemoteTransportError`,
* an **oversized frame** — the length prefix exceeds ``max_bytes`` —
  raises :class:`~repro.errors.RemoteProtocolError` *before* any body
  byte is read, so a corrupt or hostile peer cannot make the receiver
  allocate unboundedly,
* **malformed JSON** or a non-object payload — also a
  :class:`~repro.errors.RemoteProtocolError`,
* a **read deadline** — the socket timeout expires — surfaces as
  :class:`~repro.errors.RemoteTransportError` tagged ``deadline``.

Every request and reply object carries ``"v": PROTOCOL_VERSION`` so a
future frame-format change is detectable instead of mysterious.  Byte
counts flow onto the ``remote.bytes_sent`` / ``remote.bytes_received``
telemetry counters at the call sites (client and worker), keeping this
module free of side effects.
"""

from __future__ import annotations

import json
import socket
import struct

from repro.errors import RemoteProtocolError, RemoteTransportError

__all__ = ["PROTOCOL_VERSION", "MAX_FRAME_BYTES", "send_frame",
           "recv_frame", "frame_size"]

#: Version stamp carried by every RPC request and reply object.
PROTOCOL_VERSION = 1

#: Default bound on one frame's body.  Large enough for a bulk
#: ``add_documents`` shipment, small enough that a corrupt length
#: prefix cannot exhaust memory.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


def frame_size(payload: dict) -> int:
    """Exact wire size of a payload's frame (header + encoded body).

    Framing is deterministic (compact separators, UTF-8), so a receiver
    can recompute how many bytes a decoded frame occupied on the wire —
    used for the ``remote.bytes_received`` telemetry counter without
    threading byte counts through every call site.
    """
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return _HEADER.size + len(body)


def send_frame(sock: socket.socket, payload: dict,
               max_bytes: int = MAX_FRAME_BYTES) -> int:
    """Serialize ``payload`` and write one frame; returns bytes written.

    Oversized payloads are refused on the *sending* side too, so a
    well-behaved peer never even emits a frame the receiver must kill
    the connection over.
    """
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > max_bytes:
        raise RemoteProtocolError(
            f"refusing to send oversized frame: {len(body)} bytes "
            f"(max {max_bytes})")
    try:
        sock.sendall(_HEADER.pack(len(body)) + body)
    except socket.timeout as exc:
        raise RemoteTransportError(
            f"send deadline exceeded: {exc}") from exc
    except OSError as exc:
        raise RemoteTransportError(f"send failed: {exc}") from exc
    return _HEADER.size + len(body)


def _recv_exactly(sock: socket.socket, count: int, what: str) -> bytes:
    chunks = []
    received = 0
    while received < count:
        try:
            chunk = sock.recv(min(65536, count - received))
        except socket.timeout as exc:
            raise RemoteTransportError(
                f"read deadline exceeded while reading {what}") from exc
        except OSError as exc:
            raise RemoteTransportError(
                f"connection failed while reading {what}: {exc}") from exc
        if not chunk:
            raise RemoteTransportError(
                f"torn frame: stream ended after {received}/{count} "
                f"bytes of {what}")
        chunks.append(chunk)
        received += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket,
               max_bytes: int = MAX_FRAME_BYTES) -> dict | None:
    """Read one frame; returns its payload, or ``None`` on clean EOF.

    Clean EOF — the stream ending exactly on a frame boundary — is the
    peer's orderly goodbye and is not an error; EOF anywhere *inside* a
    frame is a torn frame and raises.
    """
    try:
        first = sock.recv(1)
    except socket.timeout as exc:
        raise RemoteTransportError(
            "read deadline exceeded while waiting for a frame") from exc
    except OSError as exc:
        raise RemoteTransportError(
            f"connection failed while waiting for a frame: {exc}") from exc
    if not first:
        return None
    header = first + _recv_exactly(sock, _HEADER.size - 1, "frame header")
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        raise RemoteProtocolError(
            f"oversized frame announced: {length} bytes "
            f"(max {max_bytes})")
    body = _recv_exactly(sock, length, "frame body")
    try:
        payload = json.loads(body)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise RemoteProtocolError(f"malformed frame body: {exc}") from exc
    if not isinstance(payload, dict):
        raise RemoteProtocolError(
            f"frame payload must be a JSON object, got "
            f"{type(payload).__name__}")
    return payload
