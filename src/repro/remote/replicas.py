"""N-way replica placement, spawning, repair and snapshot bootstrap.

A :class:`ReplicaSet` gives every cluster node ``replication_factor``
process-per-node workers (spawned as ``python -m repro.remote.worker``
subprocesses).  The coordinator's in-process node relations stay the
*authoritative* copy — every write is applied locally first and then
fanned to all of the node's replicas (dual-write), which is what makes
the ``backend`` knob switchable per query: the thread backend reads
the local copies, the process backend reads the replicas, and the two
are kept bit-identical.

Consistency is generation-stamped: each write's RPC reply carries the
replica's post-write generation, which must equal the local node's.  A
replica that misses a write (transport failure) or diverges (generation
mismatch) is marked unhealthy and queries route around it; a later
:meth:`repair` replaces it with a fresh worker **bootstrapped from the
newest committed snapshot** (written through
:class:`~repro.persistence.snapshot.SnapshotStore`'s atomic
generation-directory protocol) and caught up by replaying the per-node
op-log past the snapshot's sequence number — the cluster keeps serving
throughout.

Every spawned worker registers in a module-level live-process registry
so test fixtures can assert no worker outlives its test (the process
analogue of the thread-leak checks in ``tests/cluster``).
"""

from __future__ import annotations

import json
import os
import select
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

import repro
from repro.errors import (RemoteError, RemoteTransportError, SnapshotError,
                          WorkerStartupError)
from repro.ir.relations import IrRelations
from repro.monetdb.persistence import save_catalog
from repro.persistence.atomic import atomic_write_text
from repro.persistence.snapshot import SnapshotStore
from repro.remote.client import WorkerClient
from repro.telemetry.runtime import get_telemetry
from repro.wal.record import Record

__all__ = ["ReplicaSet", "WorkerHandle", "live_worker_pids"]

#: pid -> Popen of every worker this process spawned and has not yet
#: reaped; test conftests assert it drains back to empty.
_LIVE_WORKERS: dict[int, subprocess.Popen] = {}
_REGISTRY_LOCK = threading.Lock()

CATALOG_FILE = "catalog.jsonl"
META_FILE = "meta.json"


def live_worker_pids() -> list[int]:
    """Pids of spawned workers still registered (leak detection)."""
    with _REGISTRY_LOCK:
        for pid, proc in list(_LIVE_WORKERS.items()):
            if proc.poll() is not None:
                _LIVE_WORKERS.pop(pid, None)
        return sorted(_LIVE_WORKERS)


@dataclass
class WorkerHandle:
    """One replica: its subprocess, its RPC client, its health."""

    node: str
    slot: int
    process: subprocess.Popen
    client: WorkerClient
    healthy: bool = True
    generation: int = field(default=0, repr=False)

    @property
    def name(self) -> str:
        return self.client.name

    def alive(self) -> bool:
        return self.process.poll() is None

    def usable(self) -> bool:
        return self.healthy and self.alive()


class ReplicaSet:
    """All replicas of all nodes, plus the machinery to keep them honest."""

    def __init__(self, nodes: dict[str, IrRelations], *,
                 replication_factor: int = 2, fragment_count: int = 4,
                 snapshot_root: str | Path | None = None,
                 spawn_timeout_s: float = 30.0,
                 rpc_deadline_s: float = 60.0):
        if replication_factor < 1:
            raise ValueError("replication_factor must be >= 1, "
                             f"got {replication_factor}")
        self.nodes = nodes
        self.replication_factor = replication_factor
        self.fragment_count = fragment_count
        self.spawn_timeout_s = spawn_timeout_s
        self.rpc_deadline_s = rpc_deadline_s
        self._tmpdir: tempfile.TemporaryDirectory | None = None
        if snapshot_root is None:
            self._tmpdir = tempfile.TemporaryDirectory(
                prefix="repro-replicas-")
            snapshot_root = self._tmpdir.name
        self.snapshot_root = Path(snapshot_root)
        self.replicas: dict[str, list[WorkerHandle]] = {}
        # the per-node op-log speaks the WAL's record format
        # (repro.wal.record.Record), so replica bootstrap replay and
        # coordinator crash recovery share one replay vocabulary
        self._oplog: dict[str, list[Record]] = {name: [] for name in nodes}
        self._seq: dict[str, int] = {name: 0 for name in nodes}
        self._slots: dict[str, int] = {name: 0 for name in nodes}
        self._rr: dict[str, int] = {}
        self._lock = threading.Lock()
        self._started = False

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Checkpoint every node and spawn + bootstrap its replicas."""
        if self._started:
            return
        for node in self.nodes:
            path, meta = self._checkpoint_from_local(node)
            handles = []
            for _ in range(self.replication_factor):
                handle = self._spawn(node)
                self._bootstrap(handle, node, path, meta)
                handles.append(handle)
            self.replicas[node] = handles
        self._started = True

    def stop(self) -> None:
        """Shut every worker down; best-effort RPC, then SIGTERM/SIGKILL."""
        for handles in self.replicas.values():
            for handle in handles:
                self._stop_handle(handle)
        self.replicas = {}
        self._started = False
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def _stop_handle(self, handle: WorkerHandle) -> None:
        if handle.alive():
            try:
                handle.client.call("shutdown", deadline_s=2.0)
            except RemoteError:
                pass
            handle.process.terminate()
        try:
            handle.process.wait(timeout=5.0)
        except subprocess.TimeoutExpired:  # pragma: no cover - stuck worker
            handle.process.kill()
            handle.process.wait(timeout=5.0)
        if handle.process.stdout is not None:
            handle.process.stdout.close()
        with _REGISTRY_LOCK:
            _LIVE_WORKERS.pop(handle.process.pid, None)

    # -- spawning --------------------------------------------------------

    def _spawn(self, node: str) -> WorkerHandle:
        """Launch one worker subprocess and wait for its READY line."""
        with self._lock:
            slot = self._slots[node]
            self._slots[node] += 1
        name = f"{node}/r{slot}"
        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parents[1])
        extra = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src_root if not extra \
            else src_root + os.pathsep + extra
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.remote.worker",
             "--port", "0", "--name", name,
             "--fragments", str(self.fragment_count)],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            env=env, text=True)
        with _REGISTRY_LOCK:
            _LIVE_WORKERS[proc.pid] = proc
        try:
            info = self._await_ready(proc, name)
        except WorkerStartupError:
            with _REGISTRY_LOCK:
                _LIVE_WORKERS.pop(proc.pid, None)
            raise
        client = WorkerClient(info["host"], info["port"], name=name)
        get_telemetry().metrics.counter("remote.workers_spawned").add(1)
        return WorkerHandle(node=node, slot=slot, process=proc,
                            client=client)

    def _await_ready(self, proc: subprocess.Popen, name: str) -> dict:
        deadline = time.monotonic() + self.spawn_timeout_s
        stream = proc.stdout
        assert stream is not None
        line = None
        while time.monotonic() < deadline:
            ready, _, _ = select.select([stream], [], [], 0.1)
            if ready:
                line = stream.readline()
                break
            if proc.poll() is not None:
                break
        if not line:
            proc.kill()
            proc.wait(timeout=5.0)
            raise WorkerStartupError(
                f"worker {name} did not report readiness within "
                f"{self.spawn_timeout_s:g}s")
        try:
            info = json.loads(line)
        except json.JSONDecodeError as exc:
            proc.kill()
            proc.wait(timeout=5.0)
            raise WorkerStartupError(
                f"worker {name} wrote a malformed ready line: "
                f"{line!r}") from exc
        if not info.get("ready"):
            proc.wait(timeout=5.0)
            raise WorkerStartupError(
                f"worker {name} failed to start: "
                f"{info.get('error', 'unknown error')}")
        return info

    # -- snapshots & bootstrap ------------------------------------------

    def _store(self, node: str) -> SnapshotStore:
        return SnapshotStore(self.snapshot_root / node.replace("/", "_"))

    def _checkpoint_from_local(self, node: str) -> tuple[Path, dict]:
        """Checkpoint the *authoritative* local copy of one node."""
        local = self.nodes[node]
        local.refresh_idf()
        store = self._store(node)
        generation, path = store.begin()
        save_catalog(local.catalog, path / CATALOG_FILE)
        meta = {"generation": local.generation, "seq": self._seq[node]}
        # atomic: a crash mid-write must not leave a committed-looking
        # generation with a torn meta file
        atomic_write_text(path / META_FILE, json.dumps(meta))
        store.commit(generation)
        get_telemetry().metrics.counter("remote.checkpoints").add(1)
        self._truncate_oplog(node, meta["seq"])
        return path, meta

    def checkpoint(self, node: str) -> tuple[Path, dict]:
        """Checkpoint one node from a healthy replica (shared-nothing).

        Falls back to the coordinator's local copy when no replica is
        usable — the snapshot contents are identical either way, the
        difference is only who pays the serialization work.
        """
        source = next((handle for handle in self.replicas.get(node, ())
                       if handle.usable()), None)
        if source is None:
            return self._checkpoint_from_local(node)
        store = self._store(node)
        generation, path = store.begin()
        try:
            value = source.client.call(
                "checkpoint", {"path": str(path / CATALOG_FILE)},
                deadline_s=self.rpc_deadline_s)
        except RemoteTransportError:
            self.note_failure(source)
            return self._checkpoint_from_local(node)
        meta = {"generation": value["generation"], "seq": self._seq[node]}
        atomic_write_text(path / META_FILE, json.dumps(meta))
        store.commit(generation)
        get_telemetry().metrics.counter("remote.checkpoints").add(1)
        self._truncate_oplog(node, meta["seq"])
        return path, meta

    def _truncate_oplog(self, node: str, seq: int) -> int:
        """Drop op-log entries a committed checkpoint covers.

        Without this the log grows without bound between repairs.  The
        trade-off is that *older* retained checkpoints can no longer be
        caught up from the log — bootstrapping from one then diverges
        (generation mismatch) and :meth:`repair` falls back to a fresh
        local checkpoint, which needs no tail at all.
        """
        with self._lock:
            log = self._oplog[node]
            kept = [record for record in log if record.seq > seq]
            dropped = len(log) - len(kept)
            self._oplog[node] = kept
        if dropped:
            get_telemetry().metrics.counter("remote.oplog_truncated",
                                            node=node).add(dropped)
        return dropped

    def _newest_checkpoint(self, node: str) -> tuple[Path, dict] | None:
        store = self._store(node)
        try:
            candidates = store.candidates()
        except SnapshotError:
            return None
        for generation in candidates:
            path = store.path(generation)
            catalog = path / CATALOG_FILE
            meta_path = path / META_FILE
            if not catalog.is_file() or not meta_path.is_file():
                continue
            try:
                meta = json.loads(meta_path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue
            return path, meta
        return None

    def _bootstrap(self, handle: WorkerHandle, node: str,
                   path: Path, meta: dict) -> None:
        """Restore a worker from a snapshot, then replay the op-log tail."""
        value = handle.client.call(
            "bootstrap",
            {"path": str(path / CATALOG_FILE),
             "generation": meta["generation"]},
            deadline_s=self.rpc_deadline_s)
        handle.generation = int(value["generation"])
        with self._lock:
            tail = [record for record in self._oplog[node]
                    if record.seq > meta["seq"]]
        for record in tail:
            reply = handle.client.call_with_retry(
                record.op, record.params, deadline_s=self.rpc_deadline_s)
            handle.generation = int(reply.get("generation",
                                              handle.generation))
        expected = self.nodes[node].generation
        if handle.generation != expected:
            raise RemoteError(
                f"replica {handle.name} diverged after bootstrap: "
                f"generation {handle.generation} != local {expected}")
        handle.healthy = True
        get_telemetry().metrics.counter("remote.bootstraps").add(1)

    # -- health & repair -------------------------------------------------

    def note_failure(self, handle: WorkerHandle) -> None:
        """Mark one replica unhealthy (transport-level failure only)."""
        if handle.healthy:
            handle.healthy = False
            get_telemetry().metrics.counter("remote.replica_unhealthy").add(1)

    def healthy_replicas(self, node: str) -> list[WorkerHandle]:
        return [handle for handle in self.replicas.get(node, ())
                if handle.usable()]

    def route(self, node: str) -> list[WorkerHandle]:
        """Healthy replicas of a node, rotated for read balancing.

        The first entry is the preferred primary for this read; the
        rest are failover / hedging targets in order.
        """
        handles = self.healthy_replicas(node)
        if not handles:
            return []
        with self._lock:
            turn = self._rr[node] = self._rr.get(node, -1) + 1
        pivot = turn % len(handles)
        return handles[pivot:] + handles[:pivot]

    def needs_repair(self) -> list[str]:
        """Nodes with at least one dead or unhealthy replica slot."""
        return [node for node, handles in self.replicas.items()
                if any(not handle.usable() for handle in handles)]

    def repair(self, node: str | None = None) -> int:
        """Replace dead/unhealthy replicas; returns replicas replaced.

        Each replacement bootstraps from the newest committed snapshot
        (taking a fresh one from a healthy peer — or the local copy —
        when none exists) and catches up via the op-log, all while the
        node's surviving replicas keep serving reads.
        """
        names = [node] if node is not None else list(self.replicas)
        replaced = 0
        for name in names:
            handles = self.replicas.get(name, [])
            for index, handle in enumerate(handles):
                if handle.usable():
                    continue
                self._stop_handle(handle)
                checkpoint = self._newest_checkpoint(name)
                if checkpoint is None:
                    checkpoint = self.checkpoint(name)
                replacement = self._spawn(name)
                try:
                    self._bootstrap(replacement, name, *checkpoint)
                except RemoteError:
                    # bootstrap from a *fresh* local checkpoint before
                    # giving up: the snapshot may predate a long op-log
                    # tail whose replay diverged
                    fresh = self._checkpoint_from_local(name)
                    self._bootstrap(replacement, name, *fresh)
                handles[index] = replacement
                replaced += 1
        return replaced

    def expand(self, node: str, count: int = 1) -> int:
        """Grow one node's replica set online; returns replicas added.

        The rebalance path: each new worker bootstraps from the newest
        committed snapshot and catches up by replaying the op-log tail
        past the snapshot's sequence number — the node's existing
        replicas keep serving reads and taking writes throughout, no
        stop-the-world refresh.
        """
        if node not in self.nodes:
            raise RemoteError(f"unknown node {node!r}")
        if count < 1:
            raise ValueError(f"expand count must be >= 1, got {count}")
        checkpoint = self._newest_checkpoint(node)
        if checkpoint is None:
            checkpoint = self.checkpoint(node)
        added = 0
        for _ in range(count):
            handle = self._spawn(node)
            try:
                self._bootstrap(handle, node, *checkpoint)
            except RemoteError:
                # the snapshot predates a truncated op-log tail: take a
                # fresh checkpoint (needs no tail) and bootstrap from it
                checkpoint = self._checkpoint_from_local(node)
                self._bootstrap(handle, node, *checkpoint)
            self.replicas.setdefault(node, []).append(handle)
            added += 1
        get_telemetry().metrics.counter("remote.replicas_expanded",
                                        node=node).add(added)
        return added

    # -- writes ----------------------------------------------------------

    def apply_write(self, node: str, op: str, params: dict) -> None:
        """Log a write and fan it to every replica of the node.

        The caller has already applied the write to the authoritative
        local relations; this method never raises — a replica that
        misses the write or disagrees on the resulting generation is
        marked unhealthy and healed later by :meth:`repair` (the op is
        in the log, so nothing is lost).
        """
        local_generation = self.nodes[node].generation
        with self._lock:
            self._seq[node] += 1
            self._oplog[node].append(Record(self._seq[node], op,
                                            dict(params)))
        for handle in self.replicas.get(node, ()):
            if not handle.alive():
                self.note_failure(handle)
                continue
            try:
                reply = handle.client.call_with_retry(
                    op, params, deadline_s=self.rpc_deadline_s)
            except RemoteTransportError:
                self.note_failure(handle)
                continue
            except RemoteError:
                # the worker executed and refused — its state diverged
                # from the authoritative copy; replace it
                self.note_failure(handle)
                continue
            handle.generation = int(reply.get("generation",
                                              handle.generation))
            if handle.generation != local_generation:
                self.note_failure(handle)

    def broadcast(self, op: str, params: dict | None = None) -> None:
        """Send a non-mutating op (e.g. ``refresh``) to every replica."""
        for handles in self.replicas.values():
            for handle in handles:
                if not handle.usable():
                    continue
                try:
                    handle.client.call(op, params or {},
                                       deadline_s=self.rpc_deadline_s)
                except RemoteTransportError:
                    self.note_failure(handle)
                except RemoteError:
                    pass

    # -- introspection & test hooks -------------------------------------

    def set_fault(self, node: str, delay_ms: float, slot: int = 0) -> None:
        """Inject per-search latency into one replica (tests, benchmarks)."""
        handle = self.replicas[node][slot]
        handle.client.call("set_fault", {"delay_ms": delay_ms},
                           deadline_s=5.0)

    def kill_replica(self, node: str, slot: int = 0) -> int:
        """Hard-kill one replica's process (fault injection); returns pid."""
        handle = self.replicas[node][slot]
        pid = handle.process.pid
        handle.process.kill()
        handle.process.wait(timeout=5.0)
        return pid

    def status(self) -> dict:
        """Per-replica health, the shape ``/healthz`` reports."""
        with self._lock:
            oplog = {node: len(log) for node, log in self._oplog.items()}
        return {
            "replication_factor": self.replication_factor,
            "oplog": oplog,
            "nodes": {
                node: [{
                    "name": handle.name,
                    "slot": handle.slot,
                    "pid": handle.process.pid,
                    "port": handle.client.port,
                    "healthy": handle.usable(),
                    "generation": handle.generation,
                } for handle in handles]
                for node, handles in self.replicas.items()
            },
        }
