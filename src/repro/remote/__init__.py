"""Shared-nothing process backend: workers, replicas, hedged reads.

The paper runs its distributed experiment on "several database
servers" — separate processes on separate hosts, not threads in one
address space.  This package supplies that execution level:

* :mod:`repro.remote.protocol` — length-prefixed JSON frames with
  typed torn/oversized/malformed failure modes,
* :mod:`repro.remote.worker` — one node as a subprocess
  (``python -m repro.remote.worker``) serving search/write/bootstrap
  RPCs over its private :class:`~repro.ir.relations.IrRelations`,
* :mod:`repro.remote.client` — per-call connections with connect/read
  deadlines and the transport/protocol/application error taxonomy,
* :mod:`repro.remote.replicas` — N-way placement, dual-write
  generation reconciliation, snapshot checkpoint/bootstrap and repair,
* :mod:`repro.remote.executor` — the read path: rotation, failover and
  hedged requests behind the same :class:`NodeOutcome` contract as the
  thread backend's :class:`~repro.cluster.executor.Executor`.

``DistributedIndex.start_remote`` wires it all to the existing cluster
API; ``ExecutionPolicy(backend="process")`` routes a query through it.
"""

__all__ = [
    "PROTOCOL_VERSION", "MAX_FRAME_BYTES", "send_frame", "recv_frame",
    "frame_size", "NodeWorker", "WorkerClient", "ReplicaSet",
    "WorkerHandle", "live_worker_pids", "RemoteExecutor", "RemoteCall",
]

# Lazy exports (PEP 562), not convenience: ``python -m
# repro.remote.worker`` imports this package before anything else, and
# an eager import of the executor here would enter the repro.cluster →
# repro.core → repro.ir import cycle from its one unsupported starting
# point.  Deferring until first attribute access keeps every entry
# order working.
_EXPORTS = {
    "PROTOCOL_VERSION": "repro.remote.protocol",
    "MAX_FRAME_BYTES": "repro.remote.protocol",
    "send_frame": "repro.remote.protocol",
    "recv_frame": "repro.remote.protocol",
    "frame_size": "repro.remote.protocol",
    "NodeWorker": "repro.remote.worker",
    "WorkerClient": "repro.remote.client",
    "ReplicaSet": "repro.remote.replicas",
    "WorkerHandle": "repro.remote.replicas",
    "live_worker_pids": "repro.remote.replicas",
    "RemoteExecutor": "repro.remote.executor",
    "RemoteCall": "repro.remote.executor",
}


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute "
                             f"{name!r}")
    import importlib
    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
