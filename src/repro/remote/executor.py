"""Read-path fan-out over replicas: failover, hedging, typed outcomes.

:class:`RemoteExecutor` is the process-backend twin of
:class:`~repro.cluster.executor.Executor`: it takes one task per node
and returns one :class:`~repro.cluster.executor.NodeOutcome` per node,
so :meth:`DistributedIndex.query <repro.ir.distributed.DistributedIndex.query>`
can merge either backend's outcomes with the same code.  A task here is
a :class:`RemoteCall` — an RPC op plus params — because the executor,
not the caller, decides *which replica* answers it:

* the node's healthy replicas are rotated (:meth:`ReplicaSet.route`)
  and the first is tried;
* a replica that fails **transport-wise** is marked unhealthy and the
  call fails over to the next replica (``remote.failovers``);
* under ``policy.hedge_after_ms``, a replica that has not answered in
  time gets company: the same call is re-issued to the next replica
  (``remote.hedges_issued``) and the first success wins
  (``remote.hedges_won`` when the hedge beats the primary).  The loser
  is cancelled by closing its socket, which aborts its blocked read
  immediately — no thread outlives the call;
* ``policy.node_deadline_ms`` bounds the whole per-node effort from
  fan-out start, and ``retries``/``backoff_ms`` wrap the above in
  full-jitter exponential retry rounds, mirroring the thread executor.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from dataclasses import dataclass, field
from queue import Empty, SimpleQueue

from repro.cluster.executor import NodeOutcome
from repro.core.config import ExecutionPolicy
from repro.errors import RemoteError, RemoteTransportError
from repro.remote.replicas import ReplicaSet, WorkerHandle
from repro.telemetry.runtime import get_telemetry

__all__ = ["RemoteExecutor", "RemoteCall"]


@dataclass
class RemoteCall:
    """One node's read task: an RPC the executor routes to a replica."""

    node: str
    op: str
    params: dict = field(default_factory=dict)


@dataclass
class _Attempt:
    """One in-flight RPC attempt inside a race."""

    handle: WorkerHandle
    is_hedge: bool
    thread: threading.Thread | None = None
    sock: socket.socket | None = None
    done: bool = False
    cancelled: bool = False


class RemoteExecutor:
    """Run per-node :class:`RemoteCall` tasks against a replica set."""

    def __init__(self, replicas: ReplicaSet,
                 policy: ExecutionPolicy | None = None, *,
                 rng: random.Random | None = None):
        self.replicas = replicas
        self.policy = policy or ExecutionPolicy()
        self.rng = rng or random.Random()

    def run(self, calls: dict[str, RemoteCall]) -> dict[str, NodeOutcome]:
        """Execute every node's call; returns one outcome per node.

        Mirrors :meth:`cluster.Executor.run`: outcomes preserve task
        order, the deadline is measured from fan-out start, and the
        call blocks until every node resolved — there are no leaked
        attempt threads (losers are socket-cancelled and joined).
        """
        if not calls:
            return {}
        start = time.monotonic()
        deadline = None
        if self.policy.node_deadline_ms is not None:
            deadline = start + self.policy.node_deadline_ms / 1000.0
        outcomes: dict[str, NodeOutcome] = {}
        workers = self.policy.max_workers or len(calls)
        if workers >= len(calls):
            threads = []
            for name, call in calls.items():
                outcomes[name] = NodeOutcome(node=name)
                thread = threading.Thread(
                    target=self._run_node,
                    args=(name, call, deadline, outcomes[name]),
                    name=f"repro-remote-{name}")
                thread.start()
                threads.append(thread)
            for thread in threads:
                thread.join()
        else:
            # width-limited: run node coordinations in bounded batches
            pending = list(calls.items())
            for name, _ in pending:
                outcomes[name] = NodeOutcome(node=name)
            for index in range(0, len(pending), workers):
                batch = pending[index:index + workers]
                threads = [threading.Thread(
                    target=self._run_node,
                    args=(name, call, deadline, outcomes[name]),
                    name=f"repro-remote-{name}")
                    for name, call in batch]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
        return {name: outcomes[name] for name in calls}

    # -- one node --------------------------------------------------------

    def _backoff_s(self, attempt: int) -> float:
        """Full-jitter exponential backoff before retry ``attempt + 1``."""
        ceiling = self.policy.backoff_ms / 1000.0 * (2 ** (attempt - 1))
        return self.rng.uniform(0.0, ceiling) if ceiling > 0 else 0.0

    def _run_node(self, name: str, call: RemoteCall,
                  deadline: float | None, outcome: NodeOutcome) -> None:
        start = time.monotonic()
        for attempt in range(1, self.policy.retries + 2):
            outcome.attempts = attempt
            if deadline is not None and time.monotonic() >= deadline:
                outcome.timed_out = True
                outcome.error = outcome.error or (
                    "deadline exceeded "
                    f"({self.policy.node_deadline_ms:g}ms)")
                break
            targets = self.replicas.route(call.node)
            if not targets:
                outcome.error = f"no healthy replicas for node {call.node}"
            else:
                won = self._race(call, targets, deadline, outcome)
                if won:
                    outcome.error = None
                    break
                if outcome.timed_out:
                    break
            if attempt <= self.policy.retries:
                pause = self._backoff_s(attempt)
                if deadline is not None:
                    pause = min(pause, max(0.0,
                                           deadline - time.monotonic()))
                if pause > 0:
                    time.sleep(pause)
        outcome.elapsed_ms = (time.monotonic() - start) * 1000.0

    def _race(self, call: RemoteCall, targets: list[WorkerHandle],
              deadline: float | None, outcome: NodeOutcome) -> bool:
        """One round: primary + failovers + at most one hedge.

        Returns True when some replica answered; the winning value is
        stored on ``outcome``.  On False, ``outcome.error`` (or
        ``timed_out``) says why.
        """
        metrics = get_telemetry().metrics
        events: SimpleQueue = SimpleQueue()
        attempts: list[_Attempt] = []
        next_target = 0

        def launch(is_hedge: bool) -> None:
            nonlocal next_target
            handle = targets[next_target]
            next_target += 1
            record = _Attempt(handle=handle, is_hedge=is_hedge)
            attempts.append(record)

            def runner() -> None:
                try:
                    remaining = None
                    if deadline is not None:
                        remaining = max(0.001,
                                        deadline - time.monotonic())
                    value = handle.client.call(
                        call.op, call.params, deadline_s=remaining,
                        on_socket=lambda sock: setattr(
                            record, "sock", sock))
                except RemoteError as error:
                    events.put((record, None, error))
                else:
                    events.put((record, value, None))

            record.thread = threading.Thread(
                target=runner,
                name=f"repro-remote-rpc-{handle.name}")
            record.thread.start()

        launch(is_hedge=False)
        hedge_at = None
        if self.policy.hedge_after_ms is not None:
            hedge_at = time.monotonic() + self.policy.hedge_after_ms / 1000.0
        won = False
        inflight = 1
        try:
            while inflight:
                now = time.monotonic()
                timeout = None
                if deadline is not None:
                    timeout = deadline - now
                    if timeout <= 0:
                        outcome.timed_out = True
                        outcome.error = (
                            "deadline exceeded "
                            f"({self.policy.node_deadline_ms:g}ms)")
                        return False
                if hedge_at is not None and next_target < len(targets):
                    until_hedge = hedge_at - now
                    if until_hedge <= 0:
                        launch(is_hedge=True)
                        inflight += 1
                        hedge_at = None
                        metrics.counter("remote.hedges_issued").add(1)
                        continue
                    timeout = until_hedge if timeout is None \
                        else min(timeout, until_hedge)
                try:
                    record, value, error = events.get(timeout=timeout)
                except Empty:
                    continue
                record.done = True
                inflight -= 1
                if record.cancelled:
                    continue  # a loser we aborted; not a real failure
                if error is None:
                    outcome.value = value
                    won = True
                    if record.is_hedge:
                        metrics.counter("remote.hedges_won").add(1)
                    return True
                outcome.error = f"{type(error).__name__}: {error}"
                if isinstance(error, RemoteTransportError):
                    self.replicas.note_failure(record.handle)
                if next_target < len(targets):
                    metrics.counter("remote.failovers").add(1)
                    launch(is_hedge=False)
                    inflight += 1
            return False
        finally:
            self._cancel_stragglers(attempts)

    @staticmethod
    def _cancel_stragglers(attempts: list[_Attempt]) -> None:
        """Abort and join every unfinished attempt (hedge losers etc.).

        ``shutdown(SHUT_RDWR)`` — not a bare ``close()``, which leaves a
        TCP ``recv`` blocked in the kernel — makes the attempt's pending
        read return EOF at once, so the join below is prompt: the race
        never leaks a thread past :meth:`run`'s return.
        """
        for record in attempts:
            if not record.done:
                record.cancelled = True
                if record.sock is not None:
                    try:
                        record.sock.shutdown(socket.SHUT_RDWR)
                    except OSError:  # pragma: no cover - already dead
                        pass
                    try:
                        record.sock.close()
                    except OSError:  # pragma: no cover
                        pass
        for record in attempts:
            if record.thread is not None:
                record.thread.join(timeout=10.0)
