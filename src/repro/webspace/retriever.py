"""The web object retriever.

"This is done by the web object retriever, which reconstructs the
web-objects, and the relations among them, stored in the documents,
given the corresponding webspace schema."  Documents overlap — the same
object may be materialised (partially) in several views — so retrieval
merges by (class, key).
"""

from __future__ import annotations

from typing import Iterable

from repro.webspace.documents import WebspaceDocument, document_from_xml
from repro.webspace.objects import ObjectGraph
from repro.webspace.schema import WebspaceSchema
from repro.xmlstore.model import Element

__all__ = ["retrieve_objects", "retrieve_from_xml"]


def retrieve_objects(schema: WebspaceSchema,
                     documents: Iterable[WebspaceDocument]) -> ObjectGraph:
    """Merge a document collection into one object graph."""
    graph = ObjectGraph(schema)
    for document in documents:
        for obj in document.objects:
            graph.add_object(obj)
        for association in document.associations:
            graph.add_association(association)
    return graph


def retrieve_from_xml(schema: WebspaceSchema,
                      roots: Iterable[Element]) -> ObjectGraph:
    """Like :func:`retrieve_objects`, from raw XML views."""
    return retrieve_objects(
        schema, (document_from_xml(schema, root) for root in roots))
