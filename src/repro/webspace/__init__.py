"""The Webspace Method: the paper's conceptual level.

Public surface:

* :class:`~repro.webspace.schema.WebspaceSchema` and
  :func:`~repro.webspace.schema.australian_open_schema` (Fig 3),
* :class:`~repro.webspace.objects.WebObject` / ``ObjectGraph``,
* :mod:`~repro.webspace.documents` — materialized views as XML,
* :func:`~repro.webspace.retriever.retrieve_objects` — the web object
  retriever,
* :class:`~repro.webspace.query.WebspaceQuery` — conceptual queries.
"""

from repro.webspace.authoring import (WebspaceAuthor, author_documents,
                                      validate_coverage)
from repro.webspace.documents import (WebspaceDocument, document_from_xml,
                                      document_to_xml)
from repro.webspace.objects import AssociationInstance, ObjectGraph, WebObject
from repro.webspace.language import parse_query
from repro.webspace.query import WebspaceQuery
from repro.webspace.retriever import retrieve_from_xml, retrieve_objects
from repro.webspace.schema import (Association, WebspaceClass, WebspaceSchema,
                                   australian_open_schema)
from repro.webspace.types import (AUDIO, HYPERTEXT, IMAGE, INT, STR, URI,
                                  VIDEO, AttributeType)

__all__ = [
    "WebspaceSchema", "WebspaceClass", "Association",
    "australian_open_schema",
    "WebObject", "ObjectGraph", "AssociationInstance",
    "WebspaceDocument", "document_to_xml", "document_from_xml",
    "retrieve_objects", "retrieve_from_xml",
    "WebspaceQuery", "parse_query",
    "WebspaceAuthor", "author_documents", "validate_coverage",
    "AttributeType", "STR", "INT", "URI", "HYPERTEXT", "IMAGE", "VIDEO",
    "AUDIO",
]
