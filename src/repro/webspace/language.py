"""A textual conceptual query language.

The paper's end users compose queries through a GUI that visualises the
webspace schema ([BWZ+01, ZA01]); programmatic users get the fluent
builder of :mod:`repro.webspace.query`.  This module adds the third
interface: a small OQL-flavoured textual language, convenient for the
CLI and for tests::

    SELECT p.name, v.title
    FROM Player p, Video v
    WHERE p.gender = 'female'
      AND p.plays = 'left'
      AND p.history CONTAINS 'Winner'
      AND v FEATURES p
      AND v.video EVENT netplay
    TOP 10

Grammar::

    query      := SELECT projection (',' projection)*
                  FROM binding (',' binding)*
                  [WHERE condition (AND condition)*]
                  [TOP number]
    projection := IDENT '.' IDENT
    binding    := ClassName IDENT
    condition  := path op literal            -- attribute predicate
                | path CONTAINS string       -- ranked text predicate
                | path EVENT IDENT           -- meta-index predicate
                | IDENT AssocName IDENT      -- association join
    op         := = | != | < | <= | > | >=

Keywords are case-insensitive; class and association names are matched
against the schema case-sensitively.
"""

from __future__ import annotations

from repro.errors import QueryError
from repro.webspace.query import WebspaceQuery
from repro.webspace.schema import WebspaceSchema

__all__ = ["parse_query"]

_KEYWORDS = {"select", "from", "where", "and", "top", "contains", "event"}
_OPERATORS = {"=": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">",
              ">=": ">="}


def _tokenize_with_strings(source: str) -> list[str]:
    """Tokenize, keeping quoted strings as single '␣'-marked tokens."""
    tokens: list[str] = []
    index = 0
    length = len(source)
    while index < length:
        char = source[index]
        if char in "'\"":
            end = source.find(char, index + 1)
            if end < 0:
                raise QueryError("unterminated string literal in query")
            tokens.append("\0" + source[index + 1:end])
            index = end + 1
        elif char.isspace():
            index += 1
        elif source.startswith(("<=", ">=", "!="), index):
            tokens.append(source[index:index + 2])
            index += 2
        elif char in "=<>.,":
            tokens.append(char)
            index += 1
        elif char.isalnum() or char == "_":
            start = index
            while index < length and (source[index].isalnum()
                                      or source[index] in "_-"):
                index += 1
            tokens.append(source[start:index])
        else:
            raise QueryError(f"unexpected character {char!r} in query")
    return tokens


class _QueryParser:
    def __init__(self, schema: WebspaceSchema, source: str):
        self.schema = schema
        self.tokens = _tokenize_with_strings(source)
        self.index = 0

    # -- token plumbing ----------------------------------------------------

    def _peek(self) -> str | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise QueryError("unexpected end of query")
        self.index += 1
        return token

    def _is_keyword(self, token: str | None, keyword: str) -> bool:
        return token is not None and token.lower() == keyword

    def _expect_keyword(self, keyword: str) -> None:
        token = self._next()
        if not self._is_keyword(token, keyword):
            raise QueryError(f"expected {keyword.upper()}, got {token!r}")

    def _expect(self, literal: str) -> None:
        token = self._next()
        if token != literal:
            raise QueryError(f"expected {literal!r}, got {token!r}")

    # -- grammar -----------------------------------------------------------

    def parse(self) -> WebspaceQuery:
        self._expect_keyword("select")
        projections: list[str] = [self._projection()]
        while self._peek() == ",":
            self._next()
            projections.append(self._projection())

        self._expect_keyword("from")
        query = WebspaceQuery(self.schema)
        self._binding(query)
        while self._peek() == ",":
            self._next()
            self._binding(query)

        if self._is_keyword(self._peek(), "where"):
            self._next()
            self._condition(query)
            while self._is_keyword(self._peek(), "and"):
                self._next()
                self._condition(query)

        if self._is_keyword(self._peek(), "top"):
            self._next()
            query.top(int(self._next()))

        if self._peek() is not None:
            raise QueryError(f"trailing input from {self._peek()!r}")

        query.select(*projections)
        query.validate()
        return query

    def _projection(self) -> str:
        alias = self._next()
        self._expect(".")
        attribute = self._next()
        return f"{alias}.{attribute}"

    def _binding(self, query: WebspaceQuery) -> None:
        cls = self._next()
        alias = self._next()
        if alias.lower() in _KEYWORDS or alias in (",", "."):
            raise QueryError(f"binding {cls!r} needs an alias")
        query.from_class(alias, cls)

    def _condition(self, query: WebspaceQuery) -> None:
        left = self._next()
        follow = self._peek()
        if follow == ".":
            self._next()
            attribute = self._next()
            path = f"{left}.{attribute}"
            token = self._next()
            if self._is_keyword(token, "contains"):
                query.contains(path, self._string())
            elif self._is_keyword(token, "event"):
                query.video_event(path, self._next())
            elif token in _OPERATORS:
                query.where(path, _OPERATORS[token], self._literal())
            else:
                raise QueryError(
                    f"expected an operator, CONTAINS or EVENT after "
                    f"{path!r}, got {token!r}")
        else:
            # association join: sourceAlias AssocName targetAlias
            association = self._next()
            target = self._next()
            query.join(association, left, target)

    def _string(self) -> str:
        token = self._next()
        if not token.startswith("\0"):
            raise QueryError(f"expected a quoted string, got {token!r}")
        return token[1:]

    def _literal(self):
        token = self._next()
        if token.startswith("\0"):
            return token[1:]
        try:
            return int(token)
        except ValueError:
            pass
        try:
            return float(token)
        except ValueError:
            pass
        return token


def parse_query(schema: WebspaceSchema, source: str) -> WebspaceQuery:
    """Parse a textual conceptual query against a schema."""
    return _QueryParser(schema, source).parse()
