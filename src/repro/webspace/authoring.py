"""The webspace authoring tool ([ZA00a]).

"When a webspace is setup from scratch the author will create the
documents using a specialized webspace authoring tool.  The tool guides
the author through the entire design process."  Two entry points:

* :class:`WebspaceAuthor` — the guided, incremental interface: open a
  document, put objects into it, relate them, close it; the tool
  validates every step against the schema and tracks coverage.
* :func:`author_documents` — batch authoring: partition a complete
  object graph into materialized views by a named strategy.

Both produce overlapping views on purpose: "The overlap of concepts
used in different documents provides the necessary conditions for
conceptual search over a webspace."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.webspace.documents import WebspaceDocument
from repro.webspace.objects import AssociationInstance, ObjectGraph, WebObject
from repro.webspace.schema import WebspaceSchema

__all__ = ["WebspaceAuthor", "author_documents", "validate_coverage",
           "CoverageReport"]


class WebspaceAuthor:
    """Guided document-by-document authoring against a schema."""

    def __init__(self, schema: WebspaceSchema):
        self.schema = schema
        self.documents: list[WebspaceDocument] = []
        self._current: WebspaceDocument | None = None
        self._known_objects: dict[tuple[str, str], WebObject] = {}

    # -- the guided flow -------------------------------------------------

    def open_document(self, doc_id: str) -> "WebspaceAuthor":
        """Start a new materialized view."""
        if self._current is not None:
            raise SchemaError("close the current document first")
        if any(doc.doc_id == doc_id for doc in self.documents):
            raise SchemaError(f"document id {doc_id!r} already used")
        self._current = WebspaceDocument(doc_id)
        return self

    def put(self, cls: str, key: str, **attributes) -> "WebspaceAuthor":
        """Materialise (part of) an object in the current document."""
        document = self._require_document()
        schema_cls = self.schema.cls(cls)
        for name in attributes:
            schema_cls.attribute(name)  # validates
        obj = WebObject(cls, key, dict(attributes))
        document.objects.append(obj)
        slot = (cls, key)
        known = self._known_objects.get(slot)
        if known is None:
            self._known_objects[slot] = WebObject(cls, key,
                                                  dict(attributes))
        else:
            known.merge(obj)
        return self

    def relate(self, association: str, source_key: str,
               target_key: str) -> "WebspaceAuthor":
        """Record an association instance in the current document."""
        document = self._require_document()
        self.schema.association(association)  # validates
        document.associations.append(
            AssociationInstance(association, source_key, target_key))
        return self

    def close_document(self) -> WebspaceDocument:
        """Finish the current view; it must not be empty."""
        document = self._require_document()
        if not document.objects and not document.associations:
            raise SchemaError(f"document {document.doc_id!r} is empty")
        self.documents.append(document)
        self._current = None
        return document

    def _require_document(self) -> WebspaceDocument:
        if self._current is None:
            raise SchemaError("open_document() first")
        return self._current

    # -- outcome ------------------------------------------------------------

    def graph(self) -> ObjectGraph:
        """The merged object graph the authored documents describe."""
        from repro.webspace.retriever import retrieve_objects
        return retrieve_objects(self.schema, self.documents)


def author_documents(graph: ObjectGraph, strategy: str = "per-object"
                     ) -> list[WebspaceDocument]:
    """Partition an object graph into materialized views.

    ``per-object`` gives each object its own document carrying the
    object fully plus stubs (key-only materialisations) of its
    association partners — overlapping views, one page per concept
    instance, the shape of a real website.  ``per-class`` gives one
    document per class plus one for all associations — the minimal
    non-overlapping partition.
    """
    schema = graph.schema
    documents: list[WebspaceDocument] = []
    if strategy == "per-object":
        owner: dict[str, str] = {}  # key -> owning class (for stubs)
        for cls in schema.classes:
            for obj in graph.objects_of(cls):
                owner[obj.key] = cls
        for cls in schema.classes:
            for obj in graph.objects_of(cls):
                document = WebspaceDocument(f"doc:{cls}:{obj.key}")
                document.objects.append(
                    WebObject(cls, obj.key, dict(obj.attributes)))
                for name, association in schema.associations.items():
                    if association.source == cls:
                        for target in graph.related(name, obj.key):
                            document.associations.append(
                                AssociationInstance(name, obj.key, target))
                            target_cls = owner.get(target)
                            if target_cls:
                                document.objects.append(
                                    WebObject(target_cls, target))
                documents.append(document)
    elif strategy == "per-class":
        for cls in schema.classes:
            objects = graph.objects_of(cls)
            if not objects:
                continue
            document = WebspaceDocument(f"doc:class:{cls}")
            document.objects = [WebObject(cls, obj.key,
                                          dict(obj.attributes))
                                for obj in objects]
            documents.append(document)
        associations = [instance
                        for name in schema.associations
                        for instance in graph.associations_named(name)]
        if associations:
            document = WebspaceDocument("doc:associations")
            document.associations = associations
            documents.append(document)
    else:
        raise SchemaError(f"unknown authoring strategy {strategy!r}")
    return documents


@dataclass
class CoverageReport:
    """Does a document set materialise a whole object graph?"""

    missing_objects: list[tuple[str, str]] = field(default_factory=list)
    missing_attributes: list[tuple[str, str, str]] = field(
        default_factory=list)
    missing_associations: list[AssociationInstance] = field(
        default_factory=list)

    @property
    def complete(self) -> bool:
        return not (self.missing_objects or self.missing_attributes
                    or self.missing_associations)


def validate_coverage(graph: ObjectGraph,
                      documents: list[WebspaceDocument]) -> CoverageReport:
    """Check that the views jointly materialise the whole graph."""
    from repro.webspace.retriever import retrieve_objects

    report = CoverageReport()
    merged = retrieve_objects(graph.schema, documents)
    for cls in graph.schema.classes:
        for obj in graph.objects_of(cls):
            if not merged.has_object(cls, obj.key):
                report.missing_objects.append((cls, obj.key))
                continue
            restored = merged.object(cls, obj.key)
            for name, value in obj.attributes.items():
                if restored.get(name) != value:
                    report.missing_attributes.append((cls, obj.key, name))
    for name in graph.schema.associations:
        wanted = set(graph.associations_named(name))
        present = set(merged.associations_named(name))
        report.missing_associations.extend(sorted(
            wanted - present, key=lambda a: (a.source_key, a.target_key)))
    return report
