"""Attribute types of the webspace schema.

"For the integration with content-based information retrieval we allow
the conceptual schema to be extended with all kinds of multimedia types
(i.e. text, images, video or audio)."  Multimedia-typed attributes hold
references to external media objects; the logical level augments them
with meta-data.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AttributeType", "STR", "INT", "URI", "HYPERTEXT", "IMAGE",
           "VIDEO", "AUDIO", "TYPE_BY_NAME"]


@dataclass(frozen=True)
class AttributeType:
    """A named attribute type; multimedia types get content-based search."""

    name: str
    multimedia: bool = False
    # multimedia attributes whose *value itself* is the content (Hypertext)
    # versus a reference to an external object (Image/Video/Audio)
    by_reference: bool = False

    def __str__(self) -> str:
        return self.name


STR = AttributeType("varchar")
INT = AttributeType("integer")
URI = AttributeType("Uri")
HYPERTEXT = AttributeType("Hypertext", multimedia=True)
IMAGE = AttributeType("Image", multimedia=True, by_reference=True)
VIDEO = AttributeType("Video", multimedia=True, by_reference=True)
AUDIO = AttributeType("Audio", multimedia=True, by_reference=True)

TYPE_BY_NAME = {atype.name: atype
                for atype in (STR, INT, URI, HYPERTEXT, IMAGE, VIDEO, AUDIO)}
