"""The webspace schema: classes, attributes and associations (Fig 3).

"The webspace schema models the concepts in terms of classes, attributes
of classes, and associations over classes.  Together the concepts give a
semantic description of the content available in a webspace."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.webspace.types import AttributeType, TYPE_BY_NAME

__all__ = ["WebspaceClass", "Association", "WebspaceSchema",
           "australian_open_schema"]


@dataclass
class WebspaceClass:
    """One class concept with typed attributes."""

    name: str
    attributes: dict[str, AttributeType] = field(default_factory=dict)

    def attribute(self, name: str) -> AttributeType:
        try:
            return self.attributes[name]
        except KeyError:
            raise SchemaError(
                f"class {self.name!r} has no attribute {name!r}") from None

    def multimedia_attributes(self) -> dict[str, AttributeType]:
        return {name: atype for name, atype in self.attributes.items()
                if atype.multimedia}


@dataclass(frozen=True)
class Association:
    """A named association concept between two classes."""

    name: str
    source: str
    target: str


class WebspaceSchema:
    """A complete webspace schema."""

    def __init__(self, name: str):
        self.name = name
        self.classes: dict[str, WebspaceClass] = {}
        self.associations: dict[str, Association] = {}

    # -- construction -----------------------------------------------------

    def add_class(self, name: str,
                  attributes: dict[str, AttributeType | str]) -> WebspaceClass:
        if name in self.classes:
            raise SchemaError(f"class {name!r} defined twice")
        resolved: dict[str, AttributeType] = {}
        for attr_name, atype in attributes.items():
            if isinstance(atype, str):
                if atype not in TYPE_BY_NAME:
                    raise SchemaError(f"unknown attribute type {atype!r}")
                atype = TYPE_BY_NAME[atype]
            resolved[attr_name] = atype
        cls = WebspaceClass(name, resolved)
        self.classes[name] = cls
        return cls

    def add_association(self, name: str, source: str, target: str
                        ) -> Association:
        if name in self.associations:
            raise SchemaError(f"association {name!r} defined twice")
        for cls in (source, target):
            if cls not in self.classes:
                raise SchemaError(
                    f"association {name!r} references unknown class {cls!r}")
        association = Association(name, source, target)
        self.associations[name] = association
        return association

    # -- lookup ------------------------------------------------------------

    def cls(self, name: str) -> WebspaceClass:
        try:
            return self.classes[name]
        except KeyError:
            raise SchemaError(f"unknown class {name!r}") from None

    def association(self, name: str) -> Association:
        try:
            return self.associations[name]
        except KeyError:
            raise SchemaError(f"unknown association {name!r}") from None

    def validate(self) -> None:
        if not self.classes:
            raise SchemaError("schema has no classes")


def australian_open_schema() -> WebspaceSchema:
    """The Fig 3 schema fragment, completed for the running example."""
    schema = WebspaceSchema("australian-open")
    schema.add_class("Player", {
        "name": "varchar",
        "gender": "varchar",
        "country": "varchar",
        "plays": "varchar",
        "history": "Hypertext",
        "picture": "Image",
        "interview": "Audio",
    })
    schema.add_class("Article", {
        "title": "varchar",
        "body": "Hypertext",
    })
    schema.add_class("Profile", {
        "document": "Uri",
    })
    schema.add_class("Video", {
        "title": "varchar",
        "video": "Video",
    })
    schema.add_association("About", "Article", "Player")
    schema.add_association("Is_covered_in", "Player", "Profile")
    schema.add_association("Features", "Video", "Player")
    schema.validate()
    return schema
