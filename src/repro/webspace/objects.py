"""Web-objects and the object graph.

"Within a document web-objects are defined along with the relations
between them, forming instantiations of classes and associations from
the webspace schema."  The :class:`ObjectGraph` is the merged view the
web object retriever reconstructs from a document collection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import SchemaError
from repro.webspace.schema import WebspaceSchema

__all__ = ["WebObject", "AssociationInstance", "ObjectGraph"]


@dataclass
class WebObject:
    """One instantiation of a webspace class."""

    cls: str
    key: str                             # globally unique object id
    attributes: dict[str, Any] = field(default_factory=dict)

    def get(self, name: str, default: Any = None) -> Any:
        return self.attributes.get(name, default)

    def merge(self, other: "WebObject") -> None:
        """Merge another materialized view of the same object."""
        if (other.cls, other.key) != (self.cls, self.key):
            raise SchemaError(
                f"cannot merge {other.cls}:{other.key} into "
                f"{self.cls}:{self.key}")
        for name, value in other.attributes.items():
            existing = self.attributes.get(name)
            if existing is None:
                self.attributes[name] = value


@dataclass(frozen=True)
class AssociationInstance:
    """One instantiation of an association concept."""

    name: str
    source_key: str
    target_key: str


class ObjectGraph:
    """All web-objects and association instances of a webspace."""

    def __init__(self, schema: WebspaceSchema):
        self.schema = schema
        self._objects: dict[tuple[str, str], WebObject] = {}
        self._associations: set[AssociationInstance] = set()

    # -- updates ------------------------------------------------------------

    def add_object(self, obj: WebObject) -> WebObject:
        """Add or merge a web-object (documents overlap by design)."""
        if obj.cls not in self.schema.classes:
            raise SchemaError(f"unknown class {obj.cls!r}")
        for name in obj.attributes:
            self.schema.cls(obj.cls).attribute(name)  # validates
        slot = (obj.cls, obj.key)
        existing = self._objects.get(slot)
        if existing is None:
            self._objects[slot] = obj
            return obj
        existing.merge(obj)
        return existing

    def add_association(self, instance: AssociationInstance) -> None:
        self.schema.association(instance.name)  # validates
        self._associations.add(instance)

    # -- queries ------------------------------------------------------------

    def objects_of(self, cls: str) -> list[WebObject]:
        return sorted((obj for (c, _), obj in self._objects.items()
                       if c == cls), key=lambda obj: obj.key)

    def object(self, cls: str, key: str) -> WebObject:
        try:
            return self._objects[(cls, key)]
        except KeyError:
            raise SchemaError(f"no object {cls}:{key}") from None

    def has_object(self, cls: str, key: str) -> bool:
        return (cls, key) in self._objects

    def associations_named(self, name: str) -> list[AssociationInstance]:
        return sorted((a for a in self._associations if a.name == name),
                      key=lambda a: (a.source_key, a.target_key))

    def related(self, association: str, source_key: str) -> list[str]:
        """Target keys related to a source through an association."""
        return sorted(a.target_key for a in self._associations
                      if a.name == association and a.source_key == source_key)

    def object_count(self) -> int:
        return len(self._objects)

    def association_count(self) -> int:
        return len(self._associations)
