"""Materialized views: webspace documents as XML.

"Each document then forms a materialized view over the webspace schema:
describing a part of the webspace" — it carries both content and
schematic information.  The XML layout mirrors that idea: element names
*are* schema concepts::

    <webspace schema="australian-open" id="...">
      <Player id="monica-seles">
        <name>Monica Seles</name>
        <history type="Hypertext">...</history>
        <picture type="Image" href="http://..."/>
      </Player>
      <About source="a3" target="monica-seles"/>
    </webspace>

:func:`document_to_xml` authors such views (the webspace authoring
tool's output); :func:`document_from_xml` parses them back.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.webspace.objects import AssociationInstance, WebObject
from repro.webspace.schema import WebspaceSchema
from repro.xmlstore.model import Element

__all__ = ["WebspaceDocument", "document_to_xml", "document_from_xml"]


@dataclass
class WebspaceDocument:
    """One materialized view over the webspace schema."""

    doc_id: str
    objects: list[WebObject] = field(default_factory=list)
    associations: list[AssociationInstance] = field(default_factory=list)


def document_to_xml(schema: WebspaceSchema,
                    document: WebspaceDocument) -> Element:
    """Author a document as an XML materialized view."""
    root = Element("webspace", {"schema": schema.name,
                                "id": document.doc_id})
    for obj in document.objects:
        cls = schema.cls(obj.cls)
        node = root.add_element(obj.cls, {"id": obj.key})
        for name, atype in cls.attributes.items():
            value = obj.attributes.get(name)
            if value is None:
                continue
            attrs: dict[str, str] = {}
            if atype.multimedia:
                attrs["type"] = atype.name
            child = node.add_element(name, attrs)
            if atype.by_reference:
                child.attributes["href"] = str(value)
            else:
                child.add_text(str(value))
    for assoc in document.associations:
        root.add_element(assoc.name, {"source": assoc.source_key,
                                      "target": assoc.target_key})
    return root


def document_from_xml(schema: WebspaceSchema,
                      root: Element) -> WebspaceDocument:
    """Parse a materialized view back into objects and associations."""
    if root.tag != "webspace":
        raise SchemaError(f"not a webspace document: <{root.tag}>")
    if root.attributes.get("schema") != schema.name:
        raise SchemaError(
            f"document is a view over {root.attributes.get('schema')!r}, "
            f"expected {schema.name!r}")
    document = WebspaceDocument(root.attributes.get("id", ""))
    for node in root.element_children():
        if node.tag in schema.classes:
            cls = schema.cls(node.tag)
            key = node.attributes.get("id")
            if not key:
                raise SchemaError(f"object <{node.tag}> without an id")
            obj = WebObject(node.tag, key)
            for attr_node in node.element_children():
                atype = cls.attribute(attr_node.tag)
                if atype.by_reference:
                    obj.attributes[attr_node.tag] = \
                        attr_node.attributes.get("href", "")
                elif atype.name == "integer":
                    obj.attributes[attr_node.tag] = int(attr_node.text())
                else:
                    obj.attributes[attr_node.tag] = attr_node.text()
            document.objects.append(obj)
        elif node.tag in schema.associations:
            document.associations.append(AssociationInstance(
                node.tag,
                node.attributes.get("source", ""),
                node.attributes.get("target", "")))
        else:
            raise SchemaError(
                f"<{node.tag}> is neither a class nor an association of "
                f"schema {schema.name!r}")
    return document
