"""Conceptual queries over a webspace schema.

"It allows a user to integrate information stored in different
documents in a single query ... Furthermore, using the Webspace Method
specific conceptual information can be fetched as the result of a
query, rather than a bunch of relevant document URLs."

A :class:`WebspaceQuery` combines:

* class bindings (the query's variables),
* attribute predicates (exact-match conceptual conditions),
* content predicates (ranked free-text search on Hypertext attributes),
* event predicates (content-based conditions on Video attributes,
  answered from the feature grammar's meta-index),
* association joins between bindings,
* a select list of ``alias.attribute`` projections.

The paper's GUI builds exactly such a query from the visualised schema
(Fig 13); here the fluent builder plays the interface role.  Execution
belongs to the integrated engine (:mod:`repro.core.translate`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import QueryError, SchemaError
from repro.webspace.schema import WebspaceSchema

__all__ = ["WebspaceQuery", "ClassBinding", "AttributePredicate",
           "ContentPredicate", "RangePredicate", "EventPredicate",
           "AudioPredicate", "AssociationJoin", "OrderKey"]

_OPERATORS = {"==", "!=", "<", "<=", ">", ">="}

#: How a :class:`ContentPredicate`'s text is interpreted.
CONTENT_TERMS = "terms"    # v1 bag of words
CONTENT_PHRASE = "phrase"  # adjacency over the positional postings
CONTENT_RICH = "rich"      # full schema-2 query language
_CONTENT_KINDS = (CONTENT_TERMS, CONTENT_PHRASE, CONTENT_RICH)


@dataclass(frozen=True)
class ClassBinding:
    alias: str
    cls: str


@dataclass(frozen=True)
class AttributePredicate:
    alias: str
    attribute: str
    op: str
    value: object


@dataclass(frozen=True)
class ContentPredicate:
    alias: str
    attribute: str
    text: str
    #: "terms" (v1 bag of words), "phrase" (positional adjacency) or
    #: "rich" (the schema-2 query language of :mod:`repro.query`)
    kind: str = CONTENT_TERMS


@dataclass(frozen=True)
class RangePredicate:
    """A numeric range over a conceptual attribute (year 1990-2001).

    Compares numerically when both the stored value and the bound parse
    as numbers, lexicographically otherwise; open ends are ``None``.
    """

    alias: str
    attribute: str
    low: float | None
    high: float | None


@dataclass(frozen=True)
class OrderKey:
    """One sort key: an ``alias.attribute`` path or the IR score.

    ``alias is None`` means the summed content score (the default
    ranking); attribute sorts compare numerically when both values
    parse as numbers, lexicographically otherwise.
    """

    alias: str | None
    attribute: str | None
    descending: bool = False


@dataclass(frozen=True)
class EventPredicate:
    alias: str
    attribute: str
    event: str


@dataclass(frozen=True)
class AudioPredicate:
    alias: str
    attribute: str
    kind: str            # "speech" | "music"


@dataclass(frozen=True)
class AssociationJoin:
    association: str
    source_alias: str
    target_alias: str


@dataclass
class WebspaceQuery:
    """A validated conceptual query."""

    schema: WebspaceSchema
    bindings: list[ClassBinding] = field(default_factory=list)
    attribute_predicates: list[AttributePredicate] = field(default_factory=list)
    content_predicates: list[ContentPredicate] = field(default_factory=list)
    range_predicates: list[RangePredicate] = field(default_factory=list)
    event_predicates: list[EventPredicate] = field(default_factory=list)
    audio_predicates: list[AudioPredicate] = field(default_factory=list)
    joins: list[AssociationJoin] = field(default_factory=list)
    projections: list[tuple[str, str]] = field(default_factory=list)
    limit: int = 10
    offset: int = 0
    order: list[OrderKey] = field(default_factory=list)
    facets: list[tuple[str, str]] = field(default_factory=list)

    # -- builder ------------------------------------------------------------

    def from_class(self, alias: str, cls: str) -> "WebspaceQuery":
        """Bind an alias to a schema class."""
        if any(binding.alias == alias for binding in self.bindings):
            raise QueryError(f"alias {alias!r} bound twice")
        try:
            self.schema.cls(cls)
        except SchemaError as error:
            raise QueryError(str(error)) from None
        self.bindings.append(ClassBinding(alias, cls))
        return self

    def _split(self, path: str) -> tuple[str, str]:
        if "." not in path:
            raise QueryError(f"expected alias.attribute, got {path!r}")
        alias, attribute = path.split(".", 1)
        cls = self.cls_of(alias)
        try:
            self.schema.cls(cls).attribute(attribute)
        except SchemaError as error:
            raise QueryError(str(error)) from None
        return alias, attribute

    def where(self, path: str, op: str, value: object) -> "WebspaceQuery":
        """An exact-match conceptual predicate, e.g. gender == female."""
        if op not in _OPERATORS:
            raise QueryError(f"unknown operator {op!r}")
        alias, attribute = self._split(path)
        self.attribute_predicates.append(
            AttributePredicate(alias, attribute, op, value))
        return self

    def contains(self, path: str, text: str,
                 kind: str = CONTENT_TERMS) -> "WebspaceQuery":
        """A ranked free-text predicate on a Hypertext attribute.

        ``kind`` selects the interpretation of ``text``: ``"terms"``
        (the v1 bag of words), ``"phrase"`` (the words must occur
        adjacently) or ``"rich"`` (the full schema-2 query language).
        """
        if kind not in _CONTENT_KINDS:
            raise QueryError(f"unknown contains kind {kind!r}; "
                             f"expected one of {_CONTENT_KINDS}")
        alias, attribute = self._split(path)
        atype = self.schema.cls(self.cls_of(alias)).attribute(attribute)
        if not atype.multimedia or atype.by_reference:
            raise QueryError(
                f"contains() needs a Hypertext attribute, "
                f"{path!r} is {atype.name}")
        self.content_predicates.append(
            ContentPredicate(alias, attribute, text, kind))
        return self

    def contains_phrase(self, path: str, text: str) -> "WebspaceQuery":
        """A quoted-phrase predicate: the words must occur adjacently."""
        return self.contains(path, text, kind=CONTENT_PHRASE)

    def contains_query(self, path: str, text: str) -> "WebspaceQuery":
        """A rich (schema-2 language) predicate on a Hypertext attribute."""
        return self.contains(path, text, kind=CONTENT_RICH)

    def where_range(self, path: str, low: float | None,
                    high: float | None) -> "WebspaceQuery":
        """A numeric range predicate (``year`` between 1990 and 2001)."""
        if low is None and high is None:
            raise QueryError("where_range() needs at least one bound")
        alias, attribute = self._split(path)
        self.range_predicates.append(
            RangePredicate(alias, attribute, low, high))
        return self

    def facet(self, path: str) -> "WebspaceQuery":
        """Count attribute values over the full (pre-limit) match set."""
        self.facets.append(self._split(path))
        return self

    def order_by(self, path: str,
                 descending: bool = False) -> "WebspaceQuery":
        """Sort rows by an ``alias.attribute`` path (or ``"score"``).

        Keys apply in the order given; rows beyond them keep the
        default (score, keys) order — the sort is stable.
        """
        if path == "score":
            self.order.append(OrderKey(None, None, descending))
            return self
        alias, attribute = self._split(path)
        self.order.append(OrderKey(alias, attribute, descending))
        return self

    def skip(self, n: int) -> "WebspaceQuery":
        """Skip the first n rows (pagination offset)."""
        if n < 0:
            raise QueryError("skip() needs n >= 0")
        self.offset = n
        return self

    def video_event(self, path: str, event: str) -> "WebspaceQuery":
        """A content-based predicate answered from the meta-index."""
        alias, attribute = self._split(path)
        atype = self.schema.cls(self.cls_of(alias)).attribute(attribute)
        if atype.name != "Video":
            raise QueryError(
                f"video_event() needs a Video attribute, "
                f"{path!r} is {atype.name}")
        self.event_predicates.append(EventPredicate(alias, attribute, event))
        return self

    def audio_event(self, path: str, kind: str) -> "WebspaceQuery":
        """A content-based predicate on an Audio attribute.

        ``kind`` selects objects whose analysed audio is of that kind
        ("speech" for interviews, "music" for jingles); matching speaker
        turns are attached to the result rows.
        """
        alias, attribute = self._split(path)
        atype = self.schema.cls(self.cls_of(alias)).attribute(attribute)
        if atype.name != "Audio":
            raise QueryError(
                f"audio_event() needs an Audio attribute, "
                f"{path!r} is {atype.name}")
        if kind not in ("speech", "music"):
            raise QueryError(f"unknown audio kind {kind!r}")
        self.audio_predicates.append(AudioPredicate(alias, attribute, kind))
        return self

    def join(self, association: str, source_alias: str,
             target_alias: str) -> "WebspaceQuery":
        """Relate two bindings through a schema association."""
        assoc = self.schema.association(association)
        if self.cls_of(source_alias) != assoc.source:
            raise QueryError(
                f"association {association!r} starts at {assoc.source!r}, "
                f"not {self.cls_of(source_alias)!r}")
        if self.cls_of(target_alias) != assoc.target:
            raise QueryError(
                f"association {association!r} ends at {assoc.target!r}, "
                f"not {self.cls_of(target_alias)!r}")
        self.joins.append(
            AssociationJoin(association, source_alias, target_alias))
        return self

    def select(self, *paths: str) -> "WebspaceQuery":
        """Project alias.attribute values into the result rows."""
        for path in paths:
            self.projections.append(self._split(path))
        return self

    def top(self, n: int) -> "WebspaceQuery":
        """Limit (and rank) the result to the best n rows."""
        if n < 1:
            raise QueryError("top() needs n >= 1")
        self.limit = n
        return self

    # -- introspection -----------------------------------------------------

    def cls_of(self, alias: str) -> str:
        for binding in self.bindings:
            if binding.alias == alias:
                return binding.cls
        raise QueryError(f"unbound alias {alias!r}")

    def validate(self) -> None:
        if not self.bindings:
            raise QueryError("query binds no classes")
        if not self.projections:
            raise QueryError("query selects nothing")
        bound = {binding.alias for binding in self.bindings}
        for join in self.joins:
            if join.source_alias not in bound or join.target_alias not in bound:
                raise QueryError(f"join {join.association!r} uses an "
                                 f"unbound alias")
        # every binding must be reachable from the first via joins
        # (cartesian products are never what a conceptual query means)
        if len(self.bindings) > 1:
            reached = {self.bindings[0].alias}
            changed = True
            while changed:
                changed = False
                for join in self.joins:
                    pair = {join.source_alias, join.target_alias}
                    if pair & reached and not pair <= reached:
                        reached |= pair
                        changed = True
            if reached != bound:
                raise QueryError(
                    "query is not connected: add join() between bindings")
