"""Cluster execution: parallel fan-out, deadlines, retries, fault hooks.

One surface in front of the shared-nothing backend: an
:class:`Executor` runs per-node work concurrently under an
:class:`~repro.core.config.ExecutionPolicy` (re-exported here for
convenience); a :class:`FaultInjector` makes slow and failing hosts
reproducible.  The distributed IR plan
(:mod:`repro.ir.distributed`) and the population path ride on it.
"""

from repro.cluster.executor import Executor, NodeOutcome
from repro.cluster.faults import FaultInjector, InjectedFault
from repro.core.config import ExecutionPolicy
from repro.errors import ClusterExecutionError

__all__ = [
    "Executor", "NodeOutcome", "FaultInjector", "InjectedFault",
    "ExecutionPolicy", "ClusterExecutionError",
]
