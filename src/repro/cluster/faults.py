"""Deterministic fault injection for the cluster executor.

Real shared-nothing clusters fail in two characteristic ways: a host is
*slow* (network latency, cold cache, overload) or a host *errors*
(crash, transient refusal).  :class:`FaultInjector` reproduces both on
demand so the failure semantics of the executor are testable and the
latency-bound parallelism win is benchmarkable without real hosts:

* :meth:`delay` / :meth:`delay_all` — pre-attempt latency per node (or
  for every node, modelling uniform network round-trips),
* :meth:`fail` — raise an injected error on a node's next N attempts
  (transient by default: a retry after the budget succeeds).

Delays are *cancellable*: they wait on the attempt's cancel event, so a
node abandoned by the coordinator (deadline exceeded) wakes up
immediately instead of blocking pool shutdown — the thread-leak checks
in ``tests/cluster`` rely on this.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.errors import ClusterExecutionError

__all__ = ["FaultInjector", "InjectedFault"]


class InjectedFault(ClusterExecutionError):
    """The error raised by an injected node failure (transient by default)."""


class FaultInjector:
    """Per-node delay/failure hooks, consulted before every attempt."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._delays_ms: dict[str, float] = {}
        self._failures: dict[str, list[Any]] = {}  # node -> [left, error]
        self._default_delay_ms = 0.0

    # -- configuration ----------------------------------------------------

    def delay(self, node: str, ms: float) -> "FaultInjector":
        """Delay every attempt on ``node`` by ``ms`` milliseconds."""
        with self._lock:
            self._delays_ms[node] = float(ms)
        return self

    def delay_all(self, ms: float) -> "FaultInjector":
        """Uniform per-attempt latency for every node (simulated network)."""
        with self._lock:
            self._default_delay_ms = float(ms)
        return self

    def fail(self, node: str, times: int = 1,
             error: Exception | None = None) -> "FaultInjector":
        """Fail the next ``times`` attempts on ``node`` with ``error``."""
        with self._lock:
            self._failures[node] = [int(times), error]
        return self

    def clear(self) -> "FaultInjector":
        """Remove every configured fault."""
        with self._lock:
            self._delays_ms.clear()
            self._failures.clear()
            self._default_delay_ms = 0.0
        return self

    # -- the executor-facing hook -----------------------------------------

    def on_attempt(self, node: str, attempt: int,
                   cancel: threading.Event) -> bool:
        """Apply this node's faults to one attempt.

        Returns ``True`` when the attempt was cancelled while waiting out
        an injected delay (the caller must abandon the node), raises the
        injected error when a failure is due, and returns ``False`` when
        the attempt may proceed.
        """
        with self._lock:
            delay_ms = self._delays_ms.get(node, self._default_delay_ms)
        if delay_ms > 0 and cancel.wait(delay_ms / 1000.0):
            return True
        error: Exception | None = None
        due = False
        with self._lock:
            pending = self._failures.get(node)
            if pending is not None and pending[0] > 0:
                pending[0] -= 1
                due = True
                error = pending[1]
        if due:
            raise error if error is not None else InjectedFault(
                f"injected fault on {node} (attempt {attempt})")
        return False
