"""Parallel, fault-tolerant fan-out over cluster nodes.

The paper's distributed plan pushes one node-local top-N task to every
host and merges the returned rankings — "almost perfect shared nothing
parallelism".  :class:`Executor` is that fan-out: it runs one callable
per node on a :class:`~concurrent.futures.ThreadPoolExecutor` and
enforces the :class:`~repro.core.config.ExecutionPolicy` around each
node:

* **width** — ``max_workers`` bounds concurrency (``None`` = one worker
  per node; ``1`` degenerates to the old sequential visit, which the
  benchmarks use as the baseline),
* **deadline** — ``node_deadline_ms`` is a per-node budget measured
  from fan-out start; a node that misses it is *abandoned*: its cancel
  event is set (so cancellable waits such as
  :class:`~repro.cluster.faults.FaultInjector` delays wake immediately)
  and its outcome is marked ``timed_out``,
* **retry** — a raising attempt is retried up to ``retries`` times with
  exponential backoff starting at ``backoff_ms`` (the backoff sleep is
  also cancellable),
* **faults** — an optional :class:`FaultInjector` hook runs before
  every attempt, injecting latency or errors for tests and benchmarks.

The executor never interprets failures — it reports one
:class:`NodeOutcome` per node and leaves the partial-result policy
(``on_failure``: raise vs. degrade) to the caller, which knows how to
merge what survived.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.config import ExecutionPolicy

__all__ = ["Executor", "NodeOutcome"]


@dataclass
class NodeOutcome:
    """What happened on one node: value or error, attempts, timing."""

    node: str
    value: Any = None
    error: str | None = None
    attempts: int = 0
    elapsed_ms: float = 0.0
    timed_out: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None and not self.timed_out


@dataclass
class _NodeState:
    """Coordinator-side bookkeeping for one submitted node task."""

    cancel: threading.Event = field(default_factory=threading.Event)


class Executor:
    """Fan node tasks out under one :class:`ExecutionPolicy`."""

    def __init__(self, policy: ExecutionPolicy | None = None,
                 fault_injector=None):
        self.policy = policy or ExecutionPolicy()
        self.faults = fault_injector

    def run(self, tasks: dict[str, Callable[[], Any]]
            ) -> dict[str, NodeOutcome]:
        """Run every named task; returns one :class:`NodeOutcome` each.

        Outcomes preserve the order of ``tasks``.  The call blocks until
        every node either finished, failed its retry budget, or was
        abandoned at its deadline; abandoned nodes are cancelled
        cooperatively so the pool drains promptly.
        """
        if not tasks:
            return {}
        policy = self.policy
        workers = policy.max_workers or len(tasks)
        states = {name: _NodeState() for name in tasks}
        deadline_s = (policy.node_deadline_ms / 1000.0
                      if policy.node_deadline_ms is not None else None)
        outcomes: dict[str, NodeOutcome] = {}
        pool = ThreadPoolExecutor(max_workers=workers,
                                  thread_name_prefix="repro-cluster")
        start = time.perf_counter()
        try:
            futures = {
                name: pool.submit(self._run_node, name, fn,
                                  states[name].cancel)
                for name, fn in tasks.items()
            }
            for name, future in futures.items():
                remaining = None
                if deadline_s is not None:
                    remaining = max(0.0,
                                    start + deadline_s - time.perf_counter())
                try:
                    outcomes[name] = future.result(timeout=remaining)
                except _FutureTimeout:
                    # abandon the node: wake its cancellable waits; the
                    # worker (if it ever started) returns an outcome we
                    # no longer read
                    states[name].cancel.set()
                    future.cancel()
                    outcomes[name] = NodeOutcome(
                        node=name, attempts=1, timed_out=True,
                        error=("deadline exceeded "
                               f"({policy.node_deadline_ms:g}ms)"),
                        elapsed_ms=(time.perf_counter() - start) * 1000.0)
        finally:
            pool.shutdown(wait=True)
        return outcomes

    # -- one node ----------------------------------------------------------

    def _run_node(self, name: str, fn: Callable[[], Any],
                  cancel: threading.Event) -> NodeOutcome:
        policy = self.policy
        outcome = NodeOutcome(node=name)
        start = time.perf_counter()
        for attempt in range(1, policy.retries + 2):
            if cancel.is_set():
                outcome.timed_out = True
                outcome.error = outcome.error or "cancelled"
                break
            outcome.attempts = attempt
            try:
                if self.faults is not None \
                        and self.faults.on_attempt(name, attempt, cancel):
                    outcome.timed_out = True
                    outcome.error = "cancelled during injected delay"
                    break
                outcome.value = fn()
                outcome.error = None
                break
            except Exception as error:  # noqa: BLE001 - reported, not lost
                outcome.value = None
                outcome.error = f"{type(error).__name__}: {error}"
                if attempt <= policy.retries:
                    backoff_s = (policy.backoff_ms / 1000.0
                                 * (2 ** (attempt - 1)))
                    if backoff_s > 0 and cancel.wait(backoff_s):
                        outcome.timed_out = True
                        break
        outcome.elapsed_ms = (time.perf_counter() - start) * 1000.0
        return outcome
