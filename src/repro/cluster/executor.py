"""Parallel, fault-tolerant fan-out over cluster nodes.

The paper's distributed plan pushes one node-local top-N task to every
host and merges the returned rankings — "almost perfect shared nothing
parallelism".  :class:`Executor` is that fan-out: it runs one callable
per node on a :class:`~concurrent.futures.ThreadPoolExecutor` and
enforces the :class:`~repro.core.config.ExecutionPolicy` around each
node:

* **width** — ``max_workers`` bounds concurrency (``None`` = one worker
  per node; ``1`` degenerates to the old sequential visit, which the
  benchmarks use as the baseline),
* **deadline** — ``node_deadline_ms`` is a per-node budget measured
  from fan-out start; a node that misses it is *abandoned*: its cancel
  event is set (so cancellable waits such as
  :class:`~repro.cluster.faults.FaultInjector` delays wake immediately)
  and its outcome is marked ``timed_out``,
* **retry** — a raising attempt is retried up to ``retries`` times with
  *full-jitter* exponential backoff: the sleep before retry ``k`` is
  drawn uniformly from ``[0, backoff_ms * 2**(k-1))``, so a cluster of
  clients retrying against the same struggling node does not thunder
  back in lock-step.  Pass ``rng=random.Random(seed)`` for reproducible
  schedules in tests; the backoff sleep stays cancellable,
* **faults** — an optional :class:`FaultInjector` hook runs before
  every attempt, injecting latency or errors for tests and benchmarks.

The executor never interprets failures — it reports one
:class:`NodeOutcome` per node and leaves the partial-result policy
(``on_failure``: raise vs. degrade) to the caller, which knows how to
merge what survived.

Abandoning a node used to be silent and unbounded: the timed-out
worker thread kept running behind the pool's back and ``shutdown``
waited on it forever if the task ignored its cancel event.  Now
shutdown joins the recorded worker threads with a bounded grace period
(``shutdown_grace_ms``) instead of blocking indefinitely, and every
timed-out node whose thread is *still alive* after that join — a real,
if bounded, thread leak — increments the ``cluster.abandoned_threads``
counter; a node that honoured its cancel event drains inside the grace
and is not counted.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.config import ExecutionPolicy

__all__ = ["Executor", "NodeOutcome"]


@dataclass
class NodeOutcome:
    """What happened on one node: value or error, attempts, timing."""

    node: str
    value: Any = None
    error: str | None = None
    attempts: int = 0
    elapsed_ms: float = 0.0
    timed_out: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None and not self.timed_out


@dataclass
class _NodeState:
    """Coordinator-side bookkeeping for one submitted node task."""

    cancel: threading.Event = field(default_factory=threading.Event)
    # the pool thread that picked the task up (set by _run_node); the
    # bounded shutdown join and the abandonment accounting key off it
    thread: threading.Thread | None = None


class Executor:
    """Fan node tasks out under one :class:`ExecutionPolicy`."""

    def __init__(self, policy: ExecutionPolicy | None = None,
                 fault_injector=None, *,
                 rng: random.Random | None = None,
                 shutdown_grace_ms: float = 1000.0):
        self.policy = policy or ExecutionPolicy()
        self.faults = fault_injector
        self.rng = rng or random.Random()
        self.shutdown_grace_ms = shutdown_grace_ms

    def run(self, tasks: dict[str, Callable[[], Any]]
            ) -> dict[str, NodeOutcome]:
        """Run every named task; returns one :class:`NodeOutcome` each.

        Outcomes preserve the order of ``tasks``.  The call blocks until
        every node either finished, failed its retry budget, or was
        abandoned at its deadline; abandoned nodes are cancelled
        cooperatively so the pool drains promptly.
        """
        if not tasks:
            return {}
        policy = self.policy
        workers = policy.max_workers or len(tasks)
        states = {name: _NodeState() for name in tasks}
        deadline_s = (policy.node_deadline_ms / 1000.0
                      if policy.node_deadline_ms is not None else None)
        outcomes: dict[str, NodeOutcome] = {}
        pool = ThreadPoolExecutor(max_workers=workers,
                                  thread_name_prefix="repro-cluster")
        start = time.perf_counter()
        try:
            futures = {
                name: pool.submit(self._run_node, name, fn, states[name])
                for name, fn in tasks.items()
            }
            for name, future in futures.items():
                remaining = None
                if deadline_s is not None:
                    remaining = max(0.0,
                                    start + deadline_s - time.perf_counter())
                try:
                    outcomes[name] = future.result(timeout=remaining)
                except _FutureTimeout:
                    # abandon the node: wake its cancellable waits; the
                    # worker (if it ever started) returns an outcome we
                    # no longer read
                    states[name].cancel.set()
                    future.cancel()
                    outcomes[name] = NodeOutcome(
                        node=name, attempts=1, timed_out=True,
                        error=("deadline exceeded "
                               f"({policy.node_deadline_ms:g}ms)"),
                        elapsed_ms=(time.perf_counter() - start) * 1000.0)
        finally:
            # don't block forever on a node that ignores its cancel
            # event: cancel queued work, then join the live worker
            # threads for at most the grace period
            pool.shutdown(wait=False, cancel_futures=True)
            deadline = time.perf_counter() + self.shutdown_grace_ms / 1000.0
            for state in states.values():
                thread = state.thread
                if thread is None or thread is threading.current_thread():
                    continue
                thread.join(
                    timeout=max(0.0, deadline - time.perf_counter()))
            # a timed-out node whose thread outlived the grace join is a
            # real (bounded) leak; a node that honoured its cancel event
            # drained above and is *not* abandoned
            abandoned = len({
                state.thread
                for name, state in states.items()
                if outcomes.get(name) is not None
                and outcomes[name].timed_out
                and state.thread is not None
                and state.thread is not threading.current_thread()
                and state.thread.is_alive()})
            if abandoned:
                from repro.telemetry.runtime import get_telemetry
                get_telemetry().metrics.counter(
                    "cluster.abandoned_threads").add(abandoned)
        return outcomes

    # -- one node ----------------------------------------------------------

    def _backoff_s(self, attempt: int) -> float:
        """Full-jitter backoff before retrying after attempt ``attempt``.

        Uniform over ``[0, backoff_ms * 2**(attempt-1))`` seconds —
        the AWS-style "full jitter" variant, which decorrelates
        retry storms while keeping the exponential ceiling.  Seed the
        executor's ``rng`` to make schedules reproducible.
        """
        ceiling = self.policy.backoff_ms / 1000.0 * (2 ** (attempt - 1))
        return self.rng.uniform(0.0, ceiling) if ceiling > 0 else 0.0

    def _run_node(self, name: str, fn: Callable[[], Any],
                  state: _NodeState) -> NodeOutcome:
        policy = self.policy
        cancel = state.cancel
        state.thread = threading.current_thread()
        outcome = NodeOutcome(node=name)
        start = time.perf_counter()
        for attempt in range(1, policy.retries + 2):
            if cancel.is_set():
                outcome.timed_out = True
                outcome.error = outcome.error or "cancelled"
                break
            outcome.attempts = attempt
            try:
                if self.faults is not None \
                        and self.faults.on_attempt(name, attempt, cancel):
                    outcome.timed_out = True
                    outcome.error = "cancelled during injected delay"
                    break
                outcome.value = fn()
                outcome.error = None
                break
            except Exception as error:  # noqa: BLE001 - reported, not lost
                outcome.value = None
                outcome.error = f"{type(error).__name__}: {error}"
                if attempt <= policy.retries:
                    backoff_s = self._backoff_s(attempt)
                    if backoff_s > 0 and cancel.wait(backoff_s):
                        outcome.timed_out = True
                        break
        outcome.elapsed_ms = (time.perf_counter() - start) * 1000.0
        return outcome
