#!/usr/bin/env python3
"""The running example: a search engine for the Australian Open website.

Walks the full lifecycle of the paper:

1. *modeling* — the Fig 3 webspace schema + the Fig 6/7 video grammar,
2. *populating* — crawl the (synthetic) site, re-engineer the HTML into
   materialized views, shred them, index the Hypertext attributes, and
   analyse every match video through the feature grammar,
3. *querying* — ending with the paper's mixed query: "Show me video
   shots of left-handed female players, who have won the Australian
   Open in the past, and in which they approach the net."

Run:  python examples/ausopen_search.py
"""

from repro.core import EngineConfig, SearchEngine
from repro.web import build_ausopen_site
from repro.webspace import australian_open_schema


def main() -> None:
    print("building the Australian Open website (synthetic substitute)...")
    server, truth = build_ausopen_site(players=14, articles=12, videos=6,
                                       frames_per_shot=10)
    print(f"  {len(server)} resources on {server.domain}")

    print("\nstage 1 - modeling: the webspace schema")
    schema = australian_open_schema()
    for name, cls in schema.classes.items():
        attrs = ", ".join(f"{a}::{t.name}" for a, t in cls.attributes.items())
        print(f"  class {name}({attrs})")
    for name, assoc in schema.associations.items():
        print(f"  association {name}: {assoc.source} -> {assoc.target}")

    print("\nstage 2 - populating the index...")
    engine = SearchEngine(schema, server, EngineConfig(fragment_count=4))
    report = engine.populate()
    print(f"  crawled {report.pages_crawled} pages")
    print(f"  stored {report.documents_stored} materialized views")
    print(f"  indexed {report.hypertexts_indexed} Hypertext attributes")
    print(f"  analysed {report.videos_analyzed} videos "
          f"({report.detector_calls} detector calls)")
    stats = engine.stats()
    print(f"  conceptual store: {stats['conceptual']['relations']} "
          f"relations, {stats['conceptual']['buns']} associations")
    print(f"  meta store: {stats['meta']['relations']} relations, "
          f"{stats['meta']['buns']} associations")

    print("\nstage 3 - querying")

    print("\n  (a) conceptual search: left-handed players")
    query = (engine.new_query()
             .from_class("p", "Player")
             .where("p.plays", "==", "left")
             .select("p.name", "p.country")
             .top(20))
    for row in engine.query(query):
        print(f"      {row.value('p.name')} ({row.value('p.country')})")

    print("\n  (b) content-based text search: past champions")
    query = (engine.new_query()
             .from_class("p", "Player")
             .contains("p.history", "Winner championship")
             .select("p.name")
             .top(20))
    for row in engine.query(query):
        print(f"      {row.score:6.3f}  {row.value('p.name')}")

    print("\n  (c) cross-document join: articles about Monica Seles")
    query = (engine.new_query()
             .from_class("a", "Article")
             .from_class("p", "Player")
             .join("About", "a", "p")
             .where("p.name", "==", "Monica Seles")
             .select("a.title")
             .top(20))
    for row in engine.query(query):
        print(f"      {row.value('a.title')}")

    print("\n  (d) THE mixed query of the paper:")
    print('      "Show me video shots of left-handed female players,')
    print('       who have won the Australian Open in the past, and in')
    print('       which they approach the net."')
    query = (engine.new_query()
             .from_class("p", "Player")
             .where("p.gender", "==", "female")
             .where("p.plays", "==", "left")
             .contains("p.history", "Winner")
             .from_class("v", "Video")
             .join("Features", "v", "p")
             .video_event("v.video", "netplay")
             .select("p.name", "v.title", "v.video"))
    result = engine.query(query)
    for row in result:
        print(f"\n      player: {row.value('p.name')}")
        print(f"      video:  {row.value('v.title')}")
        print(f"      media:  {row.value('v.video')}")
        for shot in row.shots["v"]:
            print(f"        shot frames {shot.begin}-{shot.end} "
                  f"({shot.event})")

    expected = truth.mixed_query_answer()
    got = sorted((row.keys["p"], row.keys["v"]) for row in result)
    print(f"\n  ground truth check: {'PASS' if got == expected else 'FAIL'}"
          f"  (expected {expected})")

    print("\n  the executed physical plan (EXPLAIN ANALYZE):")
    for line in result.explain().splitlines():
        print(f"    {line}")

    print("\n  (e) audio: champions' interviews from the meta-index")
    query = (engine.new_query()
             .from_class("p", "Player")
             .audio_event("p.interview", "speech")
             .select("p.name")
             .top(10))
    for row in engine.query(query):
        turns = ", ".join(f"S{t.speaker}:{t.start:.1f}-{t.end:.1f}s"
                          for t in row.turns["p"][:4])
        print(f"      {row.value('p.name')}  [{turns}]")


if __name__ == "__main__":
    main()
