#!/usr/bin/env python3
"""Index maintenance: detector evolution handled by the FDS.

Shows the paper's three-level version scheme in action on the populated
Australian Open engine:

* a **correction** revision — nothing re-runs,
* a **minor** revision — the tennis detector re-runs per tennis shot;
  header and segment are never touched,
* a **major** revision with a *changed implementation* — the netplay
  events disappear from the meta-index and the mixed query's answer
  changes accordingly,
* a **source-data change** — one video is re-published and only its
  parse tree is regenerated.

Run:  python examples/incremental_maintenance.py
"""

from repro.cobra.video import generate_video, tennis_match_script
from repro.core import EngineConfig, SearchEngine
from repro.web import build_ausopen_site
from repro.webspace import australian_open_schema


def netplay_videos(engine) -> set[str]:
    query = (engine.new_query()
             .from_class("v", "Video")
             .video_event("v.video", "netplay")
             .select("v.title")
             .top(50))
    return {row.keys["v"] for row in engine.query(query)}


def main() -> None:
    server, truth = build_ausopen_site(players=10, articles=6, videos=4,
                                       frames_per_shot=8)
    engine = SearchEngine(australian_open_schema(), server,
                          EngineConfig(fragment_count=2))
    engine.populate()
    print(f"populated; videos with netplay: {sorted(netplay_videos(engine))}")

    print("\n1. correction revision of 'segment' (1.0.0 -> 1.0.1)")
    level = engine.upgrade_detector("segment", "1.0.1")
    engine.registry.reset_executions()
    report = engine.maintain()
    print(f"   change level: {level.name}; detectors re-run: "
          f"{report.detectors_rerun} (stored trees stay valid)")

    print("\n2. minor revision of 'tennis' (1.0.1 -> 1.1.0)")
    level = engine.upgrade_detector("tennis", "1.1.0")
    engine.registry.reset_executions()
    report = engine.maintain()
    print(f"   change level: {level.name}")
    print(f"   tennis re-ran {engine.registry.executions('tennis')}x; "
          f"segment {engine.registry.executions('segment')}x; "
          f"header {engine.registry.executions('header')}x")

    print("\n3. major revision: a new tennis tracker that never sees a "
          "net approach")

    def flat_tennis(location: str, begin: int, end: int) -> list:
        tokens = []
        for frame in range(begin, end + 1):
            tokens.extend([frame, 320.0, 320.0, 450, 0.5, 0.1])
        return tokens

    engine.registry.transports.get("xml-rpc").server.register(
        "tennis", flat_tennis)
    level = engine.upgrade_detector("tennis", "2.0.0")
    report = engine.maintain()
    print(f"   change level: {level.name}; re-runs: "
          f"{report.detectors_rerun}")
    print(f"   videos with netplay now: {sorted(netplay_videos(engine))} "
          f"(expected: none)")

    print("\n   ... rolling the tracker back to the real implementation "
          "(2.0.0 -> 3.0.0)")
    from repro.cobra.grammar import tennis_procedure
    engine.registry.transports.get("xml-rpc").server.register(
        "tennis", tennis_procedure(engine.video_library))
    engine.upgrade_detector("tennis", "3.0.0")
    engine.maintain()
    print(f"   videos with netplay restored: "
          f"{sorted(netplay_videos(engine))}")

    print("\n4. source-data change: video v0 is re-published with a new "
          "net-rush rally")
    video = truth.videos[0]
    url = server.absolute(video.media_path)
    new_script = tennis_match_script(rng_seed=123, rallies=2,
                                     netplay_rallies=(0, 1),
                                     frames_per_shot=8)
    replacement = generate_video(new_script, url, seed=123)
    server.add_media(video.media_path, ("video", "mpeg"),
                     payload=replacement, last_modified=2026)
    engine.video_library.add(replacement)
    changed = engine.notify_source_change(url)
    report = engine.maintain()
    print(f"   stale: {changed}; trees regenerated: "
          f"{report.trees_regenerated} (only v0's tree)")
    shots = [row.shots["v"] for row in engine.query(
        engine.new_query().from_class("v", "Video")
        .where("v.title", "==", video.title)
        .video_event("v.video", "netplay")
        .select("v.title"))]
    print(f"   v0's new netplay shots: "
          f"{[(s.begin, s.end) for group in shots for s in group]}")


if __name__ == "__main__":
    main()
