#!/usr/bin/env python3
"""Quickstart: the three levels of the architecture in five minutes.

1. physical level — store XML documents in the path-based Monet XML
   store and query them with path expressions;
2. IR hooks — full-text search with tf.idf and fragment-pruned top-N;
3. logical level — run a feature grammar over a multimedia object and
   inspect the extracted meta-data.

Run:  python examples/quickstart.py
"""

from repro.core.config import ExecutionPolicy
from repro.featuregrammar import FDE, DetectorRegistry, parse_grammar
from repro.featuregrammar.parsetree import tree_to_xml
from repro.ir import IrEngine
from repro.xmlstore import XmlStore, element, serialize


def physical_level() -> None:
    print("=" * 64)
    print("1. The physical level: path-based XML storage")
    print("=" * 64)
    store = XmlStore()
    for number, (title, body) in enumerate([
            ("Seles wins again", "a dominant display at Melbourne Park"),
            ("Rain delays play", "the roof closed over centre court"),
            ("A new champion", "the trophy went to a first-time winner")]):
        document = element("article", {"id": f"a{number}"},
                           element("title", None, title),
                           element("body", None, body))
        store.insert(f"article-{number}", document)

    print("path summary:", ", ".join(store.paths()))
    titles = store.query("/article/title/text()").value_list()
    print("all titles:", titles)
    original = store.reconstruct("article-1")
    print("reconstructed article-1:", serialize(original))
    print()


def ir_hooks() -> None:
    print("=" * 64)
    print("2. Full-text retrieval with the optimization hooks")
    print("=" * 64)
    engine = IrEngine(fragment_count=4)
    corpus = {
        "doc:final": "the champion lifted the trophy after the final",
        "doc:semi": "a tense semi final on a fast court",
        "doc:interview": "the winner spoke about the championship",
        "doc:weather": "rain and wind troubled the outside courts",
    }
    for url, text in corpus.items():
        engine.index(url, text)

    for url, score in engine.search_urls("champion trophy",
                                         policy=ExecutionPolicy(n=3)):
        print(f"  {score:6.3f}  {url}")
    result = engine.search_fragmented("champion trophy",
                                      policy=ExecutionPolicy(n=3))
    print(f"fragment-pruned top-3 read {result.tuples_read} TF tuples "
          f"across {result.fragments_read} fragments "
          f"(early stop: {result.stopped_early})")
    print()


def logical_level() -> None:
    print("=" * 64)
    print("3. The logical level: a feature grammar with detectors")
    print("=" * 64)
    grammar = parse_grammar("""
        %start Document(location);
        %detector words(location);
        %detector long_text  word_count > 3;
        %atom url location;
        %atom int word_count;
        %atom str word;

        Document : location words;
        words    : word_count word* verdict;
        verdict  : long_text?;
    """)
    registry = DetectorRegistry()

    texts = {"http://example.org/a.txt": "the quick brown fox jumps"}

    def words(location: str) -> list:
        tokens = texts[location].split()
        return [len(tokens)] + tokens

    registry.register("words", words, version="1.0.0")
    fde = FDE(grammar, registry)
    outcome = fde.parse("http://example.org/a.txt")
    print("detector calls:", outcome.detector_calls)
    print("parse tree as XML:")
    print(serialize(tree_to_xml(outcome.tree), pretty=True))
    print()


if __name__ == "__main__":
    physical_level()
    ir_hooks()
    logical_level()
    print("done - see examples/ausopen_search.py for the full system.")
