#!/usr/bin/env python3
"""The second case study: a Lonely Planet travel webspace.

The paper notes the system was also applied to "the Lonely Planet and a
computer science faculty websites".  This example demonstrates the
*flexibility* half of the title: the identical engine — same physical
store, same IR hooks, same query translator — drives a completely
different domain by swapping only the webspace schema and the
site-specific re-engineering extractor.

Run:  python examples/lonely_planet.py
"""

from repro.core import EngineConfig, SearchEngine
from repro.web.lonelyplanet import (build_lonelyplanet_site,
                                    lonely_planet_schema,
                                    reengineer_lonelyplanet)


def main() -> None:
    print("building the Lonely Planet webspace...")
    server, truth = build_lonelyplanet_site()
    print(f"  {len(server)} resources: {len(truth.destinations)} "
          f"destinations, {len(truth.regions)} regions, "
          f"{len(truth.activities)} activities")

    engine = SearchEngine(lonely_planet_schema(), server,
                          EngineConfig(fragment_count=2),
                          extractor=reengineer_lonelyplanet)
    report = engine.populate()
    print(f"  populated: {report.documents_stored} materialized views, "
          f"{report.hypertexts_indexed} Hypertext attributes indexed")

    queries = [
        ("destinations in Tanzania",
         "SELECT d.name FROM Destination d "
         "WHERE d.country = 'Tanzania' TOP 10"),
        ("alpine-region destinations (cross-document join)",
         "SELECT d.name, r.name FROM Destination d, Region r "
         "WHERE d Located_in r AND r.climate = 'alpine' TOP 10"),
        ("where can I go trekking? (three-way join)",
         "SELECT d.name FROM Destination d, Activity a "
         "WHERE d Offers a AND a.name = 'Trekking' TOP 10"),
        ("ranked text search: reef diving and beaches",
         "SELECT d.name FROM Destination d "
         "WHERE d.description CONTAINS 'reef diving beaches' TOP 5"),
        ("mixed: tropical regions + ranked description search",
         "SELECT d.name, r.name FROM Destination d, Region r "
         "WHERE d Located_in r AND r.climate = 'tropical' "
         "AND d.description CONTAINS 'temples beaches' TOP 5"),
    ]
    for label, text in queries:
        print(f"\n{label}:")
        print(f"  {' '.join(text.split())}")
        for row in engine.query_text(text):
            values = ", ".join(str(v) for v in row.values.values())
            score = f"  [{row.score:.3f}]" if row.score else ""
            print(f"    {values}{score}")


if __name__ == "__main__":
    main()
