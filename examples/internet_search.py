#!/usr/bin/env python3
"""The future-work scenario: the architecture on "the Internet".

Uses the *generic* Internet feature grammar of Fig 14 — HTML pages as
keyword bags plus ``&MMO`` anchor references that turn the grammar's
hierarchy into the web's link graph — with the generic multimedia
detectors the paper lists: photo/graphic classification, portrait
(face) detection and language identification.

Ends with the paper's query: "show me all portraits embedded in pages
containing keywords semantically related to the word 'champion'".

Run:  python examples/internet_search.py
"""

from repro.media import InternetSearchEngine
from repro.web import build_ausopen_site


def main() -> None:
    print("publishing a website to crawl (the synthetic Australian Open "
          "site doubles as an 'Internet' sample)...")
    server, truth = build_ausopen_site(players=12, articles=10, videos=4,
                                       frames_per_shot=8)

    print("\ncrawling by following &MMO references from the index page...")
    engine = InternetSearchEngine(server)
    report = engine.populate()
    print(f"  parsed {report.objects_parsed} multimedia objects")
    print(f"  {report.pages} HTML pages indexed for keywords")
    print(f"  {report.images} image branches analysed")
    if report.failures:
        print(f"  {len(report.failures)} objects failed to parse")

    print("\nlanguage detection (generic detector):")
    sample = server.absolute(truth.players[0].page_path)
    print(f"  {sample} -> {engine.page_language(sample)}")

    print("\nthesaurus expansion of 'champion':")
    print(f"  {engine.thesaurus.expand_query('champion')}")

    print("\npages ranked for concepts related to 'champion':")
    for url, score in engine.search_pages("champion", n=5):
        print(f"  {score:6.3f}  {url}")

    print('\nTHE query: "portraits embedded in pages containing keywords '
          "semantically related to the word 'champion'\"")
    hits = engine.portraits_about("champion", n=10)
    for hit in hits:
        print(f"  {hit.score:6.3f}  {hit.image_url}")
        print(f"          embedded in {hit.page_url}")

    champions = {server.absolute(p.picture_path)
                 for p in truth.players if p.is_champion}
    found = {hit.image_url for hit in hits}
    print(f"\nground truth check: every hit is a champion's portrait: "
          f"{'PASS' if found <= champions and found else 'FAIL'}")


if __name__ == "__main__":
    main()
