"""Packed BAT columns: storage classes, spill behavior, column views."""

from array import array

import pytest

from repro.errors import AtomTypeError, BatError
from repro.monetdb.atoms import Oid
from repro.monetdb.bat import BAT, ColumnView

pytestmark = pytest.mark.kernels


class TestPackedStorage:
    def test_numeric_atoms_pack_onto_arrays(self):
        bat = BAT("oid", "int")
        bat.insert(Oid(1), 10)
        assert bat.storage() == ("q", "q")
        flt = BAT("oid", "flt")
        flt.insert(Oid(1), 0.5)
        assert flt.storage() == ("q", "d")

    def test_variable_width_atoms_stay_lists(self):
        bat = BAT("oid", "str")
        bat.insert(Oid(1), "a")
        assert bat.storage() == ("q", "list")

    def test_int64_overflow_spills_to_list(self):
        bat = BAT("oid", "int")
        bat.insert(Oid(1), 2 ** 80)  # big ints are valid int atoms
        assert bat.storage() == ("q", "list")
        assert bat.find(Oid(1)) == 2 ** 80

    def test_append_many_overflow_spills(self):
        bat = BAT("oid", "int")
        bat.insert(Oid(1), 5)
        bat.append_many([Oid(2)], [2 ** 80])
        assert bat.storage() == ("q", "list")
        assert bat.tail == [5, 2 ** 80]

    def test_append_many_length_mismatch(self):
        bat = BAT("oid", "int")
        with pytest.raises(BatError, match="length mismatch"):
            bat.append_many([Oid(1), Oid(2)], [1])

    def test_append_many_rejects_bad_atoms_wholesale(self):
        bat = BAT("oid", "int")
        with pytest.raises(AtomTypeError):
            bat.append_many([Oid(1), Oid(2)], [1, "nope"])
        assert bat.count() == 0  # nothing partially appended

    def test_find_after_batch_append(self):
        bat = BAT("oid", "int")
        bat.append_many([Oid(i) for i in range(100)], list(range(100)))
        assert bat.find(Oid(42)) == 42
        assert bat.get_many([Oid(3), Oid(99)]) == [3, 99]


class TestColumnView:
    def test_equals_lists_tuples_and_arrays(self):
        bat = BAT("oid", "int")
        bat.append_many([Oid(1), Oid(2)], [10, 20])
        assert bat.tail == [10, 20]
        assert bat.tail == (10, 20)
        assert bat.tail == array("q", [10, 20])
        assert bat.tail != [10, 21]
        assert bat.tail != [10]

    def test_oid_heads_rewrap_as_oid(self):
        bat = BAT("oid", "int")
        bat.insert(Oid(7), 1)
        assert isinstance(bat.head[0], Oid)
        assert all(isinstance(h, Oid) for h in bat.head)
        assert isinstance(list(bat.head)[0], Oid)

    def test_slicing_preserves_wrap(self):
        bat = BAT("oid", "int")
        bat.append_many([Oid(1), Oid(2), Oid(3)], [1, 2, 3])
        tail_slice = bat.head[1:]
        assert list(tail_slice) == [2, 3]
        assert all(isinstance(h, Oid) for h in tail_slice)

    def test_views_are_unhashable(self):
        bat = BAT("oid", "int")
        bat.insert(Oid(1), 1)
        with pytest.raises(TypeError):
            hash(bat.head)

    def test_view_tracks_live_column(self):
        bat = BAT("oid", "int")
        view = bat.tail
        bat.insert(Oid(1), 9)
        assert isinstance(view, ColumnView)
        assert len(bat.tail) == 1
