"""The compiled-plan cache: LRU unit behavior and the top-N wiring."""

import pytest

from repro.core.plan_cache import PlanCache, get_plan_cache
from repro.ir.fragmentation import FragmentSet, fragment_by_idf
from repro.ir.ranking import query_term_oids
from repro.ir.topn import topn_fragmented

pytestmark = pytest.mark.kernels


class TestPlanCacheUnit:
    def test_miss_then_hit(self):
        cache = PlanCache(capacity=4)
        plan, hit = cache.get_or_compile("k", lambda: "plan")
        assert (plan, hit) == ("plan", False)
        plan, hit = cache.get_or_compile("k", lambda: "other")
        assert (plan, hit) == ("plan", True)  # cached, not recompiled
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_at_capacity(self):
        cache = PlanCache(capacity=2)
        cache.get_or_compile("a", lambda: 1)
        cache.get_or_compile("b", lambda: 2)
        cache.get_or_compile("a", lambda: 0)   # refresh a's recency
        cache.get_or_compile("c", lambda: 3)   # evicts b, not a
        assert cache.get_or_compile("a", lambda: 9) == (1, True)
        assert cache.get_or_compile("b", lambda: 9) == (9, False)

    def test_invalidate_drops_everything(self):
        cache = PlanCache(capacity=4)
        cache.get_or_compile("a", lambda: 1)
        cache.get_or_compile("b", lambda: 2)
        assert cache.invalidate() == 2
        assert len(cache) == 0
        assert cache.invalidate() == 0

    def test_stats_shape(self):
        cache = PlanCache(capacity=3)
        cache.get_or_compile("a", lambda: 1)
        cache.get_or_compile("a", lambda: 1)
        assert cache.stats() == {"entries": 1, "capacity": 3,
                                 "hits": 1, "misses": 1}

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match=">= 1"):
            PlanCache(capacity=0)

    def test_process_wide_singleton(self):
        assert get_plan_cache() is get_plan_cache()


class TestTopNPlanCacheWiring:
    def test_repeated_shape_hits(self, relations, fragments):
        terms = query_term_oids(relations, "w0 w3")
        first = topn_fragmented(fragments, terms, 10)
        again = topn_fragmented(fragments, terms, 10)
        # the very first execution may or may not hit (the process-wide
        # cache is shared across tests); the repeat must hit
        assert again.details["plan_cache_hit"] is True
        assert again.ranking == first.ranking

    def test_plan_cache_false_bypasses(self, relations, fragments):
        terms = query_term_oids(relations, "w0 w3")
        topn_fragmented(fragments, terms, 10)  # warm the shape
        cold = topn_fragmented(fragments, terms, 10, plan_cache=False)
        assert cold.details["plan_cache_hit"] is False
        assert cold.ranking == topn_fragmented(fragments, terms,
                                               10).ranking

    def test_tokenless_fragments_never_cached(self, relations):
        # hand-built sets carry plan_token=None: caching on object
        # identity would resurrect plans across rebuilds
        assert FragmentSet().plan_token is None
        terms = query_term_oids(relations, "w0")
        result = topn_fragmented(FragmentSet(), terms, 5)
        assert result.details["plan_cache_hit"] is False

    def test_distinct_shapes_are_distinct_entries(self, relations,
                                                  fragments):
        terms = query_term_oids(relations, "w10 w2 w5")
        before = get_plan_cache().stats()["misses"]
        topn_fragmented(fragments, terms, 7, plan_cache=True)
        topn_fragmented(fragments, terms, 8, plan_cache=True)  # new n
        after = get_plan_cache().stats()["misses"]
        assert after >= before  # both shapes compiled at most once each

    def test_rebuilt_layout_mints_new_key(self, relations):
        a = fragment_by_idf(relations, 2)
        relations.add_document("http://site/new", "w0 w1")
        relations.refresh_idf()
        b = fragment_by_idf(relations, 2)
        assert a.plan_token != b.plan_token
