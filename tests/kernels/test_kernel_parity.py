"""Bit-identical parity: columnar kernels vs the scalar reference path.

The redesign's bar is not "close" — every ranking (scores included) and
every piece of work accounting must match the scalar body exactly, for
every combination of pruning, refinement and fragment layout.
"""

import random

import pytest

from repro.ir.distributed import patch_fragment_idf
from repro.ir.fragmentation import Fragment, FragmentSet, fragment_by_idf
from repro.ir.ranking import query_term_oids, rank_tfidf
from repro.ir.topn import kernels_available, topn_fragmented

from tests.kernels.conftest import QUERIES, build_relations

pytestmark = pytest.mark.kernels

needs_numpy = pytest.mark.skipif(not kernels_available(),
                                 reason="numpy not importable")


def both_bodies(fragments, terms, n, **kwargs):
    scalar = topn_fragmented(fragments, terms, n, kernel=False, **kwargs)
    columnar = topn_fragmented(fragments, terms, n, kernel=True, **kwargs)
    return scalar, columnar


@needs_numpy
class TestTopNParity:
    @pytest.mark.parametrize("query", QUERIES)
    @pytest.mark.parametrize("n", [5, 10, 50])
    @pytest.mark.parametrize("prune", [True, False])
    def test_rankings_bit_identical(self, relations, fragments, query,
                                    n, prune):
        terms = query_term_oids(relations, query)
        scalar, columnar = both_bodies(fragments, terms, n, prune=prune)
        assert columnar.ranking == scalar.ranking  # scores included
        assert columnar.tuples_read == scalar.tuples_read
        assert columnar.fragments_read == scalar.fragments_read
        assert columnar.stopped_early == scalar.stopped_early

    @pytest.mark.parametrize("query", QUERIES)
    def test_refine_parity(self, relations, fragments, query):
        terms = query_term_oids(relations, query)
        scalar, columnar = both_bodies(fragments, terms, 5,
                                       prune=True, refine=True)
        assert columnar.ranking == scalar.ranking
        assert columnar.tuples_read == scalar.tuples_read

    def test_shuffled_term_order_parity(self, relations, fragments):
        terms = query_term_oids(relations, "w7 w0 trophy w2")
        shuffled = list(terms)
        random.Random(3).shuffle(shuffled)
        scalar, columnar = both_bodies(fragments, shuffled, 10)
        assert columnar.ranking == scalar.ranking
        # term order must not matter either way: the plan freezes one
        # canonical set-iteration order for both bodies
        assert columnar.ranking == topn_fragmented(
            fragments, terms, 10, kernel=True).ranking

    def test_random_order_fragmentation_parity(self, relations):
        fragments = fragment_by_idf(relations, 4, order="random")
        terms = query_term_oids(relations, "w10 w2 w5")
        scalar, columnar = both_bodies(fragments, terms, 10)
        assert columnar.ranking == scalar.ranking
        assert columnar.tuples_read == scalar.tuples_read

    def test_patched_idf_view_parity(self, relations, fragments):
        # the distributed plan patches per-term idf with global weights
        # keyed by the term *string*; the patched view shares the packed
        # columns and plan token, so the kernel must follow
        global_idf = {f"w{i}": 0.25 / (i + 1) for i in range(40)}
        global_idf["trophy"] = 0.9
        patched = patch_fragment_idf(fragments, relations, global_idf)
        assert patched.plan_token == fragments.plan_token
        terms = query_term_oids(relations, "w7 w0 trophy")
        scalar, columnar = both_bodies(patched, terms, 10)
        assert columnar.ranking == scalar.ranking
        assert scalar.ranking != topn_fragmented(
            fragments, terms, 10, kernel=False).ranking  # patch took

    def test_single_fragment_layout(self, relations):
        fragments = fragment_by_idf(relations, 1)
        terms = query_term_oids(relations, "trophy melbourne")
        scalar, columnar = both_bodies(fragments, terms, 10)
        assert columnar.ranking == scalar.ranking

    def test_out_of_vocabulary_query(self, relations, fragments):
        assert query_term_oids(relations, "zzz qqq") == []
        scalar, columnar = both_bodies(fragments, [], 10)
        assert columnar.ranking == scalar.ranking == []


@needs_numpy
class TestRankTfidfParity:
    @pytest.mark.parametrize("query", QUERIES)
    def test_full_relation_scoring(self, relations, query):
        assert rank_tfidf(relations, query, 10, kernel=True) == \
            rank_tfidf(relations, query, 10, kernel=False)

    def test_unlimited_n(self, relations):
        assert rank_tfidf(relations, "w0 w1", None, kernel=True) == \
            rank_tfidf(relations, "w0 w1", None, kernel=False)

    def test_duplicate_query_terms_contribute_twice(self, relations):
        assert rank_tfidf(relations, "w0 w0", 10, kernel=True) == \
            rank_tfidf(relations, "w0 w0", 10, kernel=False)


class TestKernelDispatch:
    def test_auto_dispatch_reports_body(self, relations, fragments):
        terms = query_term_oids(relations, "w0")
        result = topn_fragmented(fragments, terms, 5)
        expected = "columnar" if kernels_available() else "scalar"
        assert result.details["kernel"] == expected

    def test_forced_scalar_reports_scalar(self, relations, fragments):
        terms = query_term_oids(relations, "w0")
        result = topn_fragmented(fragments, terms, 5, kernel=False)
        assert result.details["kernel"] == "scalar"

    def test_hand_built_fragments_fall_back_to_scalar(self, relations):
        # no packed columns, no doc universe: scalar reference path
        terms = query_term_oids(relations, "w0")
        term = terms[0]
        hand_built = FragmentSet(fragments=[Fragment(
            index=0, term_oids={term},
            postings={term: relations.postings(term)},
            idf={term: relations.idf(term)},
            max_tf={term: max((tf for _, tf in relations.postings(term)),
                              default=0)})])
        result = topn_fragmented(hand_built, terms, 5)
        assert result.details["kernel"] == "scalar"

    def test_kernel_true_on_hand_built_fragments_raises(self, relations):
        terms = query_term_oids(relations, "w0")
        with pytest.raises(ValueError, match="packed fragments"):
            topn_fragmented(FragmentSet(), terms, 5, kernel=True)

    def test_fresh_index_rebuild_keeps_parity(self):
        # mutate after fragmenting: rebuilt fragments carry a new plan
        # token and both bodies agree on the new layout
        relations = build_relations(seed=11, docs=40)
        fragments = fragment_by_idf(relations, 3)
        old_token = fragments.plan_token
        relations.add_document("http://site/extra", "trophy w0 w0 w5")
        relations.refresh_idf()
        fragments = fragment_by_idf(relations, 3)
        assert fragments.plan_token != old_token
        terms = query_term_oids(relations, "trophy w0")
        scalar = topn_fragmented(fragments, terms, 10, kernel=False)
        if kernels_available():
            columnar = topn_fragmented(fragments, terms, 10, kernel=True)
            assert columnar.ranking == scalar.ranking
        assert any(doc == relations.doc_oid("http://site/extra")
                   for doc, _ in scalar.ranking)
