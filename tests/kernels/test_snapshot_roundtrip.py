"""Snapshots round-trip the packed layout and reproduce rankings."""

import pytest

from repro.ir.fragmentation import fragment_by_idf
from repro.ir.ranking import query_term_oids, rank_tfidf
from repro.ir.relations import IrRelations
from repro.ir.topn import topn_fragmented
from repro.monetdb.atoms import Oid
from repro.monetdb.bat import BAT
from repro.monetdb.catalog import Catalog
from repro.monetdb.persistence import load_catalog, save_catalog

from tests.kernels.conftest import QUERIES, build_relations

pytestmark = pytest.mark.kernels


class TestPackedRoundTrip:
    def test_storage_classes_survive(self, tmp_path):
        catalog = Catalog()
        ints = catalog.ensure("t:ints", "oid", "int")
        ints.append_many([Oid(1), Oid(2)], [10, 20])
        flts = catalog.ensure("t:flts", "oid", "flt")
        flts.insert(Oid(1), 0.25)
        strs = catalog.ensure("t:strs", "oid", "str")
        strs.insert(Oid(1), "hello")
        path = tmp_path / "snap.jsonl"
        save_catalog(catalog, path)
        loaded = load_catalog(path)
        assert loaded.get("t:ints").storage() == ("q", "q")
        assert loaded.get("t:flts").storage() == ("q", "d")
        assert loaded.get("t:strs").storage() == ("q", "list")

    def test_values_and_types_survive(self, tmp_path):
        catalog = Catalog()
        bat = catalog.ensure("t:pairs", "oid", "int")
        bat.append_many([Oid(i) for i in range(50)],
                        [i * 3 for i in range(50)])
        path = tmp_path / "snap.jsonl"
        save_catalog(catalog, path)
        loaded = load_catalog(path).get("t:pairs")
        assert loaded.head == bat.head
        assert loaded.tail == bat.tail
        assert isinstance(loaded.head[0], Oid)

    def test_spilled_big_int_survives(self, tmp_path):
        catalog = Catalog()
        bat = catalog.ensure("t:big", "oid", "int")
        bat.insert(Oid(1), 2 ** 80)
        path = tmp_path / "snap.jsonl"
        save_catalog(catalog, path)
        loaded = load_catalog(path).get("t:big")
        assert loaded.find(Oid(1)) == 2 ** 80
        assert loaded.storage()[1] == "list"


class TestIrRoundTrip:
    @pytest.fixture
    def restored(self, tmp_path):
        original = build_relations(seed=5, docs=60)
        path = tmp_path / "ir.jsonl"
        save_catalog(original.catalog, path)
        restored = IrRelations(load_catalog(path))
        restored.refresh_idf()
        return original, restored

    @pytest.mark.parametrize("query", QUERIES)
    def test_rank_tfidf_identical_after_restore(self, restored, query):
        original, loaded = restored
        assert rank_tfidf(loaded, query, 10) == \
            rank_tfidf(original, query, 10)

    def test_fragmented_topn_identical_after_restore(self, restored):
        original, loaded = restored
        for query in QUERIES:
            a = topn_fragmented(fragment_by_idf(original, 4),
                                query_term_oids(original, query), 10)
            b = topn_fragmented(fragment_by_idf(loaded, 4),
                                query_term_oids(loaded, query), 10)
            assert a.ranking == b.ranking

    def test_restored_index_repacks(self, restored):
        _, loaded = restored
        index = loaded.postings_index()
        assert len(index.doc_ids) == loaded.document_count()
        packed = loaded.packed_postings(loaded.term_oid("w0"))
        assert packed is not None
        assert packed.docs.typecode == "q"
        assert packed.tf_weights.typecode == "d"
