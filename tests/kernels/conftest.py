"""Fixtures for the columnar-kernel parity suite.

A deterministic ~80-document corpus over a small vocabulary, sized so
queries hit multiple fragments and pruning actually stops early on some
of them — the regime where the scalar and columnar bodies could diverge
if their bound bookkeeping ever drifted apart.
"""

import random

import pytest

from repro.ir.fragmentation import fragment_by_idf
from repro.ir.relations import IrRelations

WORDS = [f"w{i}" for i in range(40)] + ["trophy", "melbourne"]

QUERIES = [
    "trophy melbourne",
    "w0 w3",
    "w10 w2 w5",
    "w1",
    "w7 w0 trophy",
]


def build_relations(seed: int = 7, docs: int = 80) -> IrRelations:
    rng = random.Random(seed)
    relations = IrRelations()
    for i in range(docs):
        # skewed draw: low-index words are common (low idf), the tail
        # is rare (high idf) — gives fragment_by_idf a real gradient
        length = rng.randint(5, 30)
        body = " ".join(
            WORDS[min(int(rng.expovariate(0.12)), len(WORDS) - 1)]
            for _ in range(length))
        relations.add_document(f"http://site/d{i}", body)
    relations.refresh_idf()
    return relations


@pytest.fixture
def relations():
    return build_relations()


@pytest.fixture
def fragments(relations):
    return fragment_by_idf(relations, 4)
