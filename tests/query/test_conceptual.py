"""Schema 2 through the integrated conceptual engine and WebspaceQuery."""

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import SearchEngine
from repro.errors import QueryError
from repro.service.api import SCHEMA_VERSION_V2, SearchRequest
from repro.web.ausopen import build_ausopen_site
from repro.webspace.schema import australian_open_schema

pytestmark = pytest.mark.query

CONTAINS = ("SELECT p.name FROM Player p "
            "WHERE p.history CONTAINS 'Winner' TOP 5")


@pytest.fixture(scope="module")
def search_engine():
    server, _ = build_ausopen_site(players=8, articles=4, videos=2,
                                   frames_per_shot=6)
    engine = SearchEngine(australian_open_schema(), server, EngineConfig())
    engine.populate()
    return engine


def v2(query, **kwargs):
    return SearchRequest(query=query, schema_version=SCHEMA_VERSION_V2,
                         **kwargs)


class TestConceptualV2:
    def test_v1_wire_shape_untouched(self, search_engine):
        payload = search_engine.execute(
            SearchRequest(query=CONTAINS)).to_dict()
        assert payload["schema_version"] == 1
        assert "facets" not in payload and "total" not in payload

    def test_facets_sort_and_pagination(self, search_engine):
        response = search_engine.execute(
            v2(CONTAINS, facets=("gender",), sort=(("name", "asc"),),
               limit=1, offset=0))
        payload = response.to_dict()
        assert payload["schema_version"] == 2
        assert payload["total"] >= len(response.hits) == 1
        assert sum(payload["facets"]["p.gender"].values()) \
            == payload["total"]

    def test_equality_filter(self, search_engine):
        unfiltered = search_engine.execute(v2(CONTAINS, limit=10))
        filtered = search_engine.execute(
            v2(CONTAINS, filters=(("gender", "female"),), limit=10))
        assert 0 < len(filtered.hits) < len(unfiltered.hits)

    def test_bare_filter_names_resolve_to_the_unique_binding(
            self, search_engine):
        qualified = search_engine.execute(
            v2(CONTAINS, filters=(("p.gender", "female"),), limit=10))
        bare = search_engine.execute(
            v2(CONTAINS, filters=(("gender", "female"),), limit=10))
        assert [h.key for h in qualified.hits] \
            == [h.key for h in bare.hits]

    def test_unknown_filter_attribute_is_a_query_error(self,
                                                       search_engine):
        with pytest.raises(QueryError):
            search_engine.execute(
                v2(CONTAINS, filters=(("colour", "blue"),)))

    def test_v2_and_v1_cache_entries_stay_apart(self, search_engine):
        search_engine.query_cache.invalidate()
        cold_v1 = search_engine.execute(SearchRequest(query=CONTAINS))
        cold_v2 = search_engine.execute(v2(CONTAINS, limit=1))
        assert not cold_v1.cache_hit and not cold_v2.cache_hit
        assert search_engine.execute(
            SearchRequest(query=CONTAINS)).cache_hit
        assert search_engine.execute(v2(CONTAINS, limit=1)).cache_hit


class TestWebspaceBuilders:
    def test_contains_phrase_requires_adjacency(self, search_engine):
        loose = (search_engine.new_query().from_class("p", "Player")
                 .contains("p.history", "Australian Winner")
                 .select("p.name"))
        phrase = (search_engine.new_query().from_class("p", "Player")
                  .contains_phrase("p.history", "Australian Open")
                  .select("p.name"))
        assert len(search_engine.query(phrase).rows) > 0
        assert len(search_engine.query(loose).rows) \
            >= len(search_engine.query(phrase).rows)

    def test_contains_query_boolean(self, search_engine):
        rich = (search_engine.new_query().from_class("p", "Player")
                .contains_query("p.history", "winner AND NOT finalist")
                .select("p.name"))
        result = search_engine.query(rich)
        assert all(row.score > 0 for row in result.rows)

    def test_order_facet_skip(self, search_engine):
        query = (search_engine.new_query().from_class("p", "Player")
                 .contains("p.history", "winner")
                 .order_by("p.name").facet("p.gender").skip(1)
                 .select("p.name"))
        result = search_engine.query(query)
        assert result.total_rows is not None
        assert result.total_rows == len(result.rows) + 1
        assert "p.gender" in result.facets

    def test_builder_validation(self, search_engine):
        query = search_engine.new_query().from_class("p", "Player")
        with pytest.raises(QueryError):
            query.contains("p.history", "x", kind="fuzzy")
        with pytest.raises(QueryError):
            query.where_range("p.gender", None, None)
        with pytest.raises(QueryError):
            query.skip(-1)
