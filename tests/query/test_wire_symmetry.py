"""Property tests: the response wire contract is symmetric.

Two laws, both dialects:

* object law — ``SearchResponse.from_dict(x.to_dict()) == x`` for
  every response whose non-wire fields are at their defaults (the
  ``result`` object and the request's execution policy never cross
  the wire, by design),
* payload law — ``from_dict(d).to_dict() == d`` for every valid wire
  payload, so a relay that parses and re-serializes is a byte-level
  no-op.

:class:`~repro.service.api.ErrorResponse` obeys the same pair.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.service.api import (MODE_CONTENT, MODE_FRAGMENTED, MODES,
                               SCHEMA_VERSION, SCHEMA_VERSION_V2,
                               ErrorResponse, Hit, SearchRequest,
                               SearchResponse)

pytestmark = [pytest.mark.query, pytest.mark.offline]

finite = st.floats(allow_nan=False, allow_infinity=False)
names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
    min_size=1, max_size=12)


@st.composite
def hits(draw):
    values = draw(st.dictionaries(names, st.one_of(
        st.text(max_size=20), st.integers(), finite,
        st.booleans(), st.none()), max_size=3))
    return Hit(key=draw(st.text(min_size=1, max_size=30)),
               score=draw(finite),
               values=tuple(sorted(values.items(), key=lambda kv: kv[0])))


@st.composite
def facet_tables(draw):
    """Facets in the canonical order to_dict/from_dict agree on:
    count desc, then value asc."""
    table = draw(st.dictionaries(
        names,
        st.dictionaries(names, st.integers(min_value=1, max_value=99),
                        max_size=4),
        max_size=3))
    return tuple(
        (facet, tuple(sorted(counts.items(),
                             key=lambda item: (-item[1], item[0]))))
        for facet, counts in table.items())


@st.composite
def responses(draw):
    version = draw(st.sampled_from((SCHEMA_VERSION, SCHEMA_VERSION_V2)))
    mode = draw(st.sampled_from(
        MODES if version == SCHEMA_VERSION
        else (MODE_CONTENT, MODE_FRAGMENTED)))
    request = SearchRequest(
        query=draw(st.text(min_size=1, max_size=40)
                   .filter(lambda s: s.strip())),
        mode=mode,
        trace_id=draw(st.none() | st.text(min_size=1, max_size=16)),
        schema_version=version)
    extras = {}
    if version == SCHEMA_VERSION_V2:
        extras["facets"] = draw(facet_tables())
        extras["total"] = draw(
            st.none() | st.integers(min_value=0, max_value=10_000))
    return SearchResponse(
        request=request,
        hits=tuple(draw(st.lists(hits(), max_size=5))),
        elapsed_ms=draw(finite), queue_ms=draw(finite),
        degraded=draw(st.booleans()), cache_hit=draw(st.booleans()),
        coalesced=draw(st.booleans()),
        failed_nodes=tuple(draw(st.lists(names, max_size=3))),
        tuples_touched=draw(st.integers(min_value=0, max_value=10**6)),
        **extras)


@st.composite
def error_envelopes(draw):
    return ErrorResponse(
        kind=draw(st.sampled_from(("bad_request", "not_found", "rate",
                                   "queue", "timeout", "draining",
                                   "internal"))),
        message=draw(st.text(min_size=1, max_size=60)),
        retry_after=draw(st.none() | st.floats(min_value=0.001,
                                               max_value=3600.0)))


class TestRoundTripLaws:
    @settings(max_examples=200)
    @given(hit=hits())
    def test_hit_object_law(self, hit):
        assert Hit.from_dict(hit.to_dict()) == hit

    @settings(max_examples=200)
    @given(response=responses())
    def test_response_object_law(self, response):
        assert SearchResponse.from_dict(response.to_dict()) == response

    @settings(max_examples=200)
    @given(response=responses())
    def test_response_payload_law(self, response):
        payload = response.to_dict()
        assert SearchResponse.from_dict(payload).to_dict() == payload

    @settings(max_examples=100)
    @given(envelope=error_envelopes())
    def test_error_envelope_both_laws(self, envelope):
        assert ErrorResponse.from_dict(envelope.to_dict()) == envelope
        payload = envelope.to_dict()
        assert ErrorResponse.from_dict(payload).to_dict() == payload


class TestMalformationsAreTyped:
    def base(self, **overrides):
        payload = SearchResponse(
            request=SearchRequest(query="q", mode="content")).to_dict()
        payload.update(overrides)
        return payload

    def test_unknown_fields_are_rejected(self):
        with pytest.raises(QueryError, match="unknown response fields"):
            SearchResponse.from_dict(self.base(surprise=1))

    def test_v2_only_fields_are_rejected_on_v1(self):
        # 'facets' is not part of the frozen v1 key set; a v1 payload
        # carrying it is malformed, not leniently accepted
        with pytest.raises(QueryError, match="facets"):
            SearchResponse.from_dict(self.base(facets={}))

    def test_row_count_must_match_hits(self):
        with pytest.raises(QueryError, match="rows"):
            SearchResponse.from_dict(self.base(rows=7))

    def test_non_numeric_score_is_rejected(self):
        with pytest.raises(QueryError, match="score"):
            Hit.from_dict({"key": "k", "score": "high"})

    def test_unsupported_schema_version_is_rejected(self):
        with pytest.raises(QueryError, match="schema_version"):
            SearchResponse.from_dict(self.base(schema_version=3))

    def test_error_envelope_needs_kind_and_message(self):
        with pytest.raises(QueryError, match="kind"):
            ErrorResponse.from_dict({"error": {"message": "m"}})
