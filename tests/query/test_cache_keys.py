"""Cache-key discipline: structured shapes never share entries.

Satellite 4: the result cache and the compiled-plan cache key on the
query *shape* — the same term list under different fields, boosts,
filters, sort or pagination must never serve one another's entries.
"""

import pytest

from repro.core.config import ExecutionPolicy
from repro.ir.engine import IrEngine
from repro.ir.topn import topn_structured
from repro.query import compile_query, parse_rich_query
from repro.service.api import MODE_CONTENT, SearchRequest

from tests.query.conftest import ARTICLES, PAPERS, PLAIN_DOCS

pytestmark = pytest.mark.query


@pytest.fixture
def engine():
    engine = IrEngine(fragment_count=4)
    for key, title, abstract, year in PAPERS:
        engine.index(f"Paper:{key}:title", title)
        engine.index(f"Paper:{key}:abstract", abstract)
        engine.index(f"Paper:{key}:year", year)
    for key, title in ARTICLES:
        engine.index(f"Article:{key}:title", title)
    for url, text in PLAIN_DOCS:
        engine.index(url, text)
    return engine


def v2(query, **kwargs):
    return SearchRequest(query=query, mode=MODE_CONTENT,
                         schema_version=2, **kwargs)


class TestResultCacheKeys:
    def test_same_terms_different_fields_never_collide(self, engine):
        everywhere = engine.execute(v2("library"))
        fielded = engine.execute(v2("title:library"))
        assert len(fielded.hits) < len(everywhere.hits)
        # warm repeats serve each their own entry
        assert engine.execute(v2("library")).cache_hit
        assert engine.execute(v2("title:library")).cache_hit
        assert len(engine.execute(v2("title:library")).hits) \
            == len(fielded.hits)

    def test_same_text_different_boosts_never_collide(self, engine):
        plain = engine.execute(v2("digital library"))
        boosted = engine.execute(v2("digital library",
                                    boosts=(("title", 100.0),)))
        assert [(h.key, h.score) for h in plain.hits] \
            != [(h.key, h.score) for h in boosted.hits]
        warm = engine.execute(v2("digital library",
                                 boosts=(("title", 100.0),)))
        assert warm.cache_hit
        assert [(h.key, h.score) for h in warm.hits] \
            == [(h.key, h.score) for h in boosted.hits]

    def test_filters_and_pagination_never_collide(self, engine):
        everything = engine.execute(v2("1999 OR 1989"))
        filtered = engine.execute(v2("1999 OR 1989",
                                     filters=(("year", "1990-"),)))
        assert len(filtered.hits) < len(everything.hits)
        page1 = engine.execute(v2("digital library", limit=2))
        page2 = engine.execute(v2("digital library", limit=2, offset=2))
        assert [h.key for h in page1.hits] != [h.key for h in page2.hits]
        assert engine.execute(v2("digital library", limit=2)).cache_hit
        assert engine.execute(
            v2("digital library", limit=2, offset=2)).cache_hit

    def test_sort_never_collides_with_score_order(self, engine):
        ranked = engine.execute(v2("digital library"))
        by_url = engine.execute(v2("digital library",
                                   sort=(("url", "asc"),)))
        urls = [h.key for h in by_url.hits]
        assert urls == sorted(urls)
        assert [h.key for h in ranked.hits] != urls
        assert engine.execute(
            v2("digital library", sort=(("url", "asc"),))).cache_hit

    def test_v1_and_v2_of_the_same_text_never_collide(self, engine):
        text = "digital library"
        cold_v1 = engine.execute(SearchRequest(query=text,
                                               mode=MODE_CONTENT))
        assert not cold_v1.cache_hit
        cold_v2 = engine.execute(v2(text, facets=("class",)))
        assert not cold_v2.cache_hit
        assert engine.execute(SearchRequest(query=text,
                                            mode=MODE_CONTENT)).cache_hit
        assert engine.execute(v2(text, facets=("class",))).cache_hit


class TestPlanCacheKeys:
    def test_same_terms_different_shapes_compile_distinct_plans(
            self, relations, fragments):
        parsed = parse_rich_query("digital library")
        plain = compile_query(relations, parsed)
        boosted = compile_query(relations, parsed,
                                field_boosts=(("title", 4.0),))
        fielded = compile_query(relations,
                                parse_rich_query("title:(digital library)"))
        first = topn_structured(fragments, plain, 5)
        assert first.details["plan_cache_hit"] is False
        # the boosted shape shares the term set but must miss
        miss = topn_structured(fragments, boosted, 5)
        assert miss.details["plan_cache_hit"] is False
        miss2 = topn_structured(fragments, fielded, 5)
        assert miss2.details["plan_cache_hit"] is False
        # each shape hits its own entry on repeat
        assert topn_structured(fragments, plain, 5) \
            .details["plan_cache_hit"] is True
        assert topn_structured(fragments, boosted, 5) \
            .details["plan_cache_hit"] is True
        assert topn_structured(fragments, fielded, 5) \
            .details["plan_cache_hit"] is True

    def test_plan_cache_off_never_hits(self, relations, fragments):
        compiled = compile_query(relations,
                                 parse_rich_query("digital library"))
        topn_structured(fragments, compiled, 5, plan_cache=False)
        result = topn_structured(fragments, compiled, 5, plan_cache=False)
        assert result.details["plan_cache_hit"] is False


class TestExecutionPolicyStillKeys:
    def test_different_n_still_misses(self, engine):
        wide = ExecutionPolicy(n=50)
        a = engine.execute(v2("digital library", limit=2))
        b = engine.execute(SearchRequest(query="digital library",
                                         mode=MODE_CONTENT,
                                         schema_version=2, limit=2,
                                         policy=wide))
        # both executed cold: policy.n is still part of the key
        assert not a.cache_hit and not b.cache_hit
