"""Fixtures for the schema-2 query-language suite.

A small deterministic digital-library corpus: papers indexed the way
the integrated engine does it — one IR document per Hypertext
attribute, keyed ``class:key:attribute`` — plus a few plain-url
documents, so fielded queries, facets and range filters all have
something to bite on.
"""

import pytest

from repro.ir.fragmentation import fragment_by_idf
from repro.ir.relations import IrRelations

#: (key, title, abstract, year)
PAPERS = [
    ("p01", "flexible digital library search",
     "scalable retrieval over digital libraries", "1999"),
    ("p02", "database fragmentation strategies",
     "fragment the database for top ranking speed", "1995"),
    ("p03", "information retrieval kernels",
     "columnar kernels accelerate information retrieval", "2001"),
    ("p04", "distributed query processing",
     "query shipping and data shipping in distributed databases", "1989"),
    ("p05", "multimedia feature grammars",
     "feature grammar detectors annotate multimedia objects", "2000"),
    ("p06", "webspace modelling method",
     "conceptual modelling of web data with schemas", "1998"),
    ("p07", "digital library metadata",
     "metadata harvesting for digital library federations", "1993"),
    ("p08", "ranking with inverse document frequency",
     "idf weighting ranks documents in information retrieval", "1996"),
]

#: (key, title) — a second class, so class facets have two values
ARTICLES = [
    ("a01", "library search engines compared"),
    ("a02", "the flexible web database"),
]

PLAIN_DOCS = [
    ("http://site/report1", "a 1994 report about digital libraries"),
    ("http://site/report2", "database kernels measured in 2001"),
]


def build_relations() -> IrRelations:
    relations = IrRelations()
    for key, title, abstract, year in PAPERS:
        relations.add_document(f"Paper:{key}:title", title)
        relations.add_document(f"Paper:{key}:abstract", abstract)
        relations.add_document(f"Paper:{key}:year", year)
    for key, title in ARTICLES:
        relations.add_document(f"Article:{key}:title", title)
    for url, text in PLAIN_DOCS:
        relations.add_document(url, text)
    relations.refresh_idf()
    return relations


@pytest.fixture
def relations():
    return build_relations()


@pytest.fixture
def fragments(relations):
    return fragment_by_idf(relations, 4)
