"""Schema-2 execution through the IR engine's structured path."""

import pytest

from repro.errors import QueryError
from repro.ir.engine import ClusterIrEngine, IrEngine
from repro.service.api import MODE_CONTENT, SearchRequest

from tests.query.conftest import ARTICLES, PAPERS, PLAIN_DOCS

pytestmark = pytest.mark.query


@pytest.fixture(scope="module")
def engine():
    engine = IrEngine(fragment_count=4)
    for key, title, abstract, year in PAPERS:
        engine.index(f"Paper:{key}:title", title)
        engine.index(f"Paper:{key}:abstract", abstract)
        engine.index(f"Paper:{key}:year", year)
    for key, title in ARTICLES:
        engine.index(f"Article:{key}:title", title)
    for url, text in PLAIN_DOCS:
        engine.index(url, text)
    return engine


def v2(query, **kwargs):
    return SearchRequest(query=query, mode=MODE_CONTENT,
                         schema_version=2, **kwargs)


class TestStructuredExecution:
    def test_plain_bag_ranks_exactly_like_v1(self, engine):
        # adjacency-is-OR keeps v1 semantics: same docs, same scores
        v1_hits = engine.execute(SearchRequest(
            query="digital library", mode=MODE_CONTENT)).hits
        v2_hits = engine.execute(v2("digital library")).hits
        assert [(h.key, h.score) for h in v1_hits] \
            == [(h.key, h.score) for h in v2_hits]

    def test_phrase_narrows_the_bag(self, engine):
        bag = engine.execute(v2("digital library"))
        phrase = engine.execute(v2('"digital library"'))
        bag_keys = {h.key for h in bag.hits}
        phrase_keys = {h.key for h in phrase.hits}
        assert phrase_keys < bag_keys
        assert "Paper:p01:title" in phrase_keys

    def test_facets_count_the_full_match_set(self, engine):
        response = engine.execute(v2("library OR database",
                                     facets=("class",), limit=1))
        assert len(response.hits) == 1  # page is limited...
        facets = dict(response.facets)
        # ...but facets and total cover every match (classless plain
        # urls count toward the total, never toward a class bucket)
        assert 1 < sum(count for _, count in facets["class"]) \
            <= response.total
        classes = {value for value, _ in facets["class"]}
        assert "Paper" in classes and "Article" in classes

    def test_sort_and_pagination(self, engine):
        everything = engine.execute(v2("library", sort=(("url", "asc"),)))
        urls = [h.key for h in everything.hits]
        assert urls == sorted(urls)
        page = engine.execute(v2("library", sort=(("url", "asc"),),
                                 limit=2, offset=1))
        assert [h.key for h in page.hits] == urls[1:3]
        assert page.total == len(urls)

    def test_range_filters(self, engine):
        response = engine.execute(v2("1999 OR 1995 OR 1989",
                                     filters=(("year", "1990-2001"),)))
        keys = {h.key for h in response.hits}
        assert keys == {"Paper:p01:year", "Paper:p02:year"}

    def test_boosts_lift_the_boosted_field(self, engine):
        boosted = engine.execute(v2("digital library",
                                    boosts=(("title", 100.0),)))
        top_keys = [h.key for h in boosted.hits[:2]]
        assert all(key.endswith(":title") for key in top_keys)

    def test_unknown_facet_is_a_query_error(self, engine):
        with pytest.raises(QueryError):
            engine.execute(v2("library", facets=("colour",)))

    def test_unknown_sort_field_is_a_query_error(self, engine):
        with pytest.raises(QueryError):
            engine.execute(v2("library", sort=(("colour", "asc"),)))

    def test_stopword_only_query_is_a_query_error(self, engine):
        with pytest.raises(QueryError):
            engine.execute(v2("the of and"))

    def test_v1_responses_unchanged_by_all_of_this(self, engine):
        response = engine.execute(SearchRequest(query="digital library",
                                                mode=MODE_CONTENT))
        payload = response.to_dict()
        assert payload["schema_version"] == 1
        assert "facets" not in payload and "total" not in payload


class TestClusterRejection:
    def test_clustered_engine_rejects_schema_2(self):
        cluster = ClusterIrEngine(2)
        with pytest.raises(QueryError):
            cluster.execute(v2("digital library"))
