"""Acceptance: schema-2 rankings are bit-identical scalar vs kernel.

Every structured query shape — bag, phrase, fielded, boolean, range,
boosted, filtered, paginated inputs — runs through both scan bodies of
:func:`repro.ir.topn.topn_structured`; the rankings (including scores,
not just order) must compare equal.
"""

import pytest

from repro.ir.topn import kernels_available, topn_structured
from repro.query import compile_query, parse_rich_query

pytestmark = [
    pytest.mark.query,
    pytest.mark.skipif(not kernels_available(),
                       reason="numpy unavailable: no kernel to compare"),
]

SHAPES = [
    "digital library",                       # v1-style bag of words
    '"digital library"',                     # phrase
    '"information retrieval"',
    "title:database",                        # fielded
    "title:library^4 abstract:library",      # fielded + boosted
    "retrieval AND NOT kernels",             # boolean
    "(database OR retrieval) AND ranking",
    "library NOT metadata",
    "year:1990-2001",                        # pure range: score-0 docs
    '"information retrieval" OR title:search',
    "database^3 OR kernels",
]


def both(fragments, compiled, n=10):
    scalar = topn_structured(fragments, compiled, n, kernel=False)
    kernel = topn_structured(fragments, compiled, n, kernel=True)
    assert scalar.details["kernel"] == "scalar"
    assert kernel.details["kernel"] == "columnar"
    return scalar, kernel


@pytest.mark.parametrize("source", SHAPES)
def test_rankings_bit_identical(relations, fragments, source):
    compiled = compile_query(relations, parse_rich_query(source))
    scalar, kernel = both(fragments, compiled)
    assert scalar.ranking == kernel.ranking


@pytest.mark.parametrize("source", SHAPES)
def test_full_collection_rankings_bit_identical(relations, fragments,
                                                source):
    # n beyond the collection: every matched doc appears, same order
    compiled = compile_query(relations, parse_rich_query(source))
    scalar, kernel = both(fragments, compiled, n=1000)
    assert scalar.ranking == kernel.ranking
    assert len(scalar.ranking) == len(compiled.matched)


def test_boosted_request_parity(relations, fragments):
    compiled = compile_query(
        relations, parse_rich_query("digital library"),
        field_boosts=(("title", 4.0), ("abstract", 3.0)))
    scalar, kernel = both(fragments, compiled)
    assert scalar.ranking == kernel.ranking
    # boosts actually moved scores: a title doc outranks its base score
    assert any(score > 0 for _, score in scalar.ranking)


def test_filtered_request_parity(relations, fragments):
    compiled = compile_query(
        relations, parse_rich_query("1999 OR 1995 OR 1989"),
        filters=(("year", "1990-2001"),))
    scalar, kernel = both(fragments, compiled)
    assert scalar.ranking == kernel.ranking
    assert len(scalar.ranking) == 2  # 1989 filtered out


def test_match_only_docs_rank_at_zero_in_both(relations, fragments):
    compiled = compile_query(relations, parse_rich_query("year:1996-1999"))
    scalar, kernel = both(fragments, compiled)
    assert scalar.ranking == kernel.ranking
    assert all(score == 0.0 for _, score in scalar.ranking)
    # deterministic tie-break: ascending doc oid
    oids = [int(doc) for doc, _ in scalar.ranking]
    assert oids == sorted(oids)
