"""Boolean/phrase/range matching against the positional postings."""

import pytest

from repro.errors import QueryError
from repro.ir.relations import IrRelations
from repro.query import (compile_query, doc_class_of, doc_field_of,
                        filters_to_nodes, parse_rich_query)

pytestmark = pytest.mark.query


def matched_urls(relations, source, **kwargs):
    compiled = compile_query(relations, parse_rich_query(source), **kwargs)
    doc_url = {int(oid): url for oid, url in relations.D}
    return {doc_url[int(doc)] for doc in compiled.matched}


class TestDocNaming:
    def test_engine_indexed_urls(self):
        assert doc_field_of("Paper:p01:title") == "title"
        assert doc_class_of("Paper:p01:title") == "Paper"

    def test_plain_urls_have_neither(self):
        assert doc_field_of("http://site/report1") == ""
        assert doc_class_of("http://site/report1") == ""


class TestBooleanMatching:
    def test_or_unions(self, relations):
        urls = matched_urls(relations, "fragmentation OR kernels")
        assert "Paper:p02:title" in urls
        assert "Paper:p03:title" in urls

    def test_and_intersects(self, relations):
        urls = matched_urls(relations, "digital AND metadata")
        assert urls == {"Paper:p07:title", "Paper:p07:abstract"}

    def test_not_subtracts_from_the_universe(self, relations):
        with_term = matched_urls(relations, "library")
        without = matched_urls(relations, "library NOT metadata")
        assert "Paper:p07:title" in with_term
        assert "Paper:p07:title" not in without
        assert without < with_term

    def test_fielded_term_restricts_to_the_attribute(self, relations):
        urls = matched_urls(relations, "title:database")
        assert all(url.endswith(":title") for url in urls)
        assert "Paper:p02:title" in urls
        # the same word in an abstract does not match
        assert "Paper:p02:abstract" not in urls


class TestPhraseMatching:
    def test_adjacent_words_match(self, relations):
        urls = matched_urls(relations, '"digital library"')
        assert "Paper:p01:title" in urls

    def test_word_order_matters(self, relations):
        assert matched_urls(relations, '"digital library"')
        # the reversed phrase occurs nowhere in the corpus
        assert matched_urls(relations, '"library digital"') == set()

    def test_stop_words_vanish_before_adjacency(self, relations):
        # "fragment the database" matches the phrase "fragment database"
        urls = matched_urls(relations, '"fragment database"')
        assert "Paper:p02:abstract" in urls

    def test_out_of_vocabulary_phrase_matches_nothing(self, relations):
        assert matched_urls(relations, '"zebra crossing"') == set()

    def test_positions_absent_refuses_to_match(self, relations):
        # simulate a pre-v2 snapshot: strip every POS entry; phrase
        # adjacency is never guessed, term matching still works
        for pair in list(relations.POS.head):
            relations.POS.delete_head(pair)
        relations.generation += 1
        assert matched_urls(relations, '"digital library"') == set()
        assert matched_urls(relations, "digital AND library")


class TestRangeMatching:
    def test_fielded_range(self, relations):
        urls = matched_urls(relations, "year:1990-2001")
        assert "Paper:p01:year" in urls      # 1999
        assert "Paper:p04:year" not in urls  # 1989
        assert all(url.endswith(":year") for url in urls)

    def test_number_tokens_match_in_any_document(self, relations):
        # the plain report mentions 1994 in its running text; a year
        # filter restricted to the year field excludes it
        assert "http://site/report1" in matched_urls(relations, "1994")
        assert "http://site/report1" not in \
            matched_urls(relations, "year:1994-1994")

    def test_open_range(self, relations):
        urls = matched_urls(relations, "year:2000-")
        assert urls == {"Paper:p03:year", "Paper:p05:year"}


class TestCompile:
    def test_all_stopword_query_without_filters_raises(self, relations):
        with pytest.raises(QueryError):
            compile_query(relations, parse_rich_query("the of"))

    def test_filters_alone_supply_the_match_set(self, relations):
        compiled = compile_query(relations, parse_rich_query("the of"),
                                 filters=(("year", "1995-1999"),))
        assert compiled.matched
        assert compiled.entries == ()  # filters never score

    def test_filters_to_nodes_rejects_stopword_values(self):
        with pytest.raises(QueryError):
            filters_to_nodes((("field", "the"),))

    def test_field_boosts_become_per_doc_weights(self, relations):
        compiled = compile_query(relations,
                                 parse_rich_query("digital library"),
                                 field_boosts=(("title", 4.0),))
        title_docs = {int(oid) for oid, url in relations.D
                      if url.endswith(":title")}
        assert set(compiled.field_weight) == title_docs
        assert all(weight == 4.0
                   for weight in compiled.field_weight.values())

    def test_shape_distinguishes_boosts_and_filters(self, relations):
        parsed = parse_rich_query("digital library")
        plain = compile_query(relations, parsed)
        boosted = compile_query(relations, parsed,
                                field_boosts=(("title", 4.0),))
        filtered = compile_query(relations, parsed,
                                 filters=(("year", "1990-"),))
        assert len({plain.shape, boosted.shape, filtered.shape}) == 3


class TestVocabulary:
    def test_apostrophe_forms_join_in_the_vocabulary(self):
        relations = IrRelations()
        relations.add_document("http://site/d", "don't stop O'Brien's run")
        relations.refresh_idf()
        vocabulary = {term for _, term in relations.T}
        assert "dont" in vocabulary
        assert "obrien" in vocabulary
        # the split fragments never enter the vocabulary
        assert "don" not in vocabulary
        assert "t" not in vocabulary
