"""Wire-contract regression: schema 2 must not move a single v1 byte."""

import json

import pytest

from repro.errors import QueryError
from repro.service import api
from repro.service.api import SearchRequest, SearchResponse

pytestmark = pytest.mark.query


class TestFromDictVersionDefault:
    def test_missing_schema_version_means_1(self):
        # the bug this PR fixes: a payload omitting schema_version is a
        # v1 request from an old client, never the newest version
        request = SearchRequest.from_dict({"query": "digital library"})
        assert request.schema_version == api.SCHEMA_VERSION == 1

    def test_explicit_1_and_missing_parse_identically(self):
        implicit = SearchRequest.from_dict({"query": "x y"})
        explicit = SearchRequest.from_dict({"query": "x y",
                                            "schema_version": 1})
        assert implicit == explicit

    def test_unsupported_version_is_a_query_error(self):
        with pytest.raises(QueryError):
            SearchRequest.from_dict({"query": "x", "schema_version": 3})
        with pytest.raises(QueryError):
            SearchRequest.from_dict({"query": "x",
                                     "schema_version": "two"})


class TestV1ByteIdentity:
    def test_v1_request_roundtrip_is_byte_identical(self):
        request = SearchRequest(query="digital library", mode="content")
        wire = json.dumps(request.to_dict(), sort_keys=True)
        reparsed = SearchRequest.from_dict(json.loads(wire))
        assert json.dumps(reparsed.to_dict(), sort_keys=True) == wire

    def test_v1_request_dict_has_no_v2_keys(self):
        payload = SearchRequest(query="x").to_dict()
        assert set(payload) == {"schema_version", "query", "mode",
                                "policy", "trace_id"}

    def test_v1_response_dict_has_no_v2_keys(self):
        request = SearchRequest(query="x", mode="content")
        response = api.response_from_ranking(request, [("u", 1.0)], 0.5)
        payload = response.to_dict()
        assert payload["schema_version"] == 1
        assert "facets" not in payload
        assert "total" not in payload

    def test_v2_fields_rejected_on_v1_requests(self):
        for kwargs in ({"filters": (("year", "1990-"),)},
                       {"facets": ("class",)},
                       {"sort": (("name", "asc"),)},
                       {"limit": 5},
                       {"offset": 3},
                       {"boosts": (("title", 4.0),)}):
            with pytest.raises(QueryError):
                SearchRequest(query="x", **kwargs)

    def test_v2_keys_in_a_v1_payload_are_unknown_fields(self):
        with pytest.raises(QueryError):
            SearchRequest.from_dict({"query": "x", "facets": ["class"]})


class TestV2Wire:
    def test_v2_roundtrip(self):
        request = SearchRequest(
            query='title:database AND "digital library"', mode="content",
            schema_version=2, filters=(("year", "1990-2001"),),
            facets=("class",), sort=(("downloads", "desc"),),
            limit=10, offset=20, boosts=(("title", 4.0),))
        reparsed = SearchRequest.from_dict(request.to_dict())
        assert reparsed == request

    def test_v2_response_carries_facets_and_total(self):
        request = SearchRequest(query="x", mode="content",
                                schema_version=2, facets=("class",))
        response = api.response_from_ranking(
            request, [("u", 1.0)], 0.5,
            facets=(("class", (("Paper", 3), ("Article", 1))),), total=4)
        payload = response.to_dict()
        assert payload["schema_version"] == 2
        assert payload["facets"] == {"class": {"Paper": 3, "Article": 1}}
        assert payload["total"] == 4

    def test_v2_validation(self):
        with pytest.raises(QueryError):
            SearchRequest(query="x", schema_version=2, limit=0)
        with pytest.raises(QueryError):
            SearchRequest(query="x", schema_version=2, offset=-1)

    def test_malformed_v2_extras_are_query_errors(self):
        base = {"query": "x", "schema_version": 2}
        for extra in ({"filters": ["year"]},
                      {"facets": "class"},
                      {"sort": ["field:sideways"]},
                      {"limit": True},
                      {"offset": "zero"},
                      {"boosts": {"title": "big"}}):
            with pytest.raises(QueryError):
                SearchRequest.from_dict(base | extra)

    def test_shape_token_constant_on_v1(self):
        a = SearchRequest(query="x").shape_token()
        b = SearchRequest(query="completely different").shape_token()
        assert a == b

    def test_shape_token_distinguishes_every_extra(self):
        base = dict(query="x", mode="content", schema_version=2)
        tokens = {
            SearchRequest(**base).shape_token(),
            SearchRequest(**base,
                          filters=(("year", "1990-"),)).shape_token(),
            SearchRequest(**base, facets=("class",)).shape_token(),
            SearchRequest(**base, sort=(("name", "asc"),)).shape_token(),
            SearchRequest(**base, limit=5).shape_token(),
            SearchRequest(**base, limit=5, offset=5).shape_token(),
            SearchRequest(**base, boosts=(("title", 2.0),)).shape_token(),
        }
        assert len(tokens) == 7
