"""The rich-query parser: grammar, analysis, error handling."""

import pytest

from repro.errors import QueryError
from repro.ir.text import analyze
from repro.query import (And, Not, Or, ParsedQuery, Phrase, Range, Term,
                        parse_rich_query)

pytestmark = pytest.mark.query


def parse(source: str):
    return parse_rich_query(source).root


class TestBagOfWords:
    def test_adjacent_words_are_or(self):
        root = parse("digital library")
        assert isinstance(root, Or)
        assert root.children == (Term("digit"), Term("librari"))

    def test_single_word(self):
        assert parse("database") == Term("databas")

    def test_words_are_analyzed(self):
        # "The" is a stop word, "Winners" stems
        assert parse("The Winners") == Term("winner")

    def test_stop_word_only_query_is_empty(self):
        assert parse("the of and") is None
        assert parse_rich_query("the of").token() == ("empty",)

    def test_multi_token_word_becomes_implicit_phrase(self):
        root = parse("mother-in-law")
        assert isinstance(root, Phrase)
        assert root.words == tuple(analyze("mother-in-law"))


class TestBooleans:
    def test_uppercase_and(self):
        root = parse("database AND retrieval")
        assert root == And((Term("databas"), Term("retriev")))

    def test_lowercase_and_is_a_stop_word(self):
        assert parse("database and retrieval") \
            == Or((Term("databas"), Term("retriev")))

    def test_explicit_or(self):
        assert parse("database OR retrieval") \
            == Or((Term("databas"), Term("retriev")))

    def test_not(self):
        assert parse("NOT database") == Not(Term("databas"))

    def test_adjacent_not_binds_as_and(self):
        # "tennis NOT golf" means tennis AND NOT golf
        assert parse("tennis NOT golf") \
            == And((Term("tenni"), Not(Term("golf"))))

    def test_parentheses_group(self):
        root = parse("(database OR retrieval) AND ranking")
        assert root == And((Or((Term("databas"), Term("retriev"))),
                            Term("rank")))

    def test_dangling_operator_is_an_error(self):
        with pytest.raises(QueryError):
            parse("database AND")
        with pytest.raises(QueryError):
            parse("OR database")

    def test_unbalanced_paren_is_an_error(self):
        with pytest.raises(QueryError):
            parse("(database OR retrieval")


class TestPhrases:
    def test_quoted_phrase(self):
        root = parse('"digital library"')
        assert root == Phrase(("digit", "librari"))

    def test_phrase_words_are_analyzed(self):
        # stop words vanish before positions apply
        assert parse('"winner of the open"') == Phrase(("winner", "open"))

    def test_one_word_phrase_is_a_term(self):
        assert parse('"database"') == Term("databas")

    def test_unterminated_phrase_is_an_error(self):
        with pytest.raises(QueryError):
            parse('"digital library')


class TestFieldsBoostsRanges:
    def test_fielded_term(self):
        assert parse("title:database") == Term("databas", field="title")

    def test_field_names_lowercase(self):
        assert parse("TITLE:database") == Term("databas", field="title")

    def test_fielded_phrase(self):
        assert parse('title:"digital library"') \
            == Phrase(("digit", "librari"), field="title")

    def test_field_distributes_over_group(self):
        root = parse("title:(database retrieval)")
        assert root == Or((Term("databas", field="title"),
                           Term("retriev", field="title")))

    def test_boost(self):
        assert parse("title:database^4") \
            == Term("databas", field="title", boost=4.0)

    def test_boost_on_group_multiplies(self):
        root = parse("(database^2 retrieval)^3")
        assert root == Or((Term("databas", boost=6.0),
                           Term("retriev", boost=3.0)))

    def test_boost_without_number_is_an_error(self):
        with pytest.raises(QueryError):
            parse("database^")

    def test_range(self):
        assert parse("year:1990-2001") \
            == Range(field="year", low=1990.0, high=2001.0)

    def test_open_ended_ranges(self):
        assert parse("year:1990-") == Range("year", 1990.0, None)
        assert parse("year:-2001") == Range("year", None, 2001.0)

    def test_field_without_value_is_an_error(self):
        with pytest.raises(QueryError):
            parse("title:")


class TestTokens:
    def test_same_query_same_token(self):
        assert parse_rich_query("title:database^4").token() \
            == parse_rich_query("title:database^4").token()

    def test_different_field_different_token(self):
        assert parse_rich_query("title:database").token() \
            != parse_rich_query("abstract:database").token()

    def test_different_boost_different_token(self):
        assert parse_rich_query("database^2").token() \
            != parse_rich_query("database^3").token()

    def test_parsed_query_is_hashable(self):
        assert isinstance(hash(parse_rich_query("a AND b").token()), int)
        assert isinstance(parse_rich_query("x"), ParsedQuery)
