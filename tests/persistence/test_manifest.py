"""The versioned, checksummed manifest and its integrity checks."""

import json

import pytest

from repro.core.config import EngineConfig
from repro.errors import SnapshotError
from repro.persistence import (FORMAT_VERSION, FileStamp, Manifest,
                               config_from_dict, config_to_dict, sha256_file,
                               stamp_file, verify_files)

pytestmark = pytest.mark.persistence


def small_manifest(directory, **files):
    """A manifest over literal file contents written into ``directory``."""
    stamps = {}
    for name, content in files.items():
        path = directory / name
        path.write_text(content)
        stamps[name] = stamp_file(path, records=content.count("\n") + 1)
    manifest = Manifest(schema="test", config=EngineConfig(), generation=1,
                        files=stamps)
    manifest.save(directory)
    return manifest


class TestRoundTrip:
    def test_manifest_survives_save_load(self, tmp_path):
        manifest = small_manifest(tmp_path, **{"a.jsonl": "one\ntwo"})
        loaded = Manifest.load(tmp_path)
        assert loaded.schema == manifest.schema
        assert loaded.generation == manifest.generation
        assert loaded.format_version == FORMAT_VERSION
        assert loaded.files == manifest.files
        assert loaded.config == manifest.config

    def test_full_config_round_trips(self, full_config):
        # the bugfix this layer exists for: cluster_size and the whole
        # execution policy used to be dropped on the floor
        assert config_from_dict(config_to_dict(full_config)) == full_config

    def test_clustered_config_round_trips(self):
        config = EngineConfig(cluster_size=4)
        assert config_from_dict(config_to_dict(config)).cluster_size == 4

    def test_malformed_config_raises(self):
        with pytest.raises(SnapshotError):
            config_from_dict({"no_such_field": 1})


class TestLoadErrors:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(SnapshotError):
            Manifest.load(tmp_path)

    def test_torn_manifest_json(self, tmp_path):
        small_manifest(tmp_path, **{"a.jsonl": "x"})
        path = tmp_path / "engine.json"
        path.write_text(path.read_text()[:25])
        with pytest.raises(SnapshotError):
            Manifest.load(tmp_path)

    def test_unsupported_format_version(self, tmp_path):
        small_manifest(tmp_path, **{"a.jsonl": "x"})
        path = tmp_path / "engine.json"
        data = json.loads(path.read_text())
        data["format_version"] = FORMAT_VERSION + 1
        path.write_text(json.dumps(data))
        with pytest.raises(SnapshotError, match="format_version"):
            Manifest.load(tmp_path)

    def test_malformed_file_stamp(self):
        with pytest.raises(SnapshotError):
            FileStamp.from_dict({"sha256": "abc"})


class TestVerifyFiles:
    def test_intact_files_pass(self, tmp_path):
        manifest = small_manifest(tmp_path, **{"a.jsonl": "one\ntwo"})
        verify_files(tmp_path, manifest)  # does not raise

    def test_missing_file_detected(self, tmp_path):
        manifest = small_manifest(tmp_path, **{"a.jsonl": "one"})
        (tmp_path / "a.jsonl").unlink()
        with pytest.raises(SnapshotError, match="missing"):
            verify_files(tmp_path, manifest)

    def test_truncation_detected(self, tmp_path):
        manifest = small_manifest(tmp_path, **{"a.jsonl": "one\ntwo\nthree"})
        path = tmp_path / "a.jsonl"
        path.write_bytes(path.read_bytes()[:-4])
        with pytest.raises(SnapshotError, match="truncated"):
            verify_files(tmp_path, manifest)

    def test_bit_flip_detected(self, tmp_path):
        manifest = small_manifest(tmp_path, **{"a.jsonl": "one\ntwo"})
        path = tmp_path / "a.jsonl"
        data = bytearray(path.read_bytes())
        data[0] ^= 0x01  # same size, different content
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotError, match="checksum"):
            verify_files(tmp_path, manifest)

    def test_sha256_file_matches_hashlib(self, tmp_path):
        import hashlib
        path = tmp_path / "f"
        path.write_bytes(b"abc" * 100_000)
        assert sha256_file(path) \
            == hashlib.sha256(b"abc" * 100_000).hexdigest()


class TestWalSeq:
    def test_wal_seq_round_trips(self, tmp_path):
        manifest = small_manifest(tmp_path, **{"a.jsonl": "one"})
        manifest.wal_seq = 41
        manifest.save(tmp_path)
        assert Manifest.load(tmp_path).wal_seq == 41

    def test_absent_wal_seq_loads_as_none(self, tmp_path):
        """Pre-WAL manifests (and WAL-less saves) have no field."""
        manifest = small_manifest(tmp_path, **{"a.jsonl": "one"})
        assert manifest.wal_seq is None
        data = json.loads((tmp_path / "engine.json").read_text())
        assert "wal_seq" not in data
        assert Manifest.load(tmp_path).wal_seq is None
