"""Generation retention behind the atomically flipped CURRENT pointer."""

import pytest

from repro.errors import SnapshotError
from repro.persistence import SnapshotStore

pytestmark = pytest.mark.persistence


def committed(root, store, marker="x"):
    """Begin + write a marker file + commit; returns the generation."""
    generation, path = store.begin()
    (path / "data.txt").write_text(marker)
    store.commit(generation)
    return generation


class TestLifecycle:
    def test_begin_creates_generation_directory(self, tmp_path):
        store = SnapshotStore(tmp_path)
        generation, path = store.begin()
        assert generation == 1
        assert path.is_dir()
        assert path == tmp_path / "snapshot" / "00000001"

    def test_uncommitted_generation_is_not_current(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.begin()
        assert store.current_generation() is None
        assert store.candidates() == []

    def test_commit_publishes_generation(self, tmp_path):
        store = SnapshotStore(tmp_path)
        generation = committed(tmp_path, store)
        assert store.current_generation() == generation
        assert (tmp_path / "CURRENT").read_text().strip() == "00000001"

    def test_generations_monotonically_increase(self, tmp_path):
        store = SnapshotStore(tmp_path)
        assert committed(tmp_path, store) == 1
        assert committed(tmp_path, store) == 2
        assert committed(tmp_path, store) == 3

    def test_candidates_newest_first(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=10)
        for _ in range(3):
            committed(tmp_path, store)
        assert store.candidates() == [3, 2, 1]


class TestRetention:
    def test_prune_keeps_last_k(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=2)
        for _ in range(5):
            committed(tmp_path, store)
        assert store.generations() == [4, 5]
        assert store.current_generation() == 5

    def test_orphan_from_interrupted_save_is_collected(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=3)
        committed(tmp_path, store)
        # an interrupted save: begun, never committed
        store.begin()
        assert store.generations() == [1, 2]
        # the next successful checkpoint collects the orphan
        committed(tmp_path, store)
        assert store.current_generation() == 3
        assert 2 not in store.generations()

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(SnapshotError):
            SnapshotStore(tmp_path, keep=0)


class TestCorruptPointer:
    def test_garbage_pointer_raises(self, tmp_path):
        store = SnapshotStore(tmp_path)
        committed(tmp_path, store)
        (tmp_path / "CURRENT").write_text("not-a-generation")
        with pytest.raises(SnapshotError):
            store.current_generation()

    def test_commit_of_missing_generation_raises(self, tmp_path):
        store = SnapshotStore(tmp_path)
        with pytest.raises(SnapshotError):
            store.commit(7)
