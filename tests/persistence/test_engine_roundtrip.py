"""Full engine round trips: config, generations, FDS state, clusters."""

import json

import pytest

from repro.core.config import EngineConfig, ExecutionPolicy
from repro.core.engine import SearchEngine
from repro.errors import CatalogError, SnapshotError
from repro.monetdb.persistence import save_catalog
from repro.persistence import load_engine, save_engine
from repro.web.ausopen import build_ausopen_site
from repro.webspace.schema import australian_open_schema

from tests.persistence.conftest import build_engine

pytestmark = pytest.mark.persistence

QUERY = "SELECT p.name FROM Player p WHERE " \
        "p.history CONTAINS 'Winner' TOP 20"


def round_trip(engine, server, tmp_path, **load_kwargs):
    save_engine(engine, tmp_path)
    return load_engine(tmp_path, australian_open_schema(), server,
                       **load_kwargs)


class TestConfigRoundTrip:
    def test_every_config_field_round_trips(self, tmp_path):
        # regression: the old manifest dropped cluster_size and the
        # execution policy (4 of 6 fields survived, silently)
        config = EngineConfig(
            fragment_count=5, ranking_model="hiemstra", top_n=7,
            execution=ExecutionPolicy(n=7, max_workers=2, retries=1,
                                      on_failure="degrade", cache_size=64))
        server, _ = build_ausopen_site(players=4, articles=2, videos=1,
                                       frames_per_shot=4)
        engine = SearchEngine(australian_open_schema(), server, config)
        engine.populate()
        restored = round_trip(engine, server, tmp_path)
        assert restored.config == config

    def test_cluster_size_round_trips(self, tmp_path):
        engine, server, _ = build_engine(cluster_size=3)
        restored = round_trip(engine, server, tmp_path)
        assert restored.config.cluster_size == 3
        from repro.ir.engine import ClusterIrEngine
        assert isinstance(restored.ir, ClusterIrEngine)


class TestStateRoundTrip:
    def test_query_results_identical(self, populated, tmp_path):
        engine, server, _ = populated
        restored = round_trip(engine, server, tmp_path)
        assert engine.query_text(QUERY).column("p.name") \
            == restored.query_text(QUERY).column("p.name")

    def test_store_generations_round_trip(self, populated, tmp_path):
        engine, server, _ = populated
        restored = round_trip(engine, server, tmp_path)
        assert restored.conceptual_store.generation \
            == engine.conceptual_store.generation
        assert restored.meta_store.generation \
            == engine.meta_store.generation
        assert restored.ir.relations.generation \
            == engine.ir.relations.generation

    def test_fds_state_round_trips(self, populated, tmp_path):
        from repro.persistence import encode_tree
        engine, server, _ = populated
        restored = round_trip(engine, server, tmp_path)
        assert len(restored.fds) == len(engine.fds)
        assert restored.fds.known_versions() == engine.fds.known_versions()
        for key in engine.fds.keys():
            assert encode_tree(restored.fds.tree(key)) \
                == encode_tree(engine.fds.tree(key))


class TestIncrementalMaintenanceAfterRestore:
    def test_minor_bump_after_restore_is_incremental(self, tmp_path):
        # the acceptance criterion: a detector bump after restore
        # schedules revalidations, not a full re-populate
        engine, server, _ = build_engine()
        save_engine(engine, tmp_path)
        restored = load_engine(tmp_path, australian_open_schema(), server)
        restored.upgrade_detector("tennis", "1.1.0")
        report = restored.maintain()
        assert report.tasks_processed > 0
        assert report.trees_regenerated == 0

    def test_restored_maintenance_matches_original(self, tmp_path):
        engine, server, _ = build_engine()
        save_engine(engine, tmp_path)
        restored = load_engine(tmp_path, australian_open_schema(), server)
        restored.upgrade_detector("tennis", "1.1.0")
        engine.upgrade_detector("tennis", "1.1.0")
        restored_report = restored.maintain()
        original_report = engine.maintain()
        assert restored_report.tasks_processed \
            == original_report.tasks_processed
        assert restored_report.detectors_rerun \
            == original_report.detectors_rerun
        assert restored_report.nodes_invalidated \
            == original_report.nodes_invalidated

    def test_source_change_detected_after_restore(self, tmp_path):
        engine, server, _ = build_engine()
        save_engine(engine, tmp_path)
        restored = load_engine(tmp_path, australian_open_schema(), server)
        # unchanged sources: the restored stamps still match
        assert restored.fds.check_all_sources() == 0


class TestClusterRoundTrip:
    def test_cluster_query_results_identical(self, tmp_path):
        engine, server, _ = build_engine(cluster_size=3)
        restored = round_trip(engine, server, tmp_path)
        assert engine.query_text(QUERY).column("p.name") \
            == restored.query_text(QUERY).column("p.name")

    def test_per_node_files_written(self, tmp_path):
        engine, server, _ = build_engine(cluster_size=3)
        path = save_engine(engine, tmp_path)
        names = {entry.name for entry in path.iterdir()}
        assert {"ir.jsonl", "ir-node0.jsonl", "ir-node1.jsonl",
                "ir-node2.jsonl"} <= names

    def test_restored_cluster_keeps_strided_oids(self, tmp_path):
        engine, server, _ = build_engine(cluster_size=3)
        restored = round_trip(engine, server, tmp_path)
        # new documents land on nodes whose oid sequences must not
        # collide with restored (or each other's) oids
        for i in range(6):
            restored.ir.reindex(f"new:doc{i}", f"fresh text {i} winner")
        urls = restored.ir.search_urls("winner")
        assert urls  # the restored cluster answers over old + new docs


class TestLegacySnapshots:
    def legacy_snapshot(self, engine, directory):
        """A pre-retention (format 1) flat snapshot directory."""
        directory.mkdir(parents=True, exist_ok=True)
        engine.conceptual_store.save(directory / "conceptual.jsonl")
        engine.meta_store.save(directory / "meta.jsonl")
        engine.ir.relations.refresh_idf()
        save_catalog(engine.ir.relations.catalog, directory / "ir.jsonl")
        (directory / "engine.json").write_text(json.dumps({
            "schema": engine.schema.name,
            "fragment_count": engine.config.fragment_count,
            "ranking_model": engine.config.ranking_model,
            "top_n": engine.config.top_n,
            "crawl_seed": engine.config.crawl_seed,
        }))

    def test_legacy_flat_snapshot_still_loads(self, populated, tmp_path):
        engine, server, _ = populated
        self.legacy_snapshot(engine, tmp_path / "legacy")
        restored = load_engine(tmp_path / "legacy",
                               australian_open_schema(), server)
        assert engine.query_text(QUERY).column("p.name") \
            == restored.query_text(QUERY).column("p.name")

    def test_legacy_schema_mismatch_rejected(self, populated, tmp_path):
        engine, server, _ = populated
        self.legacy_snapshot(engine, tmp_path / "legacy")
        from repro.web.lonelyplanet import lonely_planet_schema
        with pytest.raises(CatalogError):
            load_engine(tmp_path / "legacy", lonely_planet_schema(), server)


class TestLoadArguments:
    def test_invalid_on_corrupt_value(self, populated, snapshot_root):
        _, server, _ = populated
        with pytest.raises(ValueError):
            load_engine(snapshot_root, australian_open_schema(), server,
                        on_corrupt="ignore")

    def test_missing_snapshot_raises_typed_error(self, populated, tmp_path):
        _, server, _ = populated
        with pytest.raises(SnapshotError):
            load_engine(tmp_path / "nowhere", australian_open_schema(),
                        server)

    def test_schema_mismatch_is_not_corruption(self, populated,
                                               snapshot_root):
        # a mismatch must not trigger fallback: it raises CatalogError
        # (not SnapshotError) even under on_corrupt="fallback"
        _, server, _ = populated
        from repro.web.lonelyplanet import lonely_planet_schema
        with pytest.raises(CatalogError) as excinfo:
            load_engine(snapshot_root, lonely_planet_schema(), server,
                        on_corrupt="fallback")
        assert not isinstance(excinfo.value, SnapshotError)
