"""Corruption detection, fallback recovery and crash-mid-save injection."""

import pytest

from repro.errors import SnapshotError
from repro.persistence import Manifest, SnapshotStore, load_engine, \
    save_engine
from repro.persistence import engine as engine_module
from repro.telemetry import telemetry_session
from repro.webspace.schema import australian_open_schema

pytestmark = pytest.mark.persistence

DATA_FILES = ["conceptual.jsonl", "meta.jsonl", "ir.jsonl", "fds.json"]
QUERY = "SELECT p.name FROM Player p WHERE " \
        "p.history CONTAINS 'Winner' TOP 20"


def current_path(root):
    store = SnapshotStore(root)
    return store.path(store.current_generation())


def reload(root, server, **kwargs):
    return load_engine(root, australian_open_schema(), server, **kwargs)


class TestDetection:
    @pytest.fixture()
    def saved(self, populated, tmp_path):
        engine, server, _ = populated
        save_engine(engine, tmp_path)
        return tmp_path, server

    @pytest.mark.parametrize("name", DATA_FILES)
    def test_truncated_file_raises(self, saved, name):
        root, server = saved
        target = current_path(root) / name
        target.write_bytes(target.read_bytes()[:-7])
        with pytest.raises(SnapshotError):
            reload(root, server)

    @pytest.mark.parametrize("name", DATA_FILES)
    def test_bit_flip_raises(self, saved, name):
        root, server = saved
        target = current_path(root) / name
        data = bytearray(target.read_bytes())
        data[len(data) // 2] ^= 0x40  # same size, different content
        target.write_bytes(bytes(data))
        with pytest.raises(SnapshotError):
            reload(root, server)

    def test_torn_manifest_raises(self, saved):
        root, server = saved
        target = current_path(root) / "engine.json"
        target.write_text(target.read_text()[:30])
        with pytest.raises(SnapshotError):
            reload(root, server)

    def test_deleted_data_file_raises(self, saved):
        root, server = saved
        (current_path(root) / "ir.jsonl").unlink()
        with pytest.raises(SnapshotError):
            reload(root, server)

    def test_verify_false_skips_checksums(self, saved):
        root, server = saved
        target = current_path(root) / "conceptual.jsonl"
        data = bytearray(target.read_bytes())
        data[10] ^= 0x01
        target.write_bytes(bytes(data))
        # without verification the flip may or may not surface during
        # deserialization — here it lands in JSON and does
        with pytest.raises(SnapshotError):
            reload(root, server, verify=False)


class TestFallback:
    @pytest.fixture()
    def two_generations(self, populated, tmp_path):
        engine, server, _ = populated
        save_engine(engine, tmp_path)
        save_engine(engine, tmp_path)
        assert SnapshotStore(tmp_path).current_generation() == 2
        return tmp_path, server, engine

    def test_fallback_degrades_to_older_intact_generation(
            self, two_generations):
        root, server, engine = two_generations
        target = SnapshotStore(root).path(2) / "ir.jsonl"
        target.write_bytes(target.read_bytes()[:-9])
        restored = reload(root, server, on_corrupt="fallback")
        # records the generation actually loaded, not the corrupt CURRENT
        assert restored.snapshot_generation == 1
        assert engine.query_text(QUERY).column("p.name") \
            == restored.query_text(QUERY).column("p.name")

    def test_raise_mode_does_not_fall_back(self, two_generations):
        root, server, _ = two_generations
        target = SnapshotStore(root).path(2) / "ir.jsonl"
        target.write_bytes(target.read_bytes()[:-9])
        with pytest.raises(SnapshotError):
            reload(root, server)  # default on_corrupt="raise"

    def test_all_generations_corrupt_raises(self, two_generations):
        root, server, _ = two_generations
        for generation in (1, 2):
            target = SnapshotStore(root).path(generation) / "ir.jsonl"
            target.write_bytes(target.read_bytes()[:-9])
        with pytest.raises(SnapshotError, match="no intact snapshot"):
            reload(root, server, on_corrupt="fallback")

    def test_corrupt_current_pointer_falls_back_to_disk(
            self, two_generations):
        root, server, engine = two_generations
        (root / "CURRENT").write_text("garbage")
        restored = reload(root, server, on_corrupt="fallback")
        assert engine.query_text(QUERY).column("p.name") \
            == restored.query_text(QUERY).column("p.name")

    def test_corruption_counter_increments(self, two_generations):
        root, server, _ = two_generations
        target = SnapshotStore(root).path(2) / "ir.jsonl"
        target.write_bytes(target.read_bytes()[:-9])
        with telemetry_session() as telemetry:
            reload(root, server, on_corrupt="fallback")
            counters = telemetry.metrics.snapshot()["counters"]
            assert counters["snapshot.corruptions"] == 1
            assert counters["snapshot.fallbacks"] == 1


class TestCrashMidSave:
    """Inject crashes into every phase of a save; the previous committed
    checkpoint must stay loadable afterwards — without any cleanup."""

    @pytest.fixture()
    def committed_once(self, populated, tmp_path):
        engine, server, _ = populated
        save_engine(engine, tmp_path)
        return tmp_path, server, engine

    def crash_during(self, monkeypatch, target, attribute):
        def explode(*args, **kwargs):
            raise OSError("simulated crash (power loss)")
        monkeypatch.setattr(target, attribute, explode)
        # a real crash never runs cleanup code: neutralize the
        # partial-directory removal so the orphan stays on disk
        monkeypatch.setattr(engine_module, "rmtree",
                            lambda *a, **k: None)

    def assert_previous_checkpoint_intact(self, root, server, engine):
        assert SnapshotStore(root).current_generation() == 1
        restored = reload(root, server)
        assert engine.query_text(QUERY).column("p.name") \
            == restored.query_text(QUERY).column("p.name")

    def test_crash_while_writing_data_files(self, committed_once,
                                            monkeypatch):
        root, server, engine = committed_once
        self.crash_during(monkeypatch, engine_module, "_write_payload")
        with pytest.raises(OSError):
            save_engine(engine, root)
        self.assert_previous_checkpoint_intact(root, server, engine)

    def test_crash_before_manifest(self, committed_once, monkeypatch):
        root, server, engine = committed_once
        self.crash_during(monkeypatch, Manifest, "save")
        with pytest.raises(OSError):
            save_engine(engine, root)
        self.assert_previous_checkpoint_intact(root, server, engine)

    def test_crash_before_pointer_flip(self, committed_once, monkeypatch):
        root, server, engine = committed_once
        self.crash_during(monkeypatch, SnapshotStore, "commit")
        with pytest.raises(OSError):
            save_engine(engine, root)
        self.assert_previous_checkpoint_intact(root, server, engine)

    def test_orphan_from_crash_is_pruned_by_next_save(self, committed_once,
                                                      monkeypatch):
        root, server, engine = committed_once
        self.crash_during(monkeypatch, SnapshotStore, "commit")
        with pytest.raises(OSError):
            save_engine(engine, root)
        monkeypatch.undo()
        path = save_engine(engine, root)  # a clean save after the crash
        store = SnapshotStore(root)
        assert store.current_generation() == 3
        assert 2 not in store.generations()  # the orphan was collected
        assert path.is_dir()
