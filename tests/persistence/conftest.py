"""Shared fixtures for the crash-safe snapshot & recovery suite."""

import pytest

from repro.core.config import EngineConfig, ExecutionPolicy
from repro.core.engine import SearchEngine
from repro.persistence import save_engine
from repro.web.ausopen import build_ausopen_site
from repro.webspace.schema import australian_open_schema


def build_engine(cluster_size=1, **config_overrides):
    """A small populated engine over a fresh synthetic site."""
    server, truth = build_ausopen_site(players=6, articles=4, videos=2,
                                       frames_per_shot=4)
    config = EngineConfig(fragment_count=3, cluster_size=cluster_size,
                          **config_overrides)
    engine = SearchEngine(australian_open_schema(), server, config)
    engine.populate()
    return engine, server, truth


@pytest.fixture(scope="module")
def populated():
    """(engine, server, truth) for a populated single-node engine."""
    return build_engine()


@pytest.fixture(scope="module")
def snapshot_root(populated, tmp_path_factory):
    """A snapshot root holding one committed checkpoint of ``populated``."""
    engine, _, _ = populated
    root = tmp_path_factory.mktemp("snapshot-root")
    save_engine(engine, root)
    return root


@pytest.fixture(scope="module")
def full_config():
    """An EngineConfig with non-default values across the board.

    The old manifest only round-tripped 4 of the 6 fields (it dropped
    ``cluster_size`` and the whole execution policy); this config makes
    any dropped field show up as an equality failure.
    """
    return EngineConfig(
        fragment_count=5,
        ranking_model="hiemstra",
        top_n=7,
        cluster_size=1,
        execution=ExecutionPolicy(n=7, prune=False, max_workers=2,
                                  node_deadline_ms=250.0, retries=1,
                                  backoff_ms=5.0, on_failure="degrade",
                                  cache=True, cache_size=64),
    )
