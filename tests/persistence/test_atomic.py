"""The atomic write primitive: all-or-nothing file replacement."""

import pytest

from repro.persistence import (atomic_write, atomic_write_bytes,
                               atomic_write_text, read_pointer,
                               write_pointer)

pytestmark = pytest.mark.persistence


class TestAtomicWrite:
    def test_creates_file(self, tmp_path):
        target = tmp_path / "out.txt"
        with atomic_write(target) as stream:
            stream.write("hello")
        assert target.read_text() == "hello"

    def test_replaces_existing_content(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        with atomic_write(target) as stream:
            stream.write("new")
        assert target.read_text() == "new"

    def test_failure_leaves_old_content_intact(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("precious")
        with pytest.raises(RuntimeError):
            with atomic_write(target) as stream:
                stream.write("half-written garbage")
                raise RuntimeError("simulated crash mid-write")
        assert target.read_text() == "precious"

    def test_failure_leaves_no_temp_files(self, tmp_path):
        target = tmp_path / "out.txt"
        with pytest.raises(RuntimeError):
            with atomic_write(target) as stream:
                stream.write("doomed")
                raise RuntimeError("boom")
        assert list(tmp_path.iterdir()) == []

    def test_success_leaves_no_temp_files(self, tmp_path):
        target = tmp_path / "out.txt"
        with atomic_write(target) as stream:
            stream.write("done")
        assert [entry.name for entry in tmp_path.iterdir()] == ["out.txt"]

    def test_binary_mode(self, tmp_path):
        target = tmp_path / "out.bin"
        payload = bytes(range(256))
        with atomic_write(target, "wb") as stream:
            stream.write(payload)
        assert target.read_bytes() == payload


class TestHelpers:
    def test_write_text_returns_byte_count(self, tmp_path):
        target = tmp_path / "t.txt"
        written = atomic_write_text(target, "héllo")
        assert written == len("héllo".encode())
        assert target.stat().st_size == written

    def test_write_bytes(self, tmp_path):
        target = tmp_path / "b.bin"
        assert atomic_write_bytes(target, b"abc") == 3
        assert target.read_bytes() == b"abc"

    def test_pointer_round_trip(self, tmp_path):
        pointer = tmp_path / "CURRENT"
        write_pointer(pointer, "00000042")
        assert read_pointer(pointer) == "00000042"

    def test_pointer_missing_is_none(self, tmp_path):
        assert read_pointer(tmp_path / "CURRENT") is None

    def test_pointer_rewrite_is_atomic_replace(self, tmp_path):
        pointer = tmp_path / "CURRENT"
        write_pointer(pointer, "00000001")
        write_pointer(pointer, "00000002")
        assert read_pointer(pointer) == "00000002"
        assert [entry.name for entry in tmp_path.iterdir()] == ["CURRENT"]


class TestFsyncDirectory:
    def test_opens_the_directory_with_o_directory(self, tmp_path,
                                                  monkeypatch):
        """The fd must name the *directory* (O_DIRECTORY), not some
        same-named file — the historical bug was fsyncing nothing."""
        import os

        from repro.persistence import atomic as atomic_module

        opened = {}
        real_open = os.open

        def spy_open(path, flags, *args, **kwargs):
            opened["path"], opened["flags"] = path, flags
            return real_open(path, flags, *args, **kwargs)

        monkeypatch.setattr(os, "open", spy_open)
        atomic_module.fsync_directory(tmp_path)
        assert opened["path"] == str(tmp_path)
        if hasattr(os, "O_DIRECTORY"):
            assert opened["flags"] & os.O_DIRECTORY

    def test_fsyncs_the_directory_fd(self, tmp_path, monkeypatch):
        import os

        from repro.persistence import fsync_directory

        synced = []
        monkeypatch.setattr(os, "fsync", synced.append)
        fsync_directory(tmp_path)
        assert len(synced) == 1

    def test_refusing_filesystem_degrades_silently(self, tmp_path,
                                                   monkeypatch):
        import os

        from repro.persistence import fsync_directory

        def refuse(fd):
            raise OSError("EINVAL: directory fsync unsupported")

        monkeypatch.setattr(os, "fsync", refuse)
        fsync_directory(tmp_path)  # must not raise

    def test_non_directory_fails_loudly(self, tmp_path):
        import os

        import pytest as _pytest

        from repro.persistence import fsync_directory

        if not hasattr(os, "O_DIRECTORY"):
            _pytest.skip("platform lacks O_DIRECTORY")
        target = tmp_path / "a-file"
        target.write_text("not a directory")
        with _pytest.raises(OSError):
            fsync_directory(target)
