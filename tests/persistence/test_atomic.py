"""The atomic write primitive: all-or-nothing file replacement."""

import pytest

from repro.persistence import (atomic_write, atomic_write_bytes,
                               atomic_write_text, read_pointer,
                               write_pointer)

pytestmark = pytest.mark.persistence


class TestAtomicWrite:
    def test_creates_file(self, tmp_path):
        target = tmp_path / "out.txt"
        with atomic_write(target) as stream:
            stream.write("hello")
        assert target.read_text() == "hello"

    def test_replaces_existing_content(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        with atomic_write(target) as stream:
            stream.write("new")
        assert target.read_text() == "new"

    def test_failure_leaves_old_content_intact(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("precious")
        with pytest.raises(RuntimeError):
            with atomic_write(target) as stream:
                stream.write("half-written garbage")
                raise RuntimeError("simulated crash mid-write")
        assert target.read_text() == "precious"

    def test_failure_leaves_no_temp_files(self, tmp_path):
        target = tmp_path / "out.txt"
        with pytest.raises(RuntimeError):
            with atomic_write(target) as stream:
                stream.write("doomed")
                raise RuntimeError("boom")
        assert list(tmp_path.iterdir()) == []

    def test_success_leaves_no_temp_files(self, tmp_path):
        target = tmp_path / "out.txt"
        with atomic_write(target) as stream:
            stream.write("done")
        assert [entry.name for entry in tmp_path.iterdir()] == ["out.txt"]

    def test_binary_mode(self, tmp_path):
        target = tmp_path / "out.bin"
        payload = bytes(range(256))
        with atomic_write(target, "wb") as stream:
            stream.write(payload)
        assert target.read_bytes() == payload


class TestHelpers:
    def test_write_text_returns_byte_count(self, tmp_path):
        target = tmp_path / "t.txt"
        written = atomic_write_text(target, "héllo")
        assert written == len("héllo".encode())
        assert target.stat().st_size == written

    def test_write_bytes(self, tmp_path):
        target = tmp_path / "b.bin"
        assert atomic_write_bytes(target, b"abc") == 3
        assert target.read_bytes() == b"abc"

    def test_pointer_round_trip(self, tmp_path):
        pointer = tmp_path / "CURRENT"
        write_pointer(pointer, "00000042")
        assert read_pointer(pointer) == "00000042"

    def test_pointer_missing_is_none(self, tmp_path):
        assert read_pointer(tmp_path / "CURRENT") is None

    def test_pointer_rewrite_is_atomic_replace(self, tmp_path):
        pointer = tmp_path / "CURRENT"
        write_pointer(pointer, "00000001")
        write_pointer(pointer, "00000002")
        assert read_pointer(pointer) == "00000002"
        assert [entry.name for entry in tmp_path.iterdir()] == ["CURRENT"]
