"""Engine and store snapshots."""

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import SearchEngine
from repro.core.persistence import load_engine, save_engine
from repro.errors import CatalogError
from repro.web.ausopen import build_ausopen_site
from repro.webspace.schema import australian_open_schema
from repro.xmlstore.model import element, isomorphic
from repro.xmlstore.store import XmlStore


class TestXmlStoreSnapshot:
    def test_round_trip(self, tmp_path):
        store = XmlStore()
        doc = element("a", {"k": "v"}, element("b", None, "text"))
        store.insert("d1", doc)
        store.save(tmp_path / "s.jsonl")
        restored = XmlStore.load(tmp_path / "s.jsonl")
        assert "d1" in restored
        assert isomorphic(restored.reconstruct("d1"), doc)
        assert restored.paths() == store.paths()

    def test_restored_store_accepts_new_documents(self, tmp_path):
        store = XmlStore()
        store.insert("d1", element("a", None, element("b", None, "x")))
        store.save(tmp_path / "s.jsonl")
        restored = XmlStore.load(tmp_path / "s.jsonl")
        restored.insert("d2", element("a", None, element("b", None, "y")))
        values = restored.query("/a/b/text()").value_list()
        assert sorted(values) == ["x", "y"]

    def test_restored_store_supports_delete(self, tmp_path):
        store = XmlStore()
        store.insert("d1", element("a", None, element("b", None, "x")))
        store.save(tmp_path / "s.jsonl")
        restored = XmlStore.load(tmp_path / "s.jsonl")
        restored.delete("d1")
        assert "d1" not in restored

    def test_attribute_summary_restored(self, tmp_path):
        store = XmlStore()
        store.insert("d1", element("a", {"k": "v", "m": "w"}))
        store.save(tmp_path / "s.jsonl")
        restored = XmlStore.load(tmp_path / "s.jsonl")
        assert restored.query("/a/@k").value_list() == ["v"]
        assert restored.query("/a/@m").value_list() == ["w"]


@pytest.fixture(scope="module")
def populated(tmp_path_factory):
    server, truth = build_ausopen_site(players=8, articles=6, videos=3,
                                       frames_per_shot=6)
    engine = SearchEngine(australian_open_schema(), server,
                          EngineConfig(fragment_count=3))
    engine.populate()
    directory = tmp_path_factory.mktemp("engine-snapshot")
    save_engine(engine, directory)
    return engine, server, truth, directory


class TestEngineSnapshot:
    def _mixed_query(self, engine):
        return (engine.new_query()
                .from_class("p", "Player")
                .where("p.gender", "==", "female")
                .where("p.plays", "==", "left")
                .contains("p.history", "Winner")
                .from_class("v", "Video")
                .join("Features", "v", "p")
                .video_event("v.video", "netplay")
                .select("p.name", "v.title"))

    def test_reloaded_engine_answers_the_mixed_query(self, populated):
        engine, server, truth, directory = populated
        restored = load_engine(directory, australian_open_schema(), server)
        result = restored.query(self._mixed_query(restored))
        expected = truth.mixed_query_answer()
        assert sorted((r.keys["p"], r.keys["v"]) for r in result) \
            == expected

    def test_reloaded_results_identical_to_original(self, populated):
        engine, server, truth, directory = populated
        restored = load_engine(directory, australian_open_schema(), server)
        query = "SELECT p.name FROM Player p WHERE " \
                "p.history CONTAINS 'Winner' TOP 20"
        original = engine.query_text(query)
        reloaded = restored.query_text(query)
        assert original.column("p.name") == reloaded.column("p.name")
        assert [round(r.score, 9) for r in original.rows] \
            == [round(r.score, 9) for r in reloaded.rows]

    def test_config_restored_from_manifest(self, populated):
        engine, server, _, directory = populated
        restored = load_engine(directory, australian_open_schema(), server)
        assert restored.config.fragment_count == 3

    def test_schema_mismatch_rejected(self, populated):
        _, server, _, directory = populated
        from repro.web.lonelyplanet import lonely_planet_schema
        with pytest.raises(CatalogError):
            load_engine(directory, lonely_planet_schema(), server)

    def test_missing_snapshot_rejected(self, tmp_path, populated):
        _, server, _, _ = populated
        with pytest.raises(CatalogError):
            load_engine(tmp_path / "nowhere", australian_open_schema(),
                        server)
