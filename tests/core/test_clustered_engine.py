"""The engine on a shared-nothing cluster (EngineConfig.cluster_size)."""

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import SearchEngine
from repro.ir.engine import ClusterIrEngine
from repro.web.ausopen import build_ausopen_site
from repro.webspace.schema import australian_open_schema


@pytest.fixture(scope="module")
def engines():
    server, truth = build_ausopen_site(players=10, articles=8, videos=3,
                                       frames_per_shot=6)
    single = SearchEngine(australian_open_schema(), server,
                          EngineConfig(cluster_size=1))
    single.populate()
    clustered = SearchEngine(australian_open_schema(), server,
                             EngineConfig(cluster_size=4))
    clustered.populate()
    return single, clustered, truth


MIXED = ("SELECT p.name, v.title FROM Player p, Video v "
         "WHERE p.gender = 'female' AND p.plays = 'left' "
         "AND p.history CONTAINS 'Winner' AND v Features p "
         "AND v.video EVENT netplay TOP 10")


class TestBackendSelection:
    def test_cluster_backend_chosen(self, engines):
        single, clustered, _ = engines
        assert isinstance(clustered.ir, ClusterIrEngine)
        assert not isinstance(single.ir, ClusterIrEngine)

    def test_documents_spread_across_nodes(self, engines):
        _, clustered, _ = engines
        counts = [relations.document_count()
                  for relations in clustered.ir.index.nodes.values()]
        assert all(count > 0 for count in counts)
        assert sum(counts) \
            == clustered.ir.relations.document_count()


class TestResultEquivalence:
    @pytest.mark.parametrize("query", [
        MIXED,
        "SELECT p.name FROM Player p "
        "WHERE p.history CONTAINS 'Winner championship' TOP 20",
        "SELECT a.title FROM Article a "
        "WHERE a.body CONTAINS 'centre court' TOP 20",
    ])
    def test_clustered_matches_single_node(self, engines, query):
        single, clustered, _ = engines
        left = single.query_text(query)
        right = clustered.query_text(query)
        assert [row.keys for row in left.rows] \
            == [row.keys for row in right.rows]

    def test_mixed_query_answer(self, engines):
        _, clustered, truth = engines
        result = clustered.query_text(MIXED)
        assert sorted((row.keys["p"], row.keys["v"]) for row in result) \
            == truth.mixed_query_answer()


class TestClusteredMaintenance:
    def test_recrawl_on_cluster(self, engines):
        server, truth = build_ausopen_site(players=6, articles=4,
                                           videos=2, frames_per_shot=6)
        engine = SearchEngine(australian_open_schema(), server,
                              EngineConfig(cluster_size=3))
        engine.populate()
        player = truth.player("monica-seles")
        page = server.get(player.page_path)
        server.add_page(player.page_path,
                        page.body.replace("Winner", "Runner-up"))
        engine.recrawl()
        result = engine.query_text(
            "SELECT p.name FROM Player p "
            "WHERE p.history CONTAINS 'Winner' TOP 50")
        assert "Monica Seles" not in result.column("p.name")
