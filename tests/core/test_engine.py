"""E12: the integrated engine and the paper's headline mixed query."""

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import SearchEngine
from repro.errors import QueryError
from repro.web.ausopen import build_ausopen_site
from repro.webspace.schema import australian_open_schema


@pytest.fixture(scope="module")
def engine():
    server, truth = build_ausopen_site(players=10, articles=8, videos=4,
                                       frames_per_shot=8)
    schema = australian_open_schema()
    engine = SearchEngine(schema, server, EngineConfig(fragment_count=4))
    report = engine.populate()
    return engine, truth, report


def _mixed_query(engine):
    return (engine.new_query()
            .from_class("p", "Player")
            .where("p.gender", "==", "female")
            .where("p.plays", "==", "left")
            .contains("p.history", "Winner")
            .from_class("v", "Video")
            .join("Features", "v", "p")
            .video_event("v.video", "netplay")
            .select("p.name", "v.title", "v.video"))


class TestPopulation:
    def test_report_counts(self, engine):
        _, truth, report = engine
        assert report.documents_stored == (len(truth.players)
                                           + len(truth.articles)
                                           + len(truth.videos))
        assert report.videos_analyzed == len(truth.videos)
        assert report.hypertexts_indexed \
            == len(truth.players) + len(truth.articles)

    def test_meta_store_holds_video_and_audio_trees(self, engine):
        search, truth, _ = engine
        interviews = sum(1 for p in truth.players if p.interview_path)
        assert len(search.meta_store) == len(truth.videos) + interviews

    def test_stats_surface(self, engine):
        search, _, _ = engine
        stats = search.stats()
        assert stats["conceptual"]["buns"] > 0
        assert stats["meta"]["buns"] > 0
        assert stats["videos"] > 0


class TestMixedQuery:
    def test_headline_query_returns_ground_truth(self, engine):
        """'Show me video shots of left-handed female players, who have
        won the Australian Open in the past, and in which they approach
        the net.'"""
        search, truth, _ = engine
        result = search.query(_mixed_query(search))
        answers = sorted((row.keys["p"], row.keys["v"]) for row in result)
        assert answers == truth.mixed_query_answer()

    def test_result_carries_shots(self, engine):
        search, truth, _ = engine
        result = search.query(_mixed_query(search))
        for row in result:
            shots = row.shots["v"]
            assert shots, "event predicate must attach matching shots"
            for shot in shots:
                assert shot.event == "netplay"
                assert 0 <= shot.begin <= shot.end

    def test_shots_match_video_ground_truth(self, engine):
        search, truth, _ = engine
        result = search.query(_mixed_query(search))
        for row in result:
            video = next(v for v in truth.videos if v.key == row.keys["v"])
            payload = search.video_library.get(
                search.server.absolute(video.media_path))
            truth_ranges = payload.truth.shot_ranges(payload.frame_count)
            expected = {truth_ranges[i]
                        for i in payload.truth.netplay_shots}
            assert {(s.begin, s.end) for s in row.shots["v"]} == expected

    def test_projection_values(self, engine):
        search, truth, _ = engine
        result = search.query(_mixed_query(search))
        row = result.rows[0]
        assert row.value("p.name") == "Monica Seles"
        assert row.value("v.video").endswith(".mpg")

    def test_content_score_ranks_rows(self, engine):
        search, _, _ = engine
        result = search.query(_mixed_query(search))
        scores = [row.score for row in result]
        assert scores == sorted(scores, reverse=True)
        assert all(score > 0 for score in scores)


class TestConceptualQueries:
    def test_single_class_attribute_query(self, engine):
        search, truth, _ = engine
        query = (search.new_query()
                 .from_class("p", "Player")
                 .where("p.plays", "==", "left")
                 .select("p.name")
                 .top(50))
        result = search.query(query)
        expected = sorted(p.name for p in truth.players
                          if p.plays == "left")
        assert sorted(result.column("p.name")) == expected

    def test_cross_document_join(self, engine):
        """'integrate information stored in different documents in a
        single query' — articles and players live in separate pages."""
        search, truth, _ = engine
        query = (search.new_query()
                 .from_class("a", "Article")
                 .from_class("p", "Player")
                 .join("About", "a", "p")
                 .where("p.name", "==", "Monica Seles")
                 .select("a.title")
                 .top(50))
        result = search.query(query)
        expected = sorted(a.title for a in truth.articles
                          if "monica-seles" in a.about)
        assert sorted(result.column("a.title")) == expected

    def test_content_only_query(self, engine):
        search, truth, _ = engine
        query = (search.new_query()
                 .from_class("p", "Player")
                 .contains("p.history", "Winner championship")
                 .select("p.name")
                 .top(50))
        result = search.query(query)
        champions = {p.name for p in truth.players if p.is_champion}
        assert set(result.column("p.name")) == champions

    def test_event_only_query(self, engine):
        search, truth, _ = engine
        query = (search.new_query()
                 .from_class("v", "Video")
                 .video_event("v.video", "netplay")
                 .select("v.title")
                 .top(50))
        result = search.query(query)
        expected = {v.title for v in truth.videos if v.netplay}
        assert set(result.column("v.title")) == expected

    def test_foreign_query_rejected(self, engine):
        search, _, _ = engine
        other = australian_open_schema()
        from repro.webspace.query import WebspaceQuery
        foreign = (WebspaceQuery(other).from_class("p", "Player")
                   .select("p.name"))
        with pytest.raises(QueryError):
            search.query(foreign)

    def test_empty_result_when_nothing_matches(self, engine):
        search, _, _ = engine
        query = (search.new_query()
                 .from_class("p", "Player")
                 .where("p.name", "==", "Nobody Atall")
                 .select("p.name"))
        assert len(search.query(query)) == 0
