"""The executed physical plan (EXPLAIN ANALYZE)."""

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import SearchEngine
from repro.core.plan import PlanNode, format_plan
from repro.web.ausopen import build_ausopen_site
from repro.webspace.schema import australian_open_schema


class TestPlanNode:
    def test_tree_construction(self):
        root = PlanNode("TopN", "limit=5")
        child = root.add(PlanNode("Rank"))
        child.counter("rows", 3)
        assert root.children == [child]
        assert child.counters == {"rows": 3}

    def test_find_by_operator(self):
        root = PlanNode("A")
        root.add(PlanNode("B")).add(PlanNode("C"))
        root.add(PlanNode("B"))
        assert len(root.find("B")) == 2
        assert root.find("missing") == []

    def test_format(self):
        root = PlanNode("TopN", "limit=5", {"rows": 1})
        root.add(PlanNode("Scan", "Player"))
        text = format_plan(root)
        assert text.splitlines() == [
            "TopN limit=5  [rows=1]",
            "  Scan Player",
        ]


@pytest.fixture(scope="module")
def engine():
    server, truth = build_ausopen_site(players=8, articles=6, videos=3,
                                       frames_per_shot=6)
    engine = SearchEngine(australian_open_schema(), server, EngineConfig())
    engine.populate()
    return engine, truth


class TestExecutedPlans:
    def test_mixed_query_plan_shape(self, engine):
        search, _ = engine
        result = search.query_text(
            "SELECT p.name, v.title FROM Player p, Video v "
            "WHERE p.gender = 'female' AND p.plays = 'left' "
            "AND p.history CONTAINS 'Winner' AND v Features p "
            "AND v.video EVENT netplay TOP 5")
        plan = result.plan
        assert plan.operator == "TopN"
        assert len(plan.find("Bind")) == 2
        assert len(plan.find("AttrSelect")) == 2
        assert len(plan.find("IrProbe")) == 1
        assert len(plan.find("MetaProbe")) == 1
        assert len(plan.find("AssocJoin")) == 1

    def test_counters_narrow_monotonically(self, engine):
        search, truth = engine
        result = search.query_text(
            "SELECT p.name FROM Player p WHERE p.gender = 'female' "
            "AND p.plays = 'left' TOP 50")
        selects = result.plan.find("AttrSelect")
        for node in selects:
            assert node.counters["out"] <= node.counters["in"]
        bind = result.plan.find("Bind")[0]
        assert bind.counters["instances"] == len(truth.players)

    def test_explain_renders(self, engine):
        search, _ = engine
        result = search.query_text(
            "SELECT p.name FROM Player p WHERE p.plays = 'left'")
        text = result.explain()
        assert "TopN" in text
        assert "AttrSelect p.plays == 'left'" in text

    def test_audio_probe_in_plan(self, engine):
        search, _ = engine
        result = search.query(
            search.new_query().from_class("p", "Player")
            .audio_event("p.interview", "speech").select("p.name"))
        assert len(result.plan.find("AudioProbe")) == 1

    def test_plan_rows_counter_matches_result(self, engine):
        search, _ = engine
        result = search.query_text(
            "SELECT p.name FROM Player p WHERE p.gender = 'male' TOP 3")
        assert result.plan.counters["rows"] == len(result.rows)
