"""Engine maintenance: detector upgrades and source changes (E9 shape)."""

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import SearchEngine
from repro.featuregrammar.versions import ChangeLevel
from repro.web.ausopen import build_ausopen_site
from repro.webspace.schema import australian_open_schema


@pytest.fixture
def engine():
    server, truth = build_ausopen_site(players=8, articles=4, videos=3,
                                       frames_per_shot=8)
    engine = SearchEngine(australian_open_schema(), server,
                          EngineConfig(fragment_count=2))
    engine.populate()
    return engine, server, truth


def _netplay_videos(engine):
    query = (engine.new_query()
             .from_class("v", "Video")
             .video_event("v.video", "netplay")
             .select("v.title")
             .top(50))
    return {row.keys["v"] for row in engine.query(query)}


class TestDetectorUpgrades:
    def test_correction_revision_runs_nothing(self, engine):
        search, _, _ = engine
        level = search.upgrade_detector("segment", "1.0.1")
        assert level == ChangeLevel.CORRECTION
        search.registry.reset_executions()
        report = search.maintain()
        assert report.detectors_rerun == 0

    def test_minor_revision_reruns_only_dependents(self, engine):
        search, _, truth = engine
        level = search.upgrade_detector("tennis", "1.1.0")
        assert level == ChangeLevel.MINOR
        search.registry.reset_executions()
        search.maintain()
        # tennis re-ran per tennis shot, header and segment did not
        assert search.registry.executions("tennis") > 0
        assert search.registry.executions("header") == 0
        assert search.registry.executions("segment") == 0

    def test_major_revision_with_new_implementation(self, engine):
        """Upgrading netplay's threshold detector-style: a new tennis
        implementation that reports everyone at the baseline removes
        all netplay events from the meta-index."""
        search, _, _ = engine
        assert _netplay_videos(search)  # some netplay videos exist

        def flat_tennis(location, begin, end):
            tokens = []
            for frame in range(begin, end + 1):
                tokens.extend([frame, 320.0, 320.0, 450, 0.5, 0.1])
            return tokens

        # the implementation is remote (xml-rpc): replace on the server
        search.registry.transports.get("xml-rpc").server.register(
            "tennis", flat_tennis)
        level = search.upgrade_detector("tennis", "2.0.0")
        assert level == ChangeLevel.MAJOR
        search.maintain()
        assert _netplay_videos(search) == set()

    def test_query_results_consistent_after_maintenance(self, engine):
        search, _, truth = engine
        before = _netplay_videos(search)
        search.upgrade_detector("tennis", "1.2.0")
        search.maintain()
        assert _netplay_videos(search) == before  # same implementation


class TestSourceChanges:
    def test_changed_media_triggers_regeneration(self, engine):
        search, server, truth = engine
        video = truth.videos[0]
        url = server.absolute(video.media_path)

        # replace the video by one without any net approach
        from repro.cobra.video import generate_video, tennis_match_script
        new_script = tennis_match_script(rng_seed=77, rallies=2,
                                         netplay_rallies=(),
                                         frames_per_shot=8)
        replacement = generate_video(new_script, url, seed=77)
        server.add_media(video.media_path, ("video", "mpeg"),
                         payload=replacement, last_modified=999)
        search.video_library.add(replacement)

        assert search.notify_source_change(url) is True
        report = search.maintain()
        assert report.trees_regenerated == 1
        assert video.key not in _netplay_videos(search)

    def test_unchanged_source_is_noop(self, engine):
        search, server, truth = engine
        url = server.absolute(truth.videos[0].media_path)
        assert search.notify_source_change(url) is False
