"""The command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    directory = tmp_path_factory.mktemp("cli-snapshot")
    code = main(["populate", "--site", "ausopen",
                 "--snapshot", str(directory),
                 "--players", "8", "--articles", "4",
                 "--videos", "3", "--frames", "6"])
    assert code == 0
    return directory


class TestPopulate:
    def test_populate_writes_snapshot(self, snapshot):
        # the crash-safe layout: generation directory behind CURRENT
        assert (snapshot / "site.json").exists()
        generation = (snapshot / "CURRENT").read_text().strip()
        checkpoint = snapshot / "snapshot" / generation
        assert (checkpoint / "engine.json").exists()
        assert (checkpoint / "conceptual.jsonl").exists()

    def test_populate_report_printed(self, tmp_path, capsys):
        main(["populate", "--site", "lonelyplanet",
              "--snapshot", str(tmp_path / "lp")])
        out = capsys.readouterr().out
        assert "crawled" in out and "snapshot written" in out


class TestQuery:
    def test_mixed_query(self, snapshot, capsys):
        code = main(["query", "--snapshot", str(snapshot),
                     "SELECT p.name, v.title FROM Player p, Video v "
                     "WHERE p.gender = 'female' AND p.plays = 'left' "
                     "AND p.history CONTAINS 'Winner' AND v Features p "
                     "AND v.video EVENT netplay TOP 5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Monica Seles" in out
        assert "shot frames" in out

    def test_conceptual_query(self, snapshot, capsys):
        code = main(["query", "--snapshot", str(snapshot),
                     "SELECT p.name FROM Player p "
                     "WHERE p.plays = 'left' TOP 20"])
        assert code == 0
        assert "p.name=" in capsys.readouterr().out

    def test_no_results(self, snapshot, capsys):
        code = main(["query", "--snapshot", str(snapshot),
                     "SELECT p.name FROM Player p "
                     "WHERE p.name = 'Nobody'"])
        assert code == 0
        assert "no results" in capsys.readouterr().out

    def test_bad_query_fails_cleanly(self, snapshot, capsys):
        code = main(["query", "--snapshot", str(snapshot), "SELECT"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestSnapshotRestore:
    def test_snapshot_writes_new_generation(self, snapshot, capsys):
        assert main(["snapshot", "--snapshot", str(snapshot)]) == 0
        out = capsys.readouterr().out
        assert "checkpoint generation 2 written" in out
        assert (snapshot / "CURRENT").read_text().strip() == "00000002"

    def test_snapshot_list(self, snapshot, capsys):
        assert main(["snapshot", "--snapshot", str(snapshot),
                     "--list"]) == 0
        out = capsys.readouterr().out
        assert "(CURRENT)" in out

    def test_restore_verifies_and_reports(self, snapshot, capsys):
        assert main(["restore", "--snapshot", str(snapshot)]) == 0
        out = capsys.readouterr().out
        assert "verified" in out
        assert "conceptual documents" in out

    def test_restore_detects_corruption(self, snapshot, capsys):
        generation = (snapshot / "CURRENT").read_text().strip()
        target = snapshot / "snapshot" / generation / "ir.jsonl"
        original = target.read_bytes()
        try:
            target.write_bytes(original[:-10])
            code = main(["restore", "--snapshot", str(snapshot)])
            err = capsys.readouterr().err
            assert code == 1
            assert "error:" in err
        finally:
            target.write_bytes(original)

    def test_restore_fallback_degrades_to_older_generation(self, snapshot,
                                                           capsys):
        generation = (snapshot / "CURRENT").read_text().strip()
        target = snapshot / "snapshot" / generation / "ir.jsonl"
        original = target.read_bytes()
        try:
            target.write_bytes(original[:-10])
            code = main(["restore", "--snapshot", str(snapshot),
                         "--on-corrupt", "fallback"])
            out = capsys.readouterr().out
            assert code == 0
            # the report names the generation actually loaded, not the
            # (corrupt) one CURRENT still points at
            assert f"from generation {int(generation) - 1} " in out
        finally:
            target.write_bytes(original)

    def test_snapshot_fallback_repairs_corrupt_current(self, snapshot,
                                                       capsys):
        generation = (snapshot / "CURRENT").read_text().strip()
        target = snapshot / "snapshot" / generation / "ir.jsonl"
        original = target.read_bytes()
        try:
            target.write_bytes(original[:-10])
            assert main(["snapshot", "--snapshot", str(snapshot)]) == 1
            code = main(["snapshot", "--snapshot", str(snapshot),
                         "--on-corrupt", "fallback"])
            assert code == 0
            capsys.readouterr()
            # the fresh checkpoint behind CURRENT loads under strict mode
            assert main(["restore", "--snapshot", str(snapshot)]) == 0
        finally:
            target.write_bytes(original)


class TestInspection:
    def test_stats(self, snapshot, capsys):
        assert main(["stats", "--snapshot", str(snapshot)]) == 0
        out = capsys.readouterr().out
        assert "conceptual:" in out and "ir:" in out

    def test_stats_query_prints_trace_and_metrics(self, snapshot, capsys,
                                                  tmp_path):
        import json

        report_path = tmp_path / "report.json"
        code = main(["stats", "--snapshot", str(snapshot),
                     "--query",
                     "SELECT p.name FROM Player p "
                     "WHERE p.history CONTAINS 'Winner' TOP 5",
                     "--json", str(report_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "== trace ==" in out and "== metrics ==" in out
        # the span tree descends query -> plan stage -> operator
        assert "query" in out and "plan.content" in out
        assert "op.IrProbe" in out
        assert "monetdb.tuples_touched{server=conceptual}" in out
        report = json.loads(report_path.read_text())
        assert report["spans"][0]["name"] == "query"
        assert report["metrics"]["counters"]["engine.queries"] == 1

    def test_stats_query_leaves_telemetry_disabled(self, snapshot):
        from repro.telemetry import is_enabled

        main(["stats", "--snapshot", str(snapshot),
              "--query", "SELECT p.name FROM Player p TOP 3"])
        assert not is_enabled()

    def test_stats_site_builds_ephemeral_engine(self, capsys):
        code = main(["stats", "--site", "ausopen", "--cluster", "2",
                     "--players", "4", "--articles", "2", "--videos", "1",
                     "--frames", "6",
                     "--query",
                     "SELECT p.name FROM Player p "
                     "WHERE p.history CONTAINS 'Winner' TOP 5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ir.node_topn" in out
        assert "distributed per-node tuples" in out

    def test_stats_requires_a_source(self, capsys):
        code = main(["stats"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_paths(self, snapshot, capsys):
        assert main(["paths", "--snapshot", str(snapshot)]) == 0
        out = capsys.readouterr().out
        assert "webspace/Player" in out
        assert "MMO" in out

    def test_missing_snapshot_fails_cleanly(self, tmp_path, capsys):
        code = main(["stats", "--snapshot", str(tmp_path / "nope")])
        assert code == 1
        assert "error:" in capsys.readouterr().err
