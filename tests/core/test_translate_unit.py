"""ConceptualIndex unit behaviour (caching, merging, hooks)."""

import pytest

from repro.core.translate import ConceptualIndex, execute_query
from repro.errors import QueryError
from repro.webspace.documents import WebspaceDocument, document_to_xml
from repro.webspace.objects import AssociationInstance, WebObject
from repro.webspace.query import WebspaceQuery
from repro.webspace.schema import australian_open_schema
from repro.xmlstore.store import XmlStore


@pytest.fixture
def setting():
    schema = australian_open_schema()
    store = XmlStore()
    first = WebspaceDocument("d1", objects=[
        WebObject("Player", "seles", {"name": "Monica Seles",
                                      "gender": "female"}),
        WebObject("Article", "a1", {"title": "Day 1"}),
    ], associations=[AssociationInstance("About", "a1", "seles")])
    second = WebspaceDocument("d2", objects=[
        # an overlapping, partial view of the same player
        WebObject("Player", "seles", {"country": "USA"}),
    ], associations=[AssociationInstance("About", "a1", "seles")])
    store.insert("d1", document_to_xml(schema, first))
    store.insert("d2", document_to_xml(schema, second))
    return schema, store, ConceptualIndex(store)


class TestConceptualIndex:
    def test_keys_deduplicated_across_documents(self, setting):
        _, _, index = setting
        assert index.keys_of("Player") == {"seles"}

    def test_attribute_values_merge_partial_views(self, setting):
        _, _, index = setting
        assert index.attribute_values("Player", "name") \
            == {"seles": "Monica Seles"}
        assert index.attribute_values("Player", "country") \
            == {"seles": "USA"}

    def test_association_pairs_deduplicated(self, setting):
        _, _, index = setting
        assert index.association_pairs("About") == [("a1", "seles")]

    def test_unknown_class_yields_empty(self, setting):
        _, _, index = setting
        assert index.keys_of("Video") == set()
        assert index.attribute_values("Video", "title") == {}
        assert index.association_pairs("Features") == []

    def test_cache_serves_without_touching_tuples(self, setting):
        _, store, index = setting
        index.keys_of("Player")
        store.server.reset_accounting()
        index.keys_of("Player")
        assert store.server.tuples_touched == 0

    def test_invalidate_refreshes_after_store_change(self, setting):
        schema, store, index = setting
        assert index.keys_of("Player") == {"seles"}
        extra = WebspaceDocument("d3", objects=[
            WebObject("Player", "novak", {"name": "Talia Novak"})])
        store.insert("d3", document_to_xml(schema, extra))
        assert index.keys_of("Player") == {"seles"}  # stale by design
        index.invalidate()
        assert index.keys_of("Player") == {"seles", "novak"}


class TestExecuteQueryHooks:
    def test_audio_predicate_without_hook_raises(self, setting):
        schema, _, index = setting
        query = (WebspaceQuery(schema)
                 .from_class("p", "Player")
                 .audio_event("p.interview", "speech")
                 .select("p.name"))
        with pytest.raises(QueryError):
            execute_query(query, index,
                          content_search=lambda *a: {},
                          event_search=lambda *a: [])

    def test_content_hook_scores_flow_into_rows(self, setting):
        schema, _, index = setting
        query = (WebspaceQuery(schema)
                 .from_class("p", "Player")
                 .contains("p.history", "whatever")
                 .select("p.name"))
        result = execute_query(
            query, index,
            content_search=lambda cls, attr, text: {"seles": 2.5},
            event_search=lambda *a: [])
        assert len(result) == 1
        assert result.rows[0].score == 2.5

    def test_event_hook_filters_and_attaches(self, setting):
        schema, store, index = setting
        video_doc = WebspaceDocument("dv", objects=[
            WebObject("Video", "v1", {"title": "Final",
                                      "video": "http://m/v1.mpg"})])
        store.insert("dv", document_to_xml(schema, video_doc))
        index.invalidate()
        query = (WebspaceQuery(schema)
                 .from_class("v", "Video")
                 .video_event("v.video", "netplay")
                 .select("v.title"))
        result = execute_query(
            query, index,
            content_search=lambda *a: {},
            event_search=lambda url, event: [(3, 9)])
        assert result.rows[0].shots["v"][0].begin == 3
