"""Conceptual-level maintenance: the re-crawl diff."""

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import SearchEngine
from repro.web.ausopen import build_ausopen_site
from repro.webspace.schema import australian_open_schema


@pytest.fixture
def engine():
    server, truth = build_ausopen_site(players=8, articles=5, videos=2,
                                       frames_per_shot=6)
    engine = SearchEngine(australian_open_schema(), server, EngineConfig())
    engine.populate()
    return engine, server, truth


class TestNoChange:
    def test_idempotent_recrawl(self, engine):
        search, _, truth = engine
        report = search.recrawl()
        total = (len(truth.players) + len(truth.articles)
                 + len(truth.videos))
        assert report.documents_unchanged == total
        assert report.documents_replaced == 0
        assert report.documents_added == 0
        assert report.documents_removed == 0

    def test_queries_unchanged_after_noop_recrawl(self, engine):
        search, _, _ = engine
        before = search.query_text(
            "SELECT p.name FROM Player p WHERE p.plays = 'left' TOP 50")
        search.recrawl()
        after = search.query_text(
            "SELECT p.name FROM Player p WHERE p.plays = 'left' TOP 50")
        assert before.column("p.name") == after.column("p.name")


class TestChangedPage:
    def test_changed_profile_is_replaced(self, engine):
        search, server, truth = engine
        player = truth.player("monica-seles")
        page = server.get(player.page_path)
        # Seles changes representation: USA -> Ruritania
        server.add_page(player.page_path,
                        page.body.replace(">USA<", ">Ruritania<"))
        report = search.recrawl()
        assert report.documents_replaced == 1
        result = search.query_text(
            "SELECT p.name FROM Player p "
            "WHERE p.country = 'Ruritania' TOP 10")
        assert result.column("p.name") == ["Monica Seles"]

    def test_changed_history_reindexes_text(self, engine):
        search, server, truth = engine
        player = truth.player("monica-seles")
        page = server.get(player.page_path)
        server.add_page(player.page_path,
                        page.body.replace("Winner", "Runner-up"))
        report = search.recrawl()
        assert report.hypertexts_reindexed >= 1
        result = search.query_text(
            "SELECT p.name FROM Player p "
            "WHERE p.history CONTAINS 'Winner' TOP 50")
        assert "Monica Seles" not in result.column("p.name")


class TestAddedAndRemovedPages:
    def test_new_article_is_added(self, engine):
        search, server, truth = engine
        server.add_page("articles/a99.html", """<html>
<head><title>Breaking</title></head>
<body><h1 class="article-title">A shock result</h1>
<div id="body"><p>An astonishing upset on centre court.</p></div>
<p><a href="/articles.html">All articles</a></p>
</body></html>""")
        listing = server.get("articles.html")
        server.add_page("articles.html", listing.body.replace(
            "</ul>", '<li><a href="/articles/a99.html">Breaking</a></li>'
            "</ul>"))
        report = search.recrawl()
        assert report.documents_added == 1
        result = search.query_text(
            "SELECT a.title FROM Article a "
            "WHERE a.body CONTAINS 'astonishing upset' TOP 5")
        assert result.column("a.title") == ["A shock result"]

    def test_removed_page_is_dropped(self, engine):
        search, server, truth = engine
        article = truth.articles[0]
        server.remove(article.page_path)  # the page 404s from now on
        report = search.recrawl()
        assert report.documents_removed == 1
        result = search.query_text(
            f"SELECT a.title FROM Article a "
            f"WHERE a.title = '{article.title}' TOP 5")
        assert len(result) == 0

    def test_removed_page_unindexed_from_ir(self, engine):
        search, server, truth = engine
        article = truth.articles[0]
        assert search.ir.relations.doc_oid(
            f"Article:{article.key}:body") is not None
        server.remove(article.page_path)
        search.recrawl()
        assert search.ir.relations.doc_oid(
            f"Article:{article.key}:body") is None
