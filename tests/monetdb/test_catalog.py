"""Catalog and oid-generation semantics."""

import pytest

from repro.errors import CatalogError
from repro.monetdb.catalog import Catalog, OidGenerator


class TestOidGenerator:
    def test_sequence_is_monotone(self):
        gen = OidGenerator()
        assert [gen.new() for _ in range(3)] == [0, 1, 2]

    def test_stride_shards_sequences(self):
        even = OidGenerator(start=0, stride=2)
        odd = OidGenerator(start=1, stride=2)
        assert [even.new(), even.new()] == [0, 2]
        assert [odd.new(), odd.new()] == [1, 3]

    def test_peek_does_not_consume(self):
        gen = OidGenerator()
        assert gen.peek() == 0
        assert gen.new() == 0

    def test_advance_past(self):
        gen = OidGenerator()
        gen.advance_past(10)
        assert gen.new() == 11

    def test_bad_stride_raises(self):
        with pytest.raises(CatalogError):
            OidGenerator(stride=0)


class TestCatalog:
    def test_create_and_get(self):
        catalog = Catalog()
        bat = catalog.create("r", "oid", "str")
        assert catalog.get("r") is bat
        assert "r" in catalog

    def test_create_duplicate_raises(self):
        catalog = Catalog()
        catalog.create("r", "oid", "str")
        with pytest.raises(CatalogError):
            catalog.create("r", "oid", "str")

    def test_get_missing_raises(self):
        with pytest.raises(CatalogError):
            Catalog().get("missing")

    def test_get_or_none(self):
        assert Catalog().get_or_none("missing") is None

    def test_ensure_creates_then_reuses(self):
        catalog = Catalog()
        first = catalog.ensure("r", "oid", "int")
        second = catalog.ensure("r", "oid", "int")
        assert first is second
        assert len(catalog) == 1

    def test_ensure_type_conflict_raises(self):
        catalog = Catalog()
        catalog.ensure("r", "oid", "int")
        with pytest.raises(CatalogError):
            catalog.ensure("r", "oid", "str")

    def test_drop(self):
        catalog = Catalog()
        catalog.create("r", "oid", "str")
        catalog.drop("r")
        assert "r" not in catalog

    def test_drop_missing_raises(self):
        with pytest.raises(CatalogError):
            Catalog().drop("r")

    def test_names_sorted(self):
        catalog = Catalog()
        catalog.create("b", "oid", "str")
        catalog.create("a", "oid", "str")
        assert catalog.names() == ["a", "b"]

    def test_total_buns(self):
        catalog = Catalog()
        bat = catalog.create("r", "oid", "int")
        bat.insert(catalog.oids.new(), 1)
        bat.insert(catalog.oids.new(), 2)
        assert catalog.total_buns() == 2
        assert catalog.stats() == {"relations": 1, "buns": 2}
