"""Property-based tests: BAT operators against a reference model."""

from collections import defaultdict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monetdb.atoms import Oid
from repro.monetdb.bat import BAT

_pairs = st.lists(
    st.tuples(st.integers(0, 20), st.integers(-50, 50)),
    max_size=40)


def _bat_and_model(pairs):
    bat = BAT("oid", "int", name="model")
    model: dict[int, list[int]] = defaultdict(list)
    for head, tail in pairs:
        bat.insert(Oid(head), tail)
        model[head].append(tail)
    return bat, model


@settings(max_examples=80)
@given(_pairs)
def test_find_all_matches_model(pairs):
    bat, model = _bat_and_model(pairs)
    for head in range(21):
        assert bat.find_all(Oid(head)) == model.get(head, [])


@settings(max_examples=80)
@given(_pairs, st.integers(-50, 50))
def test_find_heads_matches_model(pairs, needle):
    bat, model = _bat_and_model(pairs)
    expected = [head for head, tail in pairs if tail == needle]
    assert bat.find_heads(needle) == expected


@settings(max_examples=80)
@given(_pairs, st.integers(-50, 50))
def test_select_tail_matches_model(pairs, needle):
    bat, _ = _bat_and_model(pairs)
    expected = [(h, t) for h, t in pairs if t == needle]
    assert list(bat.select_tail(needle)) == expected


@settings(max_examples=80)
@given(_pairs)
def test_reverse_is_involution(pairs):
    bat, _ = _bat_and_model(pairs)
    assert list(bat.reverse().reverse()) == list(bat)


@settings(max_examples=80)
@given(_pairs, st.integers(0, 20))
def test_delete_head_matches_model(pairs, doomed):
    bat, model = _bat_and_model(pairs)
    removed = bat.delete_head(Oid(doomed))
    assert removed == len(model.get(doomed, []))
    assert list(bat) == [(h, t) for h, t in pairs if h != doomed]


@settings(max_examples=80)
@given(_pairs)
def test_sort_tail_is_stable_permutation(pairs):
    bat, _ = _bat_and_model(pairs)
    ordered = list(bat.sort_tail())
    assert sorted(t for _, t in pairs) == [t for _, t in ordered]
    assert sorted(ordered) == sorted(pairs)  # a permutation


@settings(max_examples=80)
@given(_pairs)
def test_group_sum_matches_model(pairs):
    bat, model = _bat_and_model(pairs)
    sums = dict(bat.group_sum())
    assert sums == {head: sum(tails) for head, tails in model.items()}


@settings(max_examples=80)
@given(_pairs, _pairs)
def test_join_matches_nested_loop(left_pairs, right_pairs):
    left = BAT("oid", "int")
    for head, tail in left_pairs:
        left.insert(Oid(head), tail)
    right = BAT("int", "str")
    for head, tail in right_pairs:
        right.insert(head, str(tail))
    expected = [(Oid(lh), str(rt))
                for lh, lt in left_pairs
                for rh, rt in right_pairs if lt == rh]
    assert sorted(left.join(right)) == sorted(expected)


@settings(max_examples=80)
@given(_pairs, st.integers(0, 5))
def test_topn_matches_sorted_prefix(pairs, n):
    bat, _ = _bat_and_model(pairs)
    top = list(bat.topn(n))
    tails = sorted((t for _, t in pairs), reverse=True)[:n]
    assert [t for _, t in top] == tails
