"""Atom ADT validation and coercion."""

import pytest

from repro.errors import AtomTypeError
from repro.monetdb.atoms import ATOM_TYPES, Oid, atom_type, register_atom_type


class TestOid:
    def test_oid_is_int(self):
        assert Oid(7) == 7

    def test_oid_repr_monet_style(self):
        assert repr(Oid(123)) == "123@0"

    def test_oid_type_coerces_plain_int(self):
        assert isinstance(atom_type("oid").coerce(5), Oid)

    def test_oid_rejects_bool(self):
        with pytest.raises(AtomTypeError):
            atom_type("oid").coerce(True)

    def test_oid_rejects_string(self):
        with pytest.raises(AtomTypeError):
            atom_type("oid").coerce("7")


class TestBuiltinTypes:
    def test_all_builtins_registered(self):
        assert {"oid", "int", "flt", "str", "bit", "url"} <= set(ATOM_TYPES)

    def test_int_accepts_int(self):
        assert atom_type("int").coerce(42) == 42

    def test_int_rejects_bool(self):
        with pytest.raises(AtomTypeError):
            atom_type("int").coerce(False)

    def test_int_rejects_float(self):
        with pytest.raises(AtomTypeError):
            atom_type("int").coerce(1.5)

    def test_flt_accepts_float(self):
        assert atom_type("flt").coerce(1.5) == 1.5

    def test_flt_widens_int(self):
        value = atom_type("flt").coerce(3)
        assert value == 3.0 and isinstance(value, float)

    def test_flt_rejects_bool(self):
        with pytest.raises(AtomTypeError):
            atom_type("flt").coerce(True)

    def test_str_accepts_text(self):
        assert atom_type("str").coerce("hi") == "hi"

    def test_str_rejects_int(self):
        with pytest.raises(AtomTypeError):
            atom_type("str").coerce(3)

    def test_bit_accepts_bool(self):
        assert atom_type("bit").coerce(True) is True

    def test_bit_rejects_int(self):
        with pytest.raises(AtomTypeError):
            atom_type("bit").coerce(1)

    def test_url_accepts_scheme(self):
        assert atom_type("url").coerce("http://x/y") == "http://x/y"

    def test_url_accepts_absolute_path(self):
        assert atom_type("url").coerce("/media/v0.mpg")

    def test_url_rejects_bare_word(self):
        with pytest.raises(AtomTypeError):
            atom_type("url").coerce("word")

    def test_url_rejects_empty(self):
        with pytest.raises(AtomTypeError):
            atom_type("url").coerce("")

    def test_accepts_reports_without_raising(self):
        assert atom_type("int").accepts(3)
        assert not atom_type("int").accepts("3")


class TestRegistry:
    def test_unknown_type_raises(self):
        with pytest.raises(AtomTypeError):
            atom_type("nosuch")

    def test_register_new_type(self):
        checker = lambda v: v  # noqa: E731
        new_type = register_atom_type("test_custom_atom", checker)
        assert atom_type("test_custom_atom") is new_type
        del ATOM_TYPES["test_custom_atom"]

    def test_register_idempotent_with_same_checker(self):
        checker = lambda v: v  # noqa: E731
        first = register_atom_type("test_idem_atom", checker)
        second = register_atom_type("test_idem_atom", checker)
        assert first is second
        del ATOM_TYPES["test_idem_atom"]

    def test_register_conflicting_checker_raises(self):
        register_atom_type("test_conflict_atom", lambda v: v)
        with pytest.raises(AtomTypeError):
            register_atom_type("test_conflict_atom", lambda v: v)
        del ATOM_TYPES["test_conflict_atom"]
