"""Server and shared-nothing cluster semantics."""

import pytest

from repro.errors import CatalogError
from repro.monetdb.server import Cluster, MonetServer


class TestServer:
    def test_cost_accounting(self):
        server = MonetServer("n0")
        server.charge(5)
        server.charge(7)
        assert server.tuples_touched == 12
        server.reset_accounting()
        assert server.tuples_touched == 0


class TestCluster:
    def test_size_validated(self):
        with pytest.raises(CatalogError):
            Cluster(0)

    def test_servers_get_disjoint_oid_sequences(self):
        cluster = Cluster(3)
        oids = [server.catalog.oids.new() for server in cluster
                for _ in range(2)]
        assert len(set(oids)) == len(oids)

    def test_placement_is_deterministic(self):
        cluster = Cluster(4)
        first = cluster.place("http://x/doc1").name
        assert all(cluster.place("http://x/doc1").name == first
                   for _ in range(5))

    def test_placement_spreads_documents(self):
        cluster = Cluster(4)
        names = {cluster.place(f"http://x/doc{i}").name for i in range(50)}
        assert len(names) == 4

    def test_int_keys_place_by_modulo(self):
        cluster = Cluster(3)
        assert cluster.place(7).name == cluster.servers[1].name

    def test_custom_placement(self):
        cluster = Cluster(2, placement=lambda key: 1)
        assert cluster.place("anything").name == cluster.servers[1].name

    def test_placement_out_of_range_raises(self):
        cluster = Cluster(2, placement=lambda key: 9)
        with pytest.raises(CatalogError):
            cluster.place("x")

    def test_unplaceable_key_raises(self):
        with pytest.raises(CatalogError):
            Cluster(2).place(3.14)

    def test_scatter_partitions_items(self):
        cluster = Cluster(2)
        parts = cluster.scatter([(i, f"payload{i}") for i in range(6)])
        total = sum(len(items) for items in parts.values())
        assert total == 6
        assert set(parts) == {"node0", "node1"}

    def test_cluster_accounting(self):
        cluster = Cluster(2)
        cluster.servers[0].charge(10)
        cluster.servers[1].charge(4)
        assert cluster.total_tuples_touched() == 14
        assert cluster.max_tuples_touched() == 10
        assert cluster.accounting() == {"node0": 10, "node1": 4}
        cluster.reset_accounting()
        assert cluster.total_tuples_touched() == 0
