"""Catalog snapshot save/load round-trips."""

import pytest

from repro.errors import CatalogError
from repro.monetdb.atoms import Oid
from repro.monetdb.catalog import Catalog
from repro.monetdb.persistence import load_catalog, save_catalog


@pytest.fixture
def catalog() -> Catalog:
    catalog = Catalog()
    names = catalog.create("names", "oid", "str")
    names.insert(catalog.oids.new(), "monica")
    names.insert(catalog.oids.new(), "albrecht")
    scores = catalog.create("scores", "oid", "flt")
    scores.insert(Oid(0), 1.5)
    flags = catalog.create("flags", "oid", "bit")
    flags.insert(Oid(1), True)
    return catalog


class TestRoundTrip:
    def test_round_trip_preserves_relations(self, catalog, tmp_path):
        path = tmp_path / "snapshot.jsonl"
        save_catalog(catalog, path)
        loaded = load_catalog(path)
        assert loaded.names() == ["flags", "names", "scores"]
        assert list(loaded.get("names")) == [(0, "monica"), (1, "albrecht")]
        assert loaded.get("scores").find(Oid(0)) == 1.5
        assert loaded.get("flags").find(Oid(1)) is True

    def test_round_trip_preserves_oid_types(self, catalog, tmp_path):
        path = tmp_path / "snapshot.jsonl"
        save_catalog(catalog, path)
        loaded = load_catalog(path)
        assert isinstance(loaded.get("names").head[0], Oid)

    def test_oid_sequence_continues_after_load(self, catalog, tmp_path):
        path = tmp_path / "snapshot.jsonl"
        used = catalog.oids.peek()
        save_catalog(catalog, path)
        loaded = load_catalog(path)
        assert loaded.oids.new() >= used

    def test_empty_catalog_round_trips(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        save_catalog(Catalog(), path)
        assert len(load_catalog(path)) == 0


class TestErrors:
    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text("")
        with pytest.raises(CatalogError):
            load_catalog(path)

    def test_bad_format_version_raises(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"format": 99, "next_oid": 0}\n')
        with pytest.raises(CatalogError):
            load_catalog(path)

    def test_truncated_bat_raises(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text(
            '{"format": 1, "next_oid": 1}\n'
            '{"bat": "r", "head": "oid", "tail": "int", "count": 2}\n'
            '[0, 5]\n')
        with pytest.raises(CatalogError):
            load_catalog(path)

    def test_pair_before_header_raises(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"format": 1, "next_oid": 1}\n[0, 5]\n')
        with pytest.raises(CatalogError):
            load_catalog(path)
