"""BAT operator semantics."""

import pytest

from repro.errors import AtomTypeError, BatError
from repro.monetdb.bat import BAT
from repro.monetdb.atoms import Oid


@pytest.fixture
def ages() -> BAT:
    bat = BAT("oid", "int", name="ages")
    bat.extend([(Oid(1), 30), (Oid(2), 25), (Oid(3), 30), (Oid(4), 41)])
    return bat


class TestBasics:
    def test_len_counts_buns(self, ages):
        assert len(ages) == 4
        assert ages.count() == 4

    def test_iteration_yields_pairs_in_order(self, ages):
        assert list(ages) == [(1, 30), (2, 25), (3, 30), (4, 41)]

    def test_insert_validates_head_type(self, ages):
        with pytest.raises(AtomTypeError):
            ages.insert("x", 10)

    def test_insert_validates_tail_type(self, ages):
        with pytest.raises(AtomTypeError):
            ages.insert(Oid(9), "ten")

    def test_from_pairs(self):
        bat = BAT.from_pairs("str", "int", [("a", 1), ("b", 2)])
        assert list(bat) == [("a", 1), ("b", 2)]


class TestFind:
    def test_find_returns_first_tail(self, ages):
        assert ages.find(Oid(2)) == 25

    def test_find_missing_raises(self, ages):
        with pytest.raises(BatError):
            ages.find(Oid(99))

    def test_get_returns_default(self, ages):
        assert ages.get(Oid(99), -1) == -1

    def test_find_all_returns_every_tail(self):
        bat = BAT.from_pairs("oid", "int", [(Oid(1), 5), (Oid(1), 7)])
        assert bat.find_all(Oid(1)) == [5, 7]

    def test_find_heads_uses_tail_index(self, ages):
        assert ages.find_heads(30) == [1, 3]

    def test_exists(self, ages):
        assert ages.exists(Oid(1))
        assert not ages.exists(Oid(99))

    def test_index_updates_after_insert(self, ages):
        ages.find(Oid(1))  # builds index
        ages.insert(Oid(5), 30)
        assert ages.find(Oid(5)) == 30
        assert ages.find_heads(30) == [1, 3, 5]


class TestSelect:
    def test_select_tail_equality(self, ages):
        assert ages.select_tail(30).head == [1, 3]

    def test_select_predicate(self, ages):
        assert ages.select(lambda age: age > 28).head == [1, 3, 4]

    def test_select_range_inclusive(self, ages):
        assert ages.select_range(25, 30).head == [1, 2, 3]

    def test_select_range_exclusive(self, ages):
        result = ages.select_range(25, 30, include_low=False,
                                   include_high=False)
        assert result.head == []

    def test_select_range_open_ended(self, ages):
        assert ages.select_range(31, None).head == [4]


class TestViews:
    def test_reverse_swaps_columns(self, ages):
        reversed_bat = ages.reverse()
        assert reversed_bat.head[:2] == [30, 25]
        assert reversed_bat.head_type.name == "int"

    def test_mirror_maps_head_to_itself(self, ages):
        assert list(ages.mirror())[0] == (1, 1)

    def test_copy_is_independent(self, ages):
        clone = ages.copy()
        clone.insert(Oid(9), 1)
        assert len(ages) == 4

    def test_slice(self, ages):
        assert list(ages.slice(1, 3)) == [(2, 25), (3, 30)]


class TestJoin:
    def test_join_matches_tail_to_head(self):
        left = BAT.from_pairs("oid", "str", [(Oid(1), "a"), (Oid(2), "b")])
        right = BAT.from_pairs("str", "int", [("a", 10), ("b", 20),
                                              ("a", 11)])
        joined = left.join(right)
        assert sorted(joined) == [(1, 10), (1, 11), (2, 20)]

    def test_join_type_mismatch_raises(self):
        left = BAT.from_pairs("oid", "int", [(Oid(1), 1)])
        right = BAT.from_pairs("str", "int", [("a", 1)])
        with pytest.raises(BatError):
            left.join(right)

    def test_semijoin_keeps_matching_heads(self, ages):
        other = BAT.from_pairs("oid", "str", [(Oid(1), "x"), (Oid(4), "y")])
        assert ages.semijoin(other).head == [1, 4]

    def test_antijoin_drops_matching_heads(self, ages):
        other = BAT.from_pairs("oid", "str", [(Oid(1), "x"), (Oid(4), "y")])
        assert ages.antijoin(other).head == [2, 3]

    def test_semijoin_values(self, ages):
        assert ages.semijoin_values({Oid(2), Oid(3)}).head == [2, 3]


class TestOrderingAndAggregates:
    def test_sort_tail_ascending(self, ages):
        assert ages.sort_tail().tail == [25, 30, 30, 41]

    def test_sort_tail_descending(self, ages):
        assert ages.sort_tail(descending=True).tail == [41, 30, 30, 25]

    def test_topn(self, ages):
        top = ages.topn(2)
        assert top.tail == [41, 30]

    def test_topn_negative_raises(self, ages):
        with pytest.raises(BatError):
            ages.topn(-1)

    def test_group_count(self):
        bat = BAT.from_pairs("str", "int",
                             [("a", 1), ("b", 2), ("a", 3)])
        assert list(bat.group_count()) == [("a", 2), ("b", 1)]

    def test_group_sum(self):
        bat = BAT.from_pairs("str", "int",
                             [("a", 1), ("b", 2), ("a", 3)])
        assert list(bat.group_sum()) == [("a", 4), ("b", 2)]

    def test_unique_heads_in_first_seen_order(self):
        bat = BAT.from_pairs("str", "int",
                             [("b", 1), ("a", 2), ("b", 3)])
        assert bat.unique_heads() == ["b", "a"]

    def test_unique_tails(self, ages):
        assert ages.unique_tails() == [30, 25, 41]


class TestUpdates:
    def test_delete_head_removes_all(self):
        bat = BAT.from_pairs("oid", "int", [(Oid(1), 5), (Oid(1), 7),
                                            (Oid(2), 9)])
        assert bat.delete_head(Oid(1)) == 2
        assert list(bat) == [(2, 9)]

    def test_delete_missing_returns_zero(self, ages):
        assert ages.delete_head(Oid(99)) == 0

    def test_replace_updates_tails(self, ages):
        assert ages.replace(Oid(1), 31) == 1
        assert ages.find(Oid(1)) == 31

    def test_indexes_rebuilt_after_delete(self, ages):
        ages.find_heads(30)
        ages.delete_head(Oid(1))
        assert ages.find_heads(30) == [3]
