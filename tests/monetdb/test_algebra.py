"""Algebra helpers and the top-N merge."""

from repro.monetdb.algebra import (difference_heads, intersect_heads, join,
                                   project_tails, select_eq, semijoin,
                                   topn_merge, union_heads)
from repro.monetdb.atoms import Oid
from repro.monetdb.bat import BAT
from repro.monetdb.server import MonetServer


def _bat(pairs):
    return BAT.from_pairs("oid", "str", [(Oid(h), t) for h, t in pairs])


class TestOperators:
    def test_select_eq_charges_server(self):
        server = MonetServer("n")
        bat = _bat([(1, "a"), (2, "b")])
        result = select_eq(bat, "a", server)
        assert result.head == [1]
        assert server.tuples_touched == 2

    def test_join(self):
        left = _bat([(1, "x"), (2, "y")])
        right = BAT.from_pairs("str", "int", [("x", 7)])
        assert list(join(left, right)) == [(1, 7)]

    def test_semijoin(self):
        left = _bat([(1, "x"), (2, "y")])
        right = _bat([(2, "z")])
        assert semijoin(left, right).head == [2]

    def test_intersect_heads(self):
        sets = intersect_heads([_bat([(1, "a"), (2, "b")]),
                                _bat([(2, "c"), (3, "d")])])
        assert sets == {2}

    def test_intersect_empty_input(self):
        assert intersect_heads([]) == set()

    def test_union_heads(self):
        assert union_heads([_bat([(1, "a")]), _bat([(2, "b")])]) == {1, 2}

    def test_difference_heads(self):
        assert difference_heads(_bat([(1, "a"), (2, "b")]),
                                _bat([(2, "x")])) == {1}

    def test_project_tails_preserves_order(self):
        bat = _bat([(1, "a"), (2, "b"), (3, "c")])
        assert project_tails(bat, {3, 1}) == ["a", "c"]


class TestTopNMerge:
    def test_merges_sorted_rankings(self):
        merged = topn_merge([[("a", 3.0), ("b", 1.0)],
                             [("c", 2.0)]], n=3)
        assert merged == [("a", 3.0), ("c", 2.0), ("b", 1.0)]

    def test_cuts_to_n(self):
        merged = topn_merge([[("a", 3.0), ("b", 2.0)],
                             [("c", 2.5)]], n=2)
        assert merged == [("a", 3.0), ("c", 2.5)]

    def test_ties_break_on_key(self):
        merged = topn_merge([[("b", 1.0)], [("a", 1.0)]], n=2)
        assert merged == [("a", 1.0), ("b", 1.0)]

    def test_empty_inputs(self):
        assert topn_merge([], n=5) == []
        assert topn_merge([[], []], n=5) == []
