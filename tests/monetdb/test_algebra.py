"""Algebra kernels (batch-first surface) and the top-N merge."""

import pytest

from repro.monetdb.algebra import (difference_heads, group_count_packed,
                                   intersect_heads, join, join_packed,
                                   lookup_many, project_tails,
                                   project_tails_many, quantize_score,
                                   ranking_sort_key, select_eq,
                                   select_eq_many, select_where,
                                   select_where_many, semijoin, topn_merge,
                                   union_heads)
from repro.monetdb.atoms import Oid
from repro.monetdb.bat import BAT
from repro.monetdb.server import MonetServer


def _bat(pairs):
    return BAT.from_pairs("oid", "str", [(Oid(h), t) for h, t in pairs])


class TestBatchKernels:
    def test_select_eq_many_charges_server(self):
        server = MonetServer("n")
        bat = _bat([(1, "a"), (2, "b"), (3, "a")])
        result = select_eq_many(bat, ["a"], server)
        assert result.head == [1, 3]
        assert server.tuples_touched == 3

    def test_select_eq_many_multiple_values(self):
        bat = _bat([(1, "a"), (2, "b"), (3, "c")])
        assert select_eq_many(bat, ["a", "c"]).head == [1, 3]

    def test_select_where_many(self):
        bat = _bat([(1, "apple"), (2, "pear"), (3, "apricot")])
        result = select_where_many(bat, lambda t: t.startswith("ap"))
        assert result.head == [1, 3]

    def test_join_packed_carries_origins(self):
        edges = BAT.from_pairs("oid", "oid",
                               [(Oid(1), Oid(10)), (Oid(1), Oid(11)),
                                (Oid(2), Oid(12))])
        pairs = join_packed([("origin-a", Oid(1)), ("origin-b", Oid(2))],
                            edges)
        assert pairs == [("origin-a", 10), ("origin-a", 11),
                         ("origin-b", 12)]

    def test_join_packed_missing_key_drops(self):
        edges = BAT.from_pairs("oid", "oid", [(Oid(1), Oid(10))])
        assert join_packed([("x", Oid(9))], edges) == []

    def test_project_tails_many_preserves_order(self):
        bat = _bat([(1, "a"), (2, "b"), (3, "c")])
        assert project_tails_many(bat, {3, 1}) == ["a", "c"]

    def test_lookup_many_aligned_with_input(self):
        bat = _bat([(1, "a"), (2, "b")])
        assert lookup_many(bat, [2, 9, 1], default="?") == ["b", "?", "a"]

    def test_group_count_packed(self):
        bat = BAT.from_pairs("oid", "str",
                             [(Oid(1), "x"), (Oid(1), "y"), (Oid(2), "z")])
        counts = dict(group_count_packed(bat))
        assert counts == {1: 2, 2: 1}


class TestRemovedScalarShims:
    """The scalar forms finished their deprecation cycle: still
    importable (so old code fails loudly at the call, not the import),
    but any call is a TypeError naming the batch replacement."""

    def test_select_eq_raises_naming_the_batch_kernel(self):
        bat = _bat([(1, "a"), (2, "b")])
        with pytest.raises(TypeError, match="select_eq_many"):
            select_eq(bat, "a")

    def test_select_where_raises_naming_the_batch_kernel(self):
        bat = _bat([(1, "a"), (2, "b")])
        with pytest.raises(TypeError, match="select_where_many"):
            select_where(bat, lambda t: t == "b")

    def test_project_tails_raises_naming_the_batch_kernel(self):
        bat = _bat([(1, "a"), (2, "b"), (3, "c")])
        with pytest.raises(TypeError, match="project_tails_many"):
            project_tails(bat, {3, 1})

    def test_removal_message_says_it_was_a_deprecation_cycle(self):
        with pytest.raises(TypeError, match="deprecation cycle"):
            select_eq()


class TestOperators:
    def test_join(self):
        left = _bat([(1, "x"), (2, "y")])
        right = BAT.from_pairs("str", "int", [("x", 7)])
        assert list(join(left, right)) == [(1, 7)]

    def test_semijoin(self):
        left = _bat([(1, "x"), (2, "y")])
        right = _bat([(2, "z")])
        assert semijoin(left, right).head == [2]

    def test_intersect_heads(self):
        sets = intersect_heads([_bat([(1, "a"), (2, "b")]),
                                _bat([(2, "c"), (3, "d")])])
        assert sets == {2}

    def test_intersect_empty_input(self):
        assert intersect_heads([]) == set()

    def test_union_heads(self):
        assert union_heads([_bat([(1, "a")]), _bat([(2, "b")])]) == {1, 2}

    def test_difference_heads(self):
        assert difference_heads(_bat([(1, "a"), (2, "b")]),
                                _bat([(2, "x")])) == {1}


class TestRankingOrder:
    def test_quantize_score_grid(self):
        assert quantize_score(1.0000000001) == 1.0
        assert quantize_score(0.5) == 0.5

    def test_sort_key_orders_score_desc_then_key_asc(self):
        pairs = [("b", 1.0), ("a", 1.0), ("c", 2.0)]
        pairs.sort(key=ranking_sort_key)
        assert pairs == [("c", 2.0), ("a", 1.0), ("b", 1.0)]


class TestTopNMerge:
    def test_merges_sorted_rankings(self):
        merged = topn_merge([[("a", 3.0), ("b", 1.0)],
                             [("c", 2.0)]], n=3)
        assert merged == [("a", 3.0), ("c", 2.0), ("b", 1.0)]

    def test_cuts_to_n(self):
        merged = topn_merge([[("a", 3.0), ("b", 2.0)],
                             [("c", 2.5)]], n=2)
        assert merged == [("a", 3.0), ("c", 2.5)]

    def test_ties_break_on_key(self):
        merged = topn_merge([[("b", 1.0)], [("a", 1.0)]], n=2)
        assert merged == [("a", 1.0), ("b", 1.0)]

    def test_unsorted_inputs_still_merge_to_total_order(self):
        # the documented total order is a pure function of the input
        # *sets*: inputs whose tie order was perturbed (e.g. by a node
        # mapping local oids onto central oids) merge identically
        shuffled = topn_merge([[(3, 1.0), (1, 1.0)], [(2, 1.0)]], n=3)
        sorted_in = topn_merge([[(1, 1.0), (3, 1.0)], [(2, 1.0)]], n=3)
        assert shuffled == sorted_in == [(1, 1.0), (2, 1.0), (3, 1.0)]

    def test_one_ulp_scores_do_not_flip_ties(self):
        a = 0.1 + 0.2           # 0.30000000000000004
        b = 0.3
        merged = topn_merge([[(2, a)], [(1, b)]], n=2)
        assert [key for key, _ in merged] == [1, 2]

    def test_empty_inputs(self):
        assert topn_merge([], n=5) == []
        assert topn_merge([[], []], n=5) == []
