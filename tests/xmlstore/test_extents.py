"""Extent recording in the bulkloader."""

import pytest

from repro.monetdb.catalog import Catalog
from repro.xmlstore.model import element
from repro.xmlstore.pathsummary import PathSummary
from repro.xmlstore.shredder import BulkLoader


@pytest.fixture
def loaded():
    catalog = Catalog()
    summary = PathSummary()
    loader = BulkLoader(catalog, summary, record_extents=True)
    doc = element("a", None,
                  element("b", None, "x",
                          element("d")),
                  element("c"))
    root = loader.load_tree(doc)
    return catalog, root


def _extent(catalog, path, oid):
    return (catalog.get(f"{path}[start]").find(oid),
            catalog.get(f"{path}[end]").find(oid))


class TestExtents:
    def test_every_element_has_an_extent(self, loaded):
        catalog, root = loaded
        for path in ("a", "a/b", "a/b/d", "a/c"):
            assert f"{path}[start]" in catalog
            assert f"{path}[end]" in catalog

    def test_start_precedes_end(self, loaded):
        catalog, root = loaded
        start, end = _extent(catalog, "a", root)
        assert start < end

    def test_children_nest_inside_parents(self, loaded):
        catalog, root = loaded
        root_start, root_end = _extent(catalog, "a", root)
        b_oid = catalog.get("a/b").tail[0]
        b_start, b_end = _extent(catalog, "a/b", b_oid)
        d_oid = catalog.get("a/b/d").tail[0]
        d_start, d_end = _extent(catalog, "a/b/d", d_oid)
        assert root_start < b_start < b_end < root_end
        assert b_start < d_start < d_end < b_end

    def test_siblings_do_not_overlap(self, loaded):
        catalog, root = loaded
        b_oid = catalog.get("a/b").tail[0]
        c_oid = catalog.get("a/c").tail[0]
        _, b_end = _extent(catalog, "a/b", b_oid)
        c_start, _ = _extent(catalog, "a/c", c_oid)
        assert b_end < c_start

    def test_containment_by_extent_comparison(self, loaded):
        """The paper's purpose: containment without edge walking."""
        catalog, root = loaded
        d_oid = catalog.get("a/b/d").tail[0]
        c_oid = catalog.get("a/c").tail[0]
        b_oid = catalog.get("a/b").tail[0]
        b_start, b_end = _extent(catalog, "a/b", b_oid)
        d_start, d_end = _extent(catalog, "a/b/d", d_oid)
        c_start, c_end = _extent(catalog, "a/c", c_oid)
        assert b_start < d_start and d_end < b_end       # d inside b
        assert not (b_start < c_start and c_end < b_end)  # c outside b

    def test_default_loader_records_no_extents(self):
        catalog = Catalog()
        loader = BulkLoader(catalog, PathSummary())
        loader.load_tree(element("a", None, element("b")))
        assert "a[start]" not in catalog

    def test_positions_continue_across_documents(self):
        catalog = Catalog()
        loader = BulkLoader(catalog, PathSummary(), record_extents=True)
        first = loader.load_tree(element("a"))
        second = loader.load_tree(element("a"))
        starts = catalog.get("a[start]")
        assert starts.find(first) < starts.find(second)
