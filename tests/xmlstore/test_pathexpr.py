"""Path expression parsing and evaluation."""

import pytest

from repro.errors import PathExpressionError
from repro.xmlstore.model import element
from repro.xmlstore.pathexpr import descend, match_paths, parse_path, root_of
from repro.xmlstore.store import XmlStore


@pytest.fixture
def store() -> XmlStore:
    store = XmlStore()
    store.insert("d1", element(
        "site", {"name": "s1"},
        element("page", {"id": "p1"},
                element("title", None, "one"),
                element("section", None,
                        element("title", None, "one.inner"))),
        element("page", {"id": "p2"},
                element("title", None, "two"))))
    store.insert("d2", element(
        "site", {"name": "s2"},
        element("page", {"id": "p3"}, element("title", None, "three"))))
    return store


class TestParse:
    def test_simple_path(self):
        expr = parse_path("/a/b/c")
        assert [step.tag for step in expr.steps] == ["a", "b", "c"]
        assert not expr.text and expr.attribute is None

    def test_descendant_axis(self):
        expr = parse_path("//b")
        assert expr.steps[0].descendant

    def test_attribute_leaf(self):
        expr = parse_path("/a/@k")
        assert expr.attribute == "k"

    def test_text_leaf(self):
        expr = parse_path("/a/text()")
        assert expr.text and expr.steps[-1].tag == "pcdata"

    def test_wildcard(self):
        assert parse_path("/a/*").steps[1].tag == "*"

    @pytest.mark.parametrize("bad", [
        "", "a/b", "/a/@k/b", "/a//@k", "/a/text()/b", "/", "/a/", "/@",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(PathExpressionError):
            parse_path(bad)


class TestMatchPaths:
    def test_absolute_match(self, store):
        nodes = match_paths(store.summary, "/site/page/title")
        assert [node.path for node in nodes] == ["site/page/title"]

    def test_descendant_matches_all_depths(self, store):
        nodes = match_paths(store.summary, "//title")
        assert sorted(node.path for node in nodes) == [
            "site/page/section/title", "site/page/title"]

    def test_wildcard_step(self, store):
        nodes = match_paths(store.summary, "/site/*")
        assert [node.path for node in nodes] == ["site/page"]

    def test_wildcard_skips_pcdata(self, store):
        nodes = match_paths(store.summary, "/site/page/title/*")
        assert nodes == []

    def test_no_match(self, store):
        assert match_paths(store.summary, "/nope") == []


class TestEvaluate:
    def test_node_result_spans_documents(self, store):
        result = store.query("/site/page")
        assert len(result.oids) == 3

    def test_text_values(self, store):
        values = store.query("/site/page/title/text()").value_list()
        assert sorted(values) == ["one", "three", "two"]

    def test_descendant_text(self, store):
        values = store.query("//title/text()").value_list()
        assert sorted(values) == ["one", "one.inner", "three", "two"]

    def test_attribute_values(self, store):
        assert sorted(store.query("/site/page/@id").value_list()) \
            == ["p1", "p2", "p3"]

    def test_root_attribute(self, store):
        assert sorted(store.query("/site/@name").value_list()) \
            == ["s1", "s2"]

    def test_missing_attribute_is_empty(self, store):
        assert store.query("/site/page/@nope").value_list() == []


class TestNavigation:
    def test_root_of_climbs_to_document_root(self, store):
        result = store.query("/site/page/section/title")
        node = result.paths[0]
        root = root_of(store.catalog, node, result.oids[0])
        assert store.document_key(root) == "d1"

    def test_descend_correlates_ancestors(self, store):
        pages = store.query("/site/page")
        page_node = pages.paths[0]
        pairs = descend(store.catalog, page_node, pages.oids,
                        "title/pcdata")
        assert len(pairs) == 3
        ancestors = {pair[0] for pair in pairs}
        assert ancestors <= set(pages.oids)

    def test_descend_missing_path_is_empty(self, store):
        pages = store.query("/site/page")
        assert descend(store.catalog, pages.paths[0], pages.oids,
                       "nothing/here") == []

    def test_descend_rejects_empty_step(self, store):
        pages = store.query("/site/page")
        with pytest.raises(PathExpressionError):
            descend(store.catalog, pages.paths[0], pages.oids,
                    "title//pcdata")
