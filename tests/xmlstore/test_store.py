"""XmlStore facade: documents, deletion, incremental replacement."""

import pytest

from repro.errors import XmlStoreError
from repro.xmlstore.model import element, isomorphic
from repro.xmlstore.shredder import SYS_RELATION
from repro.xmlstore.store import XmlStore


def _doc(n: int):
    return element("doc", {"id": str(n)},
                   element("title", None, f"title {n}"),
                   element("body", None,
                           element("p", None, f"text {n} alpha"),
                           element("p", None, f"text {n} beta")))


@pytest.fixture
def store() -> XmlStore:
    store = XmlStore()
    for n in range(3):
        store.insert(f"d{n}", _doc(n))
    return store


class TestRegistry:
    def test_contains_and_len(self, store):
        assert "d0" in store and len(store) == 3

    def test_document_keys_sorted(self, store):
        assert store.document_keys() == ["d0", "d1", "d2"]

    def test_root_oid_and_back(self, store):
        oid = store.root_oid("d1")
        assert store.document_key(oid) == "d1"

    def test_duplicate_insert_raises(self, store):
        with pytest.raises(XmlStoreError):
            store.insert("d0", _doc(0))

    def test_unknown_key_raises(self, store):
        with pytest.raises(XmlStoreError):
            store.root_oid("nope")

    def test_insert_many(self):
        store = XmlStore()
        oids = store.insert_many([("a", _doc(1)), ("b", _doc(2))])
        assert len(oids) == 2 and len(store) == 2


class TestReconstruction:
    def test_each_document_reconstructs(self, store):
        for n in range(3):
            assert isomorphic(store.reconstruct(f"d{n}"), _doc(n))

    def test_insert_from_text(self):
        store = XmlStore()
        store.insert("t", "<a><b>x</b></a>")
        assert store.reconstruct("t").find("b").text() == "x"


class TestDeletion:
    def test_delete_removes_document(self, store):
        store.delete("d1")
        assert "d1" not in store
        with pytest.raises(XmlStoreError):
            store.reconstruct("d1")

    def test_delete_leaves_others_intact(self, store):
        store.delete("d1")
        assert isomorphic(store.reconstruct("d0"), _doc(0))
        assert isomorphic(store.reconstruct("d2"), _doc(2))

    def test_delete_all_empties_relations(self, store):
        for n in range(3):
            store.delete(f"d{n}")
        assert store.catalog.total_buns() == 0

    def test_deleted_root_leaves_sys(self, store):
        before = len(store.catalog.get(SYS_RELATION))
        store.delete("d0")
        assert len(store.catalog.get(SYS_RELATION)) == before - 1


class TestReplace:
    def test_replace_updates_content(self, store):
        updated = _doc(0)
        updated.find("title").children[0].value = "new title"
        store.replace("d0", updated)
        assert store.reconstruct("d0").find("title").text() == "new title"

    def test_replace_changes_query_results(self, store):
        titles = store.query("/doc/title/text()").value_list()
        assert "title 0" in titles
        updated = element("doc", {"id": "0"},
                          element("title", None, "changed"))
        store.replace("d0", updated)
        titles = store.query("/doc/title/text()").value_list()
        assert "title 0" not in titles and "changed" in titles

    def test_replace_can_change_structure(self, store):
        new_shape = element("doc", {"id": "0"},
                            element("summary", None, "short"))
        store.replace("d0", new_shape)
        assert isomorphic(store.reconstruct("d0"), new_shape)


class TestQueries:
    def test_query_spans_documents(self, store):
        values = store.query("/doc/body/p/text()").value_list()
        assert len(values) == 6

    def test_document_of_maps_back(self, store):
        result = store.query("/doc/title")
        node = result.paths[0]
        keys = {store.document_of(node, oid) for oid in result.oids}
        assert keys == {"d0", "d1", "d2"}
