"""XmlStore facade: documents, deletion, incremental replacement."""

import pytest

from repro.errors import XmlStoreError
from repro.xmlstore.model import element, isomorphic
from repro.xmlstore.shredder import SYS_RELATION
from repro.xmlstore.store import XmlStore


def _doc(n: int):
    return element("doc", {"id": str(n)},
                   element("title", None, f"title {n}"),
                   element("body", None,
                           element("p", None, f"text {n} alpha"),
                           element("p", None, f"text {n} beta")))


@pytest.fixture
def store() -> XmlStore:
    store = XmlStore()
    for n in range(3):
        store.insert(f"d{n}", _doc(n))
    return store


class TestRegistry:
    def test_contains_and_len(self, store):
        assert "d0" in store and len(store) == 3

    def test_document_keys_sorted(self, store):
        assert store.document_keys() == ["d0", "d1", "d2"]

    def test_root_oid_and_back(self, store):
        oid = store.root_oid("d1")
        assert store.document_key(oid) == "d1"

    def test_duplicate_insert_raises(self, store):
        with pytest.raises(XmlStoreError):
            store.insert("d0", _doc(0))

    def test_unknown_key_raises(self, store):
        with pytest.raises(XmlStoreError):
            store.root_oid("nope")

    def test_insert_many(self):
        store = XmlStore()
        oids = store.insert_many([("a", _doc(1)), ("b", _doc(2))])
        assert len(oids) == 2 and len(store) == 2


class TestReconstruction:
    def test_each_document_reconstructs(self, store):
        for n in range(3):
            assert isomorphic(store.reconstruct(f"d{n}"), _doc(n))

    def test_insert_from_text(self):
        store = XmlStore()
        store.insert("t", "<a><b>x</b></a>")
        assert store.reconstruct("t").find("b").text() == "x"


class TestDeletion:
    def test_delete_removes_document(self, store):
        store.delete("d1")
        assert "d1" not in store
        with pytest.raises(XmlStoreError):
            store.reconstruct("d1")

    def test_delete_leaves_others_intact(self, store):
        store.delete("d1")
        assert isomorphic(store.reconstruct("d0"), _doc(0))
        assert isomorphic(store.reconstruct("d2"), _doc(2))

    def test_delete_all_empties_relations(self, store):
        for n in range(3):
            store.delete(f"d{n}")
        assert store.catalog.total_buns() == 0

    def test_deleted_root_leaves_sys(self, store):
        before = len(store.catalog.get(SYS_RELATION))
        store.delete("d0")
        assert len(store.catalog.get(SYS_RELATION)) == before - 1


class TestReplace:
    def test_replace_updates_content(self, store):
        updated = _doc(0)
        updated.find("title").children[0].value = "new title"
        store.replace("d0", updated)
        assert store.reconstruct("d0").find("title").text() == "new title"

    def test_replace_changes_query_results(self, store):
        titles = store.query("/doc/title/text()").value_list()
        assert "title 0" in titles
        updated = element("doc", {"id": "0"},
                          element("title", None, "changed"))
        store.replace("d0", updated)
        titles = store.query("/doc/title/text()").value_list()
        assert "title 0" not in titles and "changed" in titles

    def test_replace_can_change_structure(self, store):
        new_shape = element("doc", {"id": "0"},
                            element("summary", None, "short"))
        store.replace("d0", new_shape)
        assert isomorphic(store.reconstruct("d0"), new_shape)

    def test_replace_from_text(self, store):
        store.replace("d0", "<doc id='0'><title>from text</title></doc>")
        assert store.reconstruct("d0").find("title").text() == "from text"

    def test_replace_unknown_key_raises(self, store):
        with pytest.raises(XmlStoreError):
            store.replace("nope", _doc(9))


class TestReplaceIsAllOrNothing:
    """Regression: replace used to delete the old document first, so a
    failing insert lost it.  A failing replace must leave the store
    byte-identical."""

    def snapshot_bytes(self, store, tmp_path):
        from repro.monetdb.persistence import save_catalog
        target = tmp_path / "state.jsonl"
        save_catalog(store.catalog, target)
        return target.read_bytes()

    def test_malformed_replacement_keeps_old_document(self, store,
                                                      tmp_path):
        from repro.errors import XmlSyntaxError
        before = self.snapshot_bytes(store, tmp_path)
        with pytest.raises(XmlSyntaxError):
            store.replace("d0", "<doc><broken")
        assert self.snapshot_bytes(store, tmp_path) == before
        assert isomorphic(store.reconstruct("d0"), _doc(0))

    def test_failed_replace_does_not_bump_generation(self, store):
        from repro.errors import XmlSyntaxError
        generation = store.generation
        with pytest.raises(XmlSyntaxError):
            store.replace("d0", "<doc><broken")
        assert store.generation == generation

    def test_failed_replace_keeps_store_queryable(self, store):
        from repro.errors import XmlSyntaxError
        with pytest.raises(XmlSyntaxError):
            store.replace("d1", "not xml at <all")
        titles = store.query("/doc/title/text()").value_list()
        assert "title 1" in titles

    def test_unknown_key_does_not_validate_first(self, store, tmp_path):
        # the key check precedes validation: a bad key raises
        # XmlStoreError even when the replacement is also malformed
        before = self.snapshot_bytes(store, tmp_path)
        with pytest.raises(XmlStoreError):
            store.replace("nope", "<doc><broken")
        assert self.snapshot_bytes(store, tmp_path) == before


class TestQueries:
    def test_query_spans_documents(self, store):
        values = store.query("/doc/body/p/text()").value_list()
        assert len(values) == 6

    def test_document_of_maps_back(self, store):
        result = store.query("/doc/title")
        node = result.paths[0]
        keys = {store.document_of(node, oid) for oid in result.oids}
        assert keys == {"d0", "d1", "d2"}
