"""Event-based XML tokenizer and DOM-style parser."""

import pytest

from repro.errors import XmlSyntaxError
from repro.xmlstore.sax import (Characters, EndElement, StartElement,
                                iter_events, parse_document)


class TestEvents:
    def test_simple_element(self):
        events = list(iter_events("<a>hi</a>"))
        assert events == [StartElement("a", ()), Characters("hi"),
                          EndElement("a")]

    def test_attributes_in_order(self):
        (start,) = [e for e in iter_events('<a x="1" y="2"/>')
                    if isinstance(e, StartElement)]
        assert start.attributes == (("x", "1"), ("y", "2"))

    def test_selfclosing_emits_end(self):
        events = list(iter_events("<a/>"))
        assert events == [StartElement("a", (), selfclosing=True),
                          EndElement("a")]

    def test_whitespace_only_text_suppressed(self):
        events = list(iter_events("<a>\n  <b/>\n</a>"))
        assert not any(isinstance(e, Characters) for e in events)

    def test_entity_decoding_in_text(self):
        events = list(iter_events("<a>x &amp; y &lt;z&gt;</a>"))
        assert events[1] == Characters("x & y <z>")

    def test_entity_decoding_in_attribute(self):
        (start,) = [e for e in iter_events('<a v="&quot;q&quot;"/>')
                    if isinstance(e, StartElement)]
        assert start.attributes == (("v", '"q"'),)

    def test_numeric_character_references(self):
        events = list(iter_events("<a>&#65;&#x42;</a>"))
        assert events[1] == Characters("AB")

    def test_comments_skipped(self):
        events = list(iter_events("<a><!-- note --><b/></a>"))
        assert [type(e).__name__ for e in events] \
            == ["StartElement", "StartElement", "EndElement", "EndElement"]

    def test_declaration_skipped(self):
        events = list(iter_events('<?xml version="1.0"?><a/>'))
        assert isinstance(events[0], StartElement)

    def test_cdata_section(self):
        events = list(iter_events("<a><![CDATA[<raw>]]></a>"))
        assert events[1] == Characters("<raw>")

    def test_unknown_entity_raises(self):
        with pytest.raises(XmlSyntaxError):
            list(iter_events("<a>&nope;</a>"))

    def test_unterminated_tag_raises(self):
        with pytest.raises(XmlSyntaxError):
            list(iter_events("<a foo"))

    def test_unquoted_attribute_raises(self):
        with pytest.raises(XmlSyntaxError):
            list(iter_events("<a x=1/>"))


class TestParseDocument:
    def test_builds_tree(self):
        root = parse_document('<a k="v"><b>t</b><c/></a>')
        assert root.tag == "a"
        assert root.attributes == {"k": "v"}
        assert root.find("b").text() == "t"
        assert root.find("c") is not None

    def test_mismatched_end_tag_raises(self):
        with pytest.raises(XmlSyntaxError):
            parse_document("<a><b></a></b>")

    def test_unclosed_element_raises(self):
        with pytest.raises(XmlSyntaxError):
            parse_document("<a><b>")

    def test_unmatched_end_raises(self):
        with pytest.raises(XmlSyntaxError):
            parse_document("<a/></b>")

    def test_multiple_roots_raise(self):
        with pytest.raises(XmlSyntaxError):
            parse_document("<a/><b/>")

    def test_empty_document_raises(self):
        with pytest.raises(XmlSyntaxError):
            parse_document("   ")

    def test_text_outside_root_raises(self):
        with pytest.raises(XmlSyntaxError):
            parse_document("stray<a/>")

    def test_mixed_content_preserved(self):
        root = parse_document("<a>x<b/>y</a>")
        kinds = [type(child).__name__ for child in root.children]
        assert kinds == ["Text", "Element", "Text"]
