"""Document tree model."""

from repro.xmlstore.model import Element, Text, element, isomorphic


class TestConstruction:
    def test_element_builder_with_text(self):
        node = element("a", {"x": "1"}, element("b"), "hi")
        assert node.tag == "a"
        assert node.attributes == {"x": "1"}
        assert [type(child).__name__ for child in node.children] \
            == ["Element", "Text"]

    def test_add_element_returns_child(self):
        root = Element("r")
        child = root.add_element("c", {"k": "v"})
        assert child.tag == "c" and root.children == [child]

    def test_add_text(self):
        root = Element("r")
        root.add_text("body")
        assert root.text() == "body"


class TestTraversal:
    def test_iter_is_document_order(self):
        root = element("a", None, element("b", None, "t"), element("c"))
        names = [node.tag if isinstance(node, Element) else "#text"
                 for node in root.iter()]
        assert names == ["a", "b", "#text", "c"]

    def test_find_and_find_all(self):
        root = element("a", None, element("b"), element("b"), element("c"))
        assert root.find("b") is root.children[0]
        assert len(root.find_all("b")) == 2
        assert root.find("zzz") is None

    def test_element_children_skips_text(self):
        root = element("a", None, "x", element("b"))
        assert [child.tag for child in root.element_children()] == ["b"]

    def test_deep_text(self):
        root = element("a", None, "x", element("b", None, "y"))
        assert root.deep_text() == "xy"

    def test_size_and_height(self):
        root = element("a", None, element("b", None, element("c")), "t")
        assert root.size() == 4
        assert root.height() == 3

    def test_height_of_leaf(self):
        assert Element("a").height() == 1


class TestIsomorphism:
    def test_equal_trees(self):
        left = element("a", {"k": "v"}, element("b", None, "t"))
        right = element("a", {"k": "v"}, element("b", None, "t"))
        assert isomorphic(left, right)

    def test_tag_mismatch(self):
        assert not isomorphic(element("a"), element("b"))

    def test_attribute_mismatch(self):
        assert not isomorphic(element("a", {"k": "v"}),
                              element("a", {"k": "w"}))

    def test_child_order_matters(self):
        left = element("a", None, element("b"), element("c"))
        right = element("a", None, element("c"), element("b"))
        assert not isomorphic(left, right)

    def test_text_vs_element(self):
        assert not isomorphic(Text("x"), Element("x"))

    def test_text_values(self):
        assert isomorphic(Text("x"), Text("x"))
        assert not isomorphic(Text("x"), Text("y"))

    def test_child_count_matters(self):
        assert not isomorphic(element("a", None, element("b")),
                              element("a"))
