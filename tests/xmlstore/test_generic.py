"""The generic edge-table baseline must agree with the path store."""

import pytest

from repro.xmlstore.generic import GenericStore
from repro.xmlstore.model import element
from repro.xmlstore.store import XmlStore


def _sample_docs():
    return [
        element("site", {"name": "s1"},
                element("page", {"id": "p1"},
                        element("title", None, "one"),
                        element("body", None, "alpha beta")),
                element("page", {"id": "p2"},
                        element("title", None, "two"))),
        element("site", {"name": "s2"},
                element("page", {"id": "p3"},
                        element("title", None, "three"))),
    ]


@pytest.fixture
def stores():
    path_store = XmlStore()
    generic = GenericStore()
    for index, doc in enumerate(_sample_docs()):
        path_store.insert(f"d{index}", doc)
        generic.insert_tree(doc)
    return path_store, generic


class TestAgreement:
    @pytest.mark.parametrize("expr", [
        "/site/page/title/text()",
        "/site/page/@id",
        "//title/text()",
        "/site/@name",
        "/site/*/title/text()",
    ])
    def test_same_values(self, stores, expr):
        path_store, generic = stores
        expected = sorted(path_store.query(expr).value_list())
        _, values = generic.evaluate(expr)
        assert sorted(v for _, v in values) == expected

    def test_same_node_counts(self, stores):
        path_store, generic = stores
        assert len(path_store.query("/site/page").oids) \
            == len(generic.evaluate("/site/page")[0])

    def test_missing_path_empty_both(self, stores):
        path_store, generic = stores
        assert path_store.query("/site/nope").oids == []
        assert generic.evaluate("/site/nope") == ([], [])


class TestCostModel:
    def test_generic_touches_more_tuples(self, stores):
        """E5's shape: the edge-table mapping scans label/edge heaps that
        grow with the whole collection, the path store only the target
        path's relations."""
        path_store, generic = stores
        path_store.server.reset_accounting()
        generic.tuples_touched = 0
        path_store.query("/site/page/title/text()")
        generic.evaluate("/site/page/title/text()")
        assert generic.tuples_touched > path_store.server.tuples_touched
