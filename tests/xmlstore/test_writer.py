"""Serialisation and escaping."""

from repro.xmlstore.model import element, isomorphic
from repro.xmlstore.sax import parse_document
from repro.xmlstore.writer import escape_attribute, escape_text, serialize


class TestEscaping:
    def test_text_escapes_markup(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_attribute_escapes_quotes_and_whitespace(self):
        assert escape_attribute('a"b\nc') == "a&quot;b&#10;c"


class TestSerialize:
    def test_empty_element_selfcloses(self):
        assert serialize(element("a")) == "<a/>"

    def test_attributes_rendered(self):
        assert serialize(element("a", {"x": "1"})) == '<a x="1"/>'

    def test_text_content(self):
        assert serialize(element("a", None, "hello")) == "<a>hello</a>"

    def test_declaration(self):
        out = serialize(element("a"), declaration=True)
        assert out.startswith('<?xml version="1.0"')

    def test_round_trip_plain(self):
        doc = element("a", {"k": "v&w"},
                      element("b", None, "x<y"),
                      element("c"))
        assert isomorphic(parse_document(serialize(doc)), doc)

    def test_round_trip_pretty(self):
        doc = element("a", None,
                      element("b", None, "text body"),
                      element("c", {"k": "v"}, element("d")))
        assert isomorphic(parse_document(serialize(doc, pretty=True)), doc)

    def test_pretty_indents(self):
        doc = element("a", None, element("b", None, element("c")))
        lines = serialize(doc, pretty=True).splitlines()
        assert lines[1].startswith("  <b>")
        assert lines[2].startswith("    <c/>")

    def test_pretty_keeps_text_inline(self):
        doc = element("a", None, element("b", None, "  keep  "))
        assert "<b>  keep  </b>" in serialize(doc, pretty=True)
