"""Property-based tests: the Monet transform's core guarantees.

Random document trees are shredded and reconstructed; serialisation and
parsing round-trip; deletion restores the store exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmlstore.model import Element, element, isomorphic
from repro.xmlstore.sax import parse_document
from repro.xmlstore.store import XmlStore
from repro.xmlstore.writer import serialize

_tags = st.sampled_from(["a", "b", "c", "item", "node"])
_attr_names = st.sampled_from(["k", "id", "href"])
# texts avoid pure whitespace (the tokenizer suppresses it by design)
_texts = st.text(
    alphabet=st.characters(codec="utf-8",
                           blacklist_categories=("Cs", "Cc")),
    min_size=1, max_size=12).filter(lambda s: s.strip())


@st.composite
def _documents(draw, depth: int = 3) -> Element:
    tag = draw(_tags)
    attr_count = draw(st.integers(0, 2))
    attributes = {}
    for _ in range(attr_count):
        attributes[draw(_attr_names)] = draw(_texts)
    node = Element(tag, attributes)
    if depth > 0:
        for _ in range(draw(st.integers(0, 3))):
            if draw(st.booleans()):
                node.children.append(draw(_documents(depth=depth - 1)))
            else:
                # adjacent text nodes are indistinguishable after
                # serialisation (XML merges them); never generate two in
                # a row, like any real document writer
                from repro.xmlstore.model import Text
                if node.children and isinstance(node.children[-1], Text):
                    continue
                node.add_text(draw(_texts))
    return node


@settings(max_examples=60, deadline=None)
@given(_documents())
def test_shred_reconstruct_is_isomorphic(doc):
    store = XmlStore()
    store.insert("doc", doc)
    assert isomorphic(store.reconstruct("doc"), doc)


@settings(max_examples=60, deadline=None)
@given(_documents())
def test_serialize_parse_round_trip(doc):
    assert isomorphic(parse_document(serialize(doc)), doc)


@settings(max_examples=30, deadline=None)
@given(st.lists(_documents(), min_size=1, max_size=4))
def test_many_documents_reconstruct_independently(docs):
    store = XmlStore()
    for index, doc in enumerate(docs):
        store.insert(f"d{index}", doc)
    for index, doc in enumerate(docs):
        assert isomorphic(store.reconstruct(f"d{index}"), doc)


@settings(max_examples=30, deadline=None)
@given(_documents(), _documents())
def test_delete_restores_bun_counts(first, second):
    store = XmlStore()
    store.insert("keep", first)
    buns_before = store.catalog.total_buns()
    store.insert("gone", second)
    store.delete("gone")
    assert store.catalog.total_buns() == buns_before
    assert isomorphic(store.reconstruct("keep"), first)


@settings(max_examples=40, deadline=None)
@given(_documents())
def test_bulkload_stack_depth_bounded_by_height(doc):
    store = XmlStore()
    store.insert("doc", doc)
    # O(height) memory claim: the loader's peak stack never exceeds the
    # document height (+1 frame while a pcdata node is being entered)
    assert store.stats.peak_stack_depth <= doc.height() + 1


@settings(max_examples=40, deadline=None)
@given(_documents())
def test_node_count_matches_tree_size(doc):
    store = XmlStore()
    store.insert("doc", doc)
    assert store.stats.nodes == doc.size()


def test_example_roundtrip_with_namespaced_entities():
    doc = element("a", {"q": 'say "hi" & <bye>'},
                  element("b", None, "x & y < z"))
    store = XmlStore()
    store.insert("d", doc)
    assert isomorphic(store.reconstruct("d"), doc)
    assert isomorphic(parse_document(serialize(doc)), doc)
