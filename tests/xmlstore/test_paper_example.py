"""E3: the paper's own example (Figures 9-12).

The ``<image>`` document of Fig 9 must shred into the relation families
of Fig 12 — one relation per root-to-node path — and reconstruct
isomorphically (Definition 1's invertibility).
"""

import pytest

from repro.xmlstore.model import element, isomorphic
from repro.xmlstore.store import XmlStore

PAPER_DOCUMENT = """<image key="18934" source="http://www.ex.org/seles.jpg">\
<date> 999010530 </date><colors>\
<histogram> 0.399 0.277 0.344 </histogram>\
<saturation> 0.390 </saturation>\
<version> 0.8 </version>\
</colors></image>"""


@pytest.fixture
def store() -> XmlStore:
    store = XmlStore()
    store.insert("fig9", PAPER_DOCUMENT)
    return store


class TestFig12SchemaTree:
    def test_path_summary_matches_figure(self, store):
        # Fig 12 names R1../image, R2../image[key], R3../image[source],
        # R4../image/date, R5../image/date/PCDATA, ... — our path summary
        # must contain exactly the element/cdata paths of that tree.
        assert store.paths() == [
            "image",
            "image/colors",
            "image/colors/histogram",
            "image/colors/histogram/pcdata",
            "image/colors/saturation",
            "image/colors/saturation/pcdata",
            "image/colors/version",
            "image/colors/version/pcdata",
            "image/date",
            "image/date/pcdata",
        ]

    def test_attribute_relations_exist(self, store):
        assert store.catalog.get_or_none("image[key]") is not None
        assert store.catalog.get_or_none("image[source]") is not None

    def test_attribute_values(self, store):
        assert store.query("/image/@key").value_list() == ["18934"]
        assert store.query("/image/@source").value_list() \
            == ["http://www.ex.org/seles.jpg"]

    def test_cdata_values(self, store):
        assert store.query("/image/date/text()").value_list() \
            == [" 999010530 "]
        assert store.query("/image/colors/saturation/text()").value_list() \
            == [" 0.390 "]

    def test_rank_relations_keep_topology(self, store):
        ranks = store.catalog.get("image/colors[rank]")
        # colors is the second child of image
        assert list(ranks.tail) == [1]

    def test_sys_relation_records_root(self, store):
        sys_relation = store.catalog.get("sys")
        assert list(sys_relation.tail) == ["image"]


class TestInverseMapping:
    def test_reconstruction_is_isomorphic(self, store):
        original = store.parse(PAPER_DOCUMENT)
        assert isomorphic(store.reconstruct("fig9"), original)

    def test_naive_insert_sequence_length(self, store):
        # the paper's naive bulkload issues one insert per association;
        # Fig 9's document: 1 sys + 2 attrs + 9 edges (5 element + 4
        # pcdata) + 9 ranks + 4 cdata values
        assert store.stats.inserts == 1 + 2 + 9 + 9 + 4

    def test_nodes_counted(self, store):
        # 6 elements + 4 cdata nodes
        assert store.stats.nodes == 10


class TestSemanticClustering:
    def test_one_relation_per_path(self, store):
        # "we use path to group semantically related associations":
        # adding a second image document grows relations, not the schema
        relations_before = len(store.catalog)
        store.insert("fig9b", PAPER_DOCUMENT.replace("18934", "42"))
        assert len(store.catalog) == relations_before

    def test_path_query_touches_only_its_relation(self, store):
        store.server.reset_accounting()
        store.query("/image/colors/saturation/text()")
        saturation = store.catalog.get(
            "image/colors/saturation/pcdata[cdata]")
        # only the cdata relation of that exact path is scanned
        assert store.server.tuples_touched == len(saturation)

    def test_no_nulls_needed(self, store):
        # a document missing <colors> coexists without NULL padding
        small = element("image", {"key": "1"},
                        element("date", None, "123"))
        store.insert("small", small)
        assert isomorphic(store.reconstruct("small"), small)
        assert store.query("/image/@key").value_list() == ["18934", "1"]
