"""Simulated server and HTML parser."""

import pytest

from repro.errors import WebError
from repro.web.html import (extract_links, extract_text, find_by_class,
                            find_by_id, parse_html)
from repro.web.site import SimulatedWebServer


class TestServer:
    def test_absolute_resolution(self):
        server = SimulatedWebServer("http://ex.org")
        assert server.absolute("a/b.html") == "http://ex.org/a/b.html"
        assert server.absolute("/a.html") == "http://ex.org/a.html"
        assert server.absolute("http://other/x") == "http://other/x"

    def test_pages_and_media(self):
        server = SimulatedWebServer()
        url = server.add_page("p.html", "<html><body>hi</body></html>")
        server.add_media("v.mpg", ("video", "mpeg"), payload=123)
        assert url in server
        assert server.get("p.html").body.startswith("<html>")
        assert server.get("v.mpg").payload == 123

    def test_head_returns_mime_headers(self):
        server = SimulatedWebServer()
        server.add_media("v.mpg", ("video", "mpeg"), last_modified=42)
        headers = server.head("v.mpg")
        assert headers["Content-Type"] == "video/mpeg"
        assert headers["Last-Modified"] == "42"

    def test_touch_updates_stamp(self):
        server = SimulatedWebServer()
        server.add_page("p.html", "<html></html>", last_modified=1)
        server.touch("p.html", 9)
        assert server.head("p.html")["Last-Modified"] == "9"

    def test_missing_resource_raises(self):
        with pytest.raises(WebError):
            SimulatedWebServer().get("nope.html")

    def test_request_counter(self):
        server = SimulatedWebServer()
        server.add_page("p.html", "<html></html>")
        server.get("p.html")
        server.head("p.html")
        assert server.requests == 2


class TestHtmlParser:
    def test_basic_structure(self):
        page = parse_html("<html><body><h1>T</h1><p>text</p></body></html>")
        assert page.tag == "html"
        assert extract_text(page) == "T text"

    def test_void_elements_do_not_nest(self):
        page = parse_html("<html><body><img src='a.jpg'><p>after</p>"
                          "</body></html>")
        body = page.find("body")
        assert [c.tag for c in body.element_children()] == ["img", "p"]

    def test_case_insensitive_tags(self):
        page = parse_html("<HTML><BODY><H1>x</H1></BODY></HTML>")
        assert page.find("body") is not None

    def test_unquoted_attributes(self):
        page = parse_html("<html><a href=/x.html>link</a></html>")
        anchor = page.find("a")
        assert anchor.attributes["href"] == "/x.html"

    def test_autoclose_paragraphs(self):
        page = parse_html("<html><p>one<p>two</html>")
        assert len(page.find_all("p")) == 2
        assert page.find_all("p")[0].text() == "one"

    def test_mismatched_close_forgiven(self):
        page = parse_html("<html><div><b>x</div></html>")
        assert extract_text(page) == "x"

    def test_comments_and_doctype_skipped(self):
        page = parse_html("<!DOCTYPE html><!-- c --><html><p>x</p></html>")
        assert extract_text(page) == "x"

    def test_entities_decoded(self):
        page = parse_html("<html><p>a &amp; b</p></html>")
        assert extract_text(page) == "a & b"

    def test_extract_links_href_and_src(self):
        page = parse_html('<html><a href="/a.html">x</a>'
                          '<img src="/i.jpg"></html>')
        assert extract_links(page) == ["/a.html", "/i.jpg"]

    def test_find_by_id_and_class(self):
        page = parse_html('<html><div id="history">h</div>'
                          '<td class="gender x">f</td></html>')
        assert find_by_id(page, "history").text() == "h"
        assert find_by_class(page, "gender")[0].text() == "f"
        assert find_by_id(page, "none") is None
