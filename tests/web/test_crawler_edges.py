"""Crawler edge cases: cycles, dead links, domain fences."""

from repro.web.crawler import crawl
from repro.web.site import SimulatedWebServer


def _page(*links, body="text"):
    anchors = "".join(f'<a href="{link}">x</a>' for link in links)
    return f"<html><body><p>{body}</p>{anchors}</body></html>"


class TestCycles:
    def test_cyclic_links_terminate(self):
        server = SimulatedWebServer("http://cyc.example")
        server.add_page("index.html", _page("/a.html"))
        server.add_page("a.html", _page("/b.html"))
        server.add_page("b.html", _page("/a.html", "/index.html"))
        result = crawl(server)
        assert len(result.pages) == 3

    def test_self_link(self):
        server = SimulatedWebServer("http://cyc.example")
        server.add_page("index.html", _page("/index.html"))
        result = crawl(server)
        assert len(result.pages) == 1


class TestDeadLinksAndFences:
    def test_dead_links_recorded_not_fatal(self):
        server = SimulatedWebServer("http://d.example")
        server.add_page("index.html", _page("/gone.html", "/a.html"))
        server.add_page("a.html", _page())
        result = crawl(server)
        assert result.dead_links == ["http://d.example/gone.html"]
        assert len(result.pages) == 2

    def test_external_links_not_followed(self):
        server = SimulatedWebServer("http://in.example")
        server.add_page("index.html",
                        _page("http://out.example/else.html", "/a.html"))
        server.add_page("a.html", _page())
        result = crawl(server)
        assert len(result.pages) == 2
        assert all(url.startswith("http://in.example")
                   for url in result.visited)

    def test_missing_seed_is_a_dead_link(self):
        server = SimulatedWebServer("http://e.example")
        result = crawl(server, seed="nowhere.html")
        assert result.pages == []
        assert result.dead_links == ["http://e.example/nowhere.html"]


class TestMediaSeparation:
    def test_media_resources_not_parsed_as_html(self):
        server = SimulatedWebServer("http://m.example")
        server.add_page("index.html", _page("/v.mpg", "/i.jpg", "/a.html"))
        server.add_page("a.html", _page())
        server.add_media("v.mpg", ("video", "mpeg"), payload="raw")
        server.add_media("i.jpg", ("image", "jpeg"), payload="raw")
        result = crawl(server)
        assert len(result.pages) == 2
        assert sorted(r.mime for r in result.media) \
            == [("image", "jpeg"), ("video", "mpeg")]

    def test_media_visited_once_despite_multiple_links(self):
        server = SimulatedWebServer("http://m.example")
        server.add_page("index.html", _page("/v.mpg", "/a.html"))
        server.add_page("a.html", _page("/v.mpg"))
        server.add_media("v.mpg", ("video", "mpeg"))
        result = crawl(server)
        assert len(result.media) == 1
