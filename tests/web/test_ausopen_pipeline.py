"""Site generator, crawler and re-engineering: the conceptual pipeline."""

import pytest

from repro.web.ausopen import build_ausopen_site
from repro.web.crawler import crawl
from repro.web.reengineer import reengineer_site
from repro.webspace.retriever import retrieve_objects
from repro.webspace.schema import australian_open_schema


@pytest.fixture(scope="module")
def site():
    return build_ausopen_site(players=12, articles=9, videos=4,
                              frames_per_shot=6)


@pytest.fixture(scope="module")
def crawled(site):
    server, _ = site
    return crawl(server)


@pytest.fixture(scope="module")
def graph(site, crawled):
    _, truth = site
    schema = australian_open_schema()
    documents = reengineer_site(schema, crawled.pages)
    return retrieve_objects(schema, documents), truth


class TestSiteGenerator:
    def test_deterministic(self):
        first_server, first_truth = build_ausopen_site(players=6,
                                                       videos=2,
                                                       frames_per_shot=4)
        second_server, second_truth = build_ausopen_site(players=6,
                                                         videos=2,
                                                         frames_per_shot=4)
        assert first_server.urls() == second_server.urls()
        assert [p.name for p in first_truth.players] \
            == [p.name for p in second_truth.players]

    def test_seles_is_the_guaranteed_witness(self, site):
        _, truth = site
        seles = truth.player("monica-seles")
        assert seles.gender == "female"
        assert seles.plays == "left"
        assert seles.is_champion
        assert ("monica-seles", "v0") in truth.mixed_query_answer()

    def test_video_payloads_have_netplay_truth(self, site):
        server, truth = site
        for video in truth.videos:
            payload = server.get(video.media_path).payload
            assert bool(payload.truth.netplay_shots) == video.netplay

    def test_champion_history_mentions_winner(self, site):
        _, truth = site
        for player in truth.players:
            assert ("Winner" in player.history) == player.is_champion


class TestCrawler:
    def test_no_dead_links(self, crawled):
        assert crawled.dead_links == []

    def test_finds_all_pages_and_media(self, site, crawled):
        server, truth = site
        html_pages = (len(truth.players) + len(truth.articles)
                      + len(truth.videos) + 4)  # 3 listings + index
        assert len(crawled.pages) == html_pages
        assert len(crawled.media) == len(server) - html_pages

    def test_stays_inside_domain(self, site, crawled):
        server, _ = site
        assert all(url.startswith(server.domain)
                   for url in crawled.visited)

    def test_max_pages_cap(self, site):
        server, _ = site
        partial = crawl(server, max_pages=3)
        assert len(partial.pages) == 3


class TestReengineering:
    def test_every_player_reconstructed(self, graph):
        object_graph, truth = graph
        for player in truth.players:
            obj = object_graph.object("Player", player.key)
            assert obj.get("name") == player.name
            assert obj.get("gender") == player.gender
            assert obj.get("plays") == player.plays
            assert obj.get("country") == player.country
            assert obj.get("history") == player.history

    def test_picture_references_absolute(self, graph):
        object_graph, truth = graph
        obj = object_graph.object("Player", "monica-seles")
        assert obj.get("picture").startswith("http://")

    def test_articles_and_about_associations(self, graph):
        object_graph, truth = graph
        for article in truth.articles:
            obj = object_graph.object("Article", article.key)
            assert obj.get("title") == article.title
            assert object_graph.related("About", article.key) \
                == sorted(article.about)

    def test_videos_and_features_associations(self, graph):
        object_graph, truth = graph
        for video in truth.videos:
            obj = object_graph.object("Video", video.key)
            assert obj.get("video").endswith(video.media_path)
            assert object_graph.related("Features", video.key) \
                == sorted(video.players)

    def test_profiles_created(self, graph):
        object_graph, truth = graph
        assert len(object_graph.objects_of("Profile")) \
            == len(truth.players)
        related = object_graph.related("Is_covered_in", "monica-seles")
        assert related == ["profile:monica-seles"]

    def test_navigation_pages_skipped(self, site, crawled):
        server, truth = site
        schema = australian_open_schema()
        documents = reengineer_site(schema, crawled.pages)
        semantic_pages = (len(truth.players) + len(truth.articles)
                          + len(truth.videos))
        assert len(documents) == semantic_pages
