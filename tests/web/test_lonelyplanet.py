"""The Lonely Planet case study: flexibility of the architecture."""

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import SearchEngine
from repro.web.crawler import crawl
from repro.web.lonelyplanet import (build_lonelyplanet_site,
                                    lonely_planet_schema,
                                    reengineer_lonelyplanet)
from repro.webspace.retriever import retrieve_objects


@pytest.fixture(scope="module")
def site():
    return build_lonelyplanet_site()


@pytest.fixture(scope="module")
def engine(site):
    server, _ = site
    engine = SearchEngine(lonely_planet_schema(), server,
                          EngineConfig(fragment_count=2),
                          extractor=reengineer_lonelyplanet)
    engine.populate()
    return engine


class TestSchemaAndExtraction:
    def test_schema_builds(self):
        schema = lonely_planet_schema()
        assert set(schema.classes) == {"Destination", "Region", "Activity"}
        assert schema.association("Located_in").target == "Region"

    def test_extraction_recovers_ground_truth(self, site):
        server, truth = site
        schema = lonely_planet_schema()
        documents = reengineer_lonelyplanet(schema,
                                            crawl(server).pages)
        graph = retrieve_objects(schema, documents)
        for destination in truth.destinations:
            obj = graph.object("Destination", destination.key)
            assert obj.get("name") == destination.name
            assert obj.get("country") == destination.country
            assert obj.get("description") == destination.description
            assert graph.related("Located_in", destination.key) \
                == [destination.region_key]
            assert graph.related("Offers", destination.key) \
                == sorted(destination.activity_keys)
        for region in truth.regions:
            assert graph.object("Region", region.key).get("climate") \
                == region.climate


class TestSameEngineDifferentDomain:
    def test_conceptual_query(self, engine, site):
        _, truth = site
        result = engine.query_text(
            "SELECT d.name FROM Destination d "
            "WHERE d.country = 'Tanzania' TOP 20")
        expected = sorted(d.name for d in truth.destinations
                          if d.country == "Tanzania")
        assert sorted(result.column("d.name")) == expected

    def test_cross_document_join(self, engine, site):
        _, truth = site
        result = engine.query_text("""
            SELECT d.name FROM Destination d, Region r
            WHERE d Located_in r AND r.climate = 'alpine'
            TOP 20
        """)
        names = {d.name for d in truth.destinations
                 if d.region_key == "andes"}
        assert set(result.column("d.name")) == names

    def test_content_based_query(self, engine, site):
        _, truth = site
        result = engine.query_text("""
            SELECT d.name FROM Destination d
            WHERE d.description CONTAINS 'trek' TOP 20
        """)
        trekky = {d.name for d in truth.destinations
                  if "trek" in d.description.lower()}
        assert set(result.column("d.name")) == trekky

    def test_three_way_join(self, engine, site):
        """Destinations in a tropical region offering diving."""
        _, truth = site
        result = engine.query_text("""
            SELECT d.name FROM Destination d, Region r, Activity a
            WHERE d Located_in r AND d Offers a
              AND r.climate = 'tropical' AND a.name = 'Diving'
            TOP 20
        """)
        expected = {d.name for d in truth.destinations
                    if d.region_key == "south-east-asia"
                    and "diving" in d.activity_keys}
        assert set(result.column("d.name")) == expected

    def test_mixed_conceptual_and_content(self, engine, site):
        """The Fig 13 pattern in the travel domain: a structural join
        plus ranked text search, in one query."""
        _, truth = site
        result = engine.query_text("""
            SELECT d.name, r.name FROM Destination d, Region r
            WHERE d Located_in r
              AND d.description CONTAINS 'reef diving beaches'
              AND r.climate = 'tropical'
            TOP 5
        """)
        assert result.rows
        assert all(row.value("r.name") == "South-East Asia"
                   for row in result.rows)
        scores = [row.score for row in result.rows]
        assert scores == sorted(scores, reverse=True)
