"""Op-log hygiene: checkpoint-driven truncation and online expansion."""

import pytest

from repro.errors import RemoteError
from repro.telemetry import telemetry_session

from tests.remote.conftest import process_policy

pytestmark = pytest.mark.remote


def _oplog_sizes(index):
    return index.remote.status()["oplog"]


class TestOplogTruncation:
    def test_checkpoint_truncates_the_covered_prefix(self,
                                                     replicated_index):
        """The regression this file exists for: before truncation the
        per-node op-log grew without bound across checkpoints."""
        replicated_index.add_document("http://site/t1", "trophy w0 w1")
        replicated_index.add_document("http://site/t2", "melbourne w2")
        replicated_index.refresh()
        node = replicated_index.cluster.place("http://site/t1").name
        assert _oplog_sizes(replicated_index)[node] > 0
        with telemetry_session() as telemetry:
            _, meta = replicated_index.remote.checkpoint(node)
            counters = telemetry.metrics.snapshot()["counters"]
        assert _oplog_sizes(replicated_index)[node] == 0
        assert counters[f"remote.oplog_truncated{{node={node}}}"] > 0
        assert meta["seq"] > 0

    def test_entries_past_the_checkpoint_survive(self, replicated_index):
        replicated_index.add_document("http://site/t1", "trophy w0 w1")
        replicated_index.refresh()
        node = replicated_index.cluster.place("http://site/t1").name
        replicated_index.remote.checkpoint(node)
        # a write after the checkpoint is *not* covered: it must stay
        replicated_index.add_document("http://site/t3", "w3 w4 trophy")
        late_node = replicated_index.cluster.place("http://site/t3").name
        assert _oplog_sizes(replicated_index)[late_node] > 0

    def test_repair_still_catches_up_after_truncation(self,
                                                      replicated_index):
        """Kill-and-repair works across a truncation boundary: the
        replacement bootstraps from the newest checkpoint, whose seq
        matches the truncated log's base."""
        replicated_index.add_document("http://site/t1", "trophy w0 w1")
        replicated_index.refresh()
        node = replicated_index.cluster.place("http://site/t1").name
        replicated_index.remote.checkpoint(node)
        replicated_index.add_document("http://site/t4", "melbourne w5")
        replicated_index.refresh()
        replicated_index.remote.kill_replica(node, slot=0)
        assert replicated_index.remote.repair() == 1
        thread = replicated_index.query(
            "trophy melbourne", process_policy(backend="thread"))
        process = replicated_index.query("trophy melbourne",
                                         process_policy())
        assert process.ranking == thread.ranking


class TestExpand:
    def test_expand_adds_a_caught_up_replica_online(self,
                                                    replicated_index):
        """Rebalance bootstrap: the new worker restores the newest
        snapshot, replays the op-log tail, and serves identically."""
        replicated_index.add_document("http://site/x1", "trophy w0 w1")
        replicated_index.refresh()
        node = replicated_index.cluster.place("http://site/x1").name
        before = len(replicated_index.remote.replicas[node])
        with telemetry_session() as telemetry:
            added = replicated_index.remote.expand(node)
            counters = telemetry.metrics.snapshot()["counters"]
        assert added == 1
        assert counters[f"remote.replicas_expanded{{node={node}}}"] == 1
        handles = replicated_index.remote.replicas[node]
        assert len(handles) == before + 1
        expected = replicated_index.nodes[node].generation
        assert all(handle.healthy and handle.generation == expected
                   for handle in handles)
        thread = replicated_index.query(
            "trophy melbourne", process_policy(backend="thread"))
        process = replicated_index.query("trophy melbourne",
                                         process_policy())
        assert process.ranking == thread.ranking

    def test_expand_unknown_node_is_a_remote_error(self, replicated_index):
        with pytest.raises(RemoteError, match="unknown node"):
            replicated_index.remote.expand("no-such-node")

    def test_expand_rejects_non_positive_counts(self, replicated_index):
        with pytest.raises(ValueError, match=">= 1"):
            replicated_index.remote.expand("node0", count=0)
