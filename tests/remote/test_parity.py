"""Thread backend vs. process backend: rankings must be bit-identical.

The workers score the same postings against the same pushed global idf
weights and tie-break in the same insertion order as the coordinator's
local node relations, and both backends merge through ``topn_merge`` on
central oids — so not just the urls but the exact score doubles must
agree (JSON round-trips floats losslessly).
"""

import pytest

from tests.remote.conftest import process_policy

pytestmark = pytest.mark.remote

QUERIES = ["trophy melbourne", "w0 w3", "w10 w2 w5", "w1", "w7 w0 trophy"]


def thread_policy(**overrides):
    return process_policy(backend="thread", **overrides)


class TestBitIdenticalRankings:
    def test_rankings_identical_across_backends(self, replicated_index):
        for query in QUERIES:
            thread = replicated_index.query(query, thread_policy())
            process = replicated_index.query(query, process_policy())
            assert process.ranking == thread.ranking, query
            assert not process.degraded
            assert not process.failed_nodes

    def test_accounting_matches(self, replicated_index):
        thread = replicated_index.query("trophy melbourne", thread_policy())
        process = replicated_index.query("trophy melbourne",
                                         process_policy())
        assert process.total_tuples() == thread.total_tuples()
        assert process.tuples_read_per_node() \
            == thread.tuples_read_per_node()

    def test_pruning_disabled_also_identical(self, replicated_index):
        thread = replicated_index.query(
            "trophy melbourne w0", thread_policy(prune=False))
        process = replicated_index.query(
            "trophy melbourne w0", process_policy(prune=False))
        assert process.ranking == thread.ranking

    def test_parity_survives_writes(self, replicated_index):
        """Dual-write keeps replicas in lockstep with the local copies."""
        replicated_index.add_document(
            "http://site/new", "trophy trophy melbourne w0 w1")
        replicated_index.add_documents(
            [(f"http://site/bulk{i}", f"w0 w1 trophy w{i}")
             for i in range(5)])
        replicated_index.remove_document("http://site/p0")
        replicated_index.refresh()
        for query in QUERIES:
            thread = replicated_index.query(query, thread_policy())
            process = replicated_index.query(query, process_policy())
            assert process.ranking == thread.ranking, query

    def test_replica_generations_track_local(self, replicated_index):
        replicated_index.add_document("http://site/gen", "w0 trophy")
        status = replicated_index.remote.status()
        for node, handles in status["nodes"].items():
            expected = replicated_index.nodes[node].generation
            for handle in handles:
                assert handle["healthy"]
                assert handle["generation"] == expected, handle["name"]
