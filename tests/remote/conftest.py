"""Shared fixtures for the shared-nothing process-backend suite.

Two leak checks run around every test:

* the **thread**-leak check of ``tests/cluster`` — a hedge loser or an
  abandoned RPC attempt that outlives its query is exactly the kind of
  leak the socket-cancellation design must prevent;
* a **process**-leak check — every worker subprocess spawned through
  :mod:`repro.remote.replicas` registers in a live-worker registry, and
  a test that exits with workers still registered fails.  Orphaned
  workers are worse than orphaned threads: they survive the test
  process and pin ports.
"""

import random
import threading
import time

import pytest

from repro.core.config import ExecutionPolicy
from repro.ir.distributed import DistributedIndex
from repro.monetdb.server import Cluster
from repro.remote.replicas import live_worker_pids


@pytest.fixture(autouse=True)
def no_thread_leaks():
    """Fail any test that leaks a live non-daemon thread."""
    before = set(threading.enumerate())
    yield
    leaked = set()
    for _ in range(100):
        leaked = {thread for thread in threading.enumerate()
                  if thread not in before
                  and not thread.daemon and thread.is_alive()}
        if not leaked:
            break
        time.sleep(0.01)
    assert not leaked, \
        f"leaked non-daemon threads: {sorted(t.name for t in leaked)}"


@pytest.fixture(autouse=True)
def no_process_leaks():
    """Fail any test that leaves spawned worker processes running."""
    before = set(live_worker_pids())
    yield
    leaked = [pid for pid in live_worker_pids() if pid not in before]
    assert not leaked, f"leaked worker processes: {leaked}"


def corpus(documents=60, seed=5):
    rng = random.Random(seed)
    vocab = [f"w{i}" for i in range(80)]
    weights = [1.0 / (i + 1) for i in range(80)]
    docs = []
    for d in range(documents):
        words = rng.choices(vocab, weights=weights, k=40)
        if d % 6 == 0:
            words += ["trophy", "melbourne"]
        docs.append((f"http://site/p{d}", " ".join(words)))
    return docs


def build_index(cluster_size=4, documents=60) -> DistributedIndex:
    index = DistributedIndex(Cluster(cluster_size), fragment_count=4)
    index.add_documents(corpus(documents))
    return index


@pytest.fixture
def replicated_index(tmp_path):
    """A 3-node index with 2 replicas per node, torn down leak-free."""
    index = build_index(cluster_size=3)
    index.start_remote(replication_factor=2,
                       snapshot_root=tmp_path / "snapshots")
    try:
        yield index
    finally:
        index.stop_remote()


def process_policy(**overrides) -> ExecutionPolicy:
    defaults = dict(n=10, cache=False, backend="process")
    defaults.update(overrides)
    return ExecutionPolicy(**defaults)
