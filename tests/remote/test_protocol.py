"""Framing tests: roundtrips, torn frames, oversized frames, clean EOF."""

import socket
import struct
import threading

import pytest

from repro.errors import RemoteProtocolError, RemoteTransportError
from repro.remote.protocol import (MAX_FRAME_BYTES, frame_size, recv_frame,
                                   send_frame)

pytestmark = pytest.mark.remote


def socket_pair():
    return socket.socketpair()


class TestRoundtrip:
    def test_payload_survives_the_wire(self):
        left, right = socket_pair()
        with left, right:
            payload = {"op": "search", "terms": ["a", "b"],
                       "idf": {"a": 0.5, "b": 1.0 / 3.0}, "n": 10}
            sent = send_frame(left, payload)
            assert recv_frame(right) == payload
            assert sent == frame_size(payload)

    def test_float_bits_roundtrip_exactly(self):
        """JSON float round-trips preserve the exact double, which is
        what makes process-backend rankings bit-identical."""
        left, right = socket_pair()
        with left, right:
            values = [1.0 / 3.0, 0.1 + 0.2, 1e-308, 123456.789012345]
            send_frame(left, {"v": values})
            received = recv_frame(right)["v"]
            assert all(a == b and str(a) == str(b)
                       for a, b in zip(values, received))

    def test_many_frames_on_one_connection(self):
        left, right = socket_pair()
        with left, right:
            for index in range(20):
                send_frame(left, {"seq": index})
            for index in range(20):
                assert recv_frame(right) == {"seq": index}


class TestTornFrames:
    def test_eof_inside_header_is_transport_error(self):
        left, right = socket_pair()
        with right:
            left.sendall(b"\x00\x00")  # half a header
            left.close()
            with pytest.raises(RemoteTransportError, match="torn frame"):
                recv_frame(right)

    def test_eof_inside_body_is_transport_error(self):
        left, right = socket_pair()
        with right:
            left.sendall(struct.pack(">I", 100) + b'{"partial":')
            left.close()
            with pytest.raises(RemoteTransportError, match="torn frame"):
                recv_frame(right)

    def test_clean_eof_at_frame_boundary_is_none(self):
        left, right = socket_pair()
        with right:
            send_frame(left, {"last": True})
            left.close()
            assert recv_frame(right) == {"last": True}
            assert recv_frame(right) is None

    def test_read_deadline_is_transport_error(self):
        left, right = socket_pair()
        with left, right:
            right.settimeout(0.05)
            with pytest.raises(RemoteTransportError, match="deadline"):
                recv_frame(right)


class TestProtocolViolations:
    def test_oversized_announcement_rejected_before_body(self):
        left, right = socket_pair()
        with left, right:
            left.sendall(struct.pack(">I", 2 ** 31))
            with pytest.raises(RemoteProtocolError, match="oversized"):
                recv_frame(right, max_bytes=1024)

    def test_oversized_send_refused_locally(self):
        left, right = socket_pair()
        with left, right:
            with pytest.raises(RemoteProtocolError, match="oversized"):
                send_frame(left, {"blob": "x" * 2048}, max_bytes=1024)

    def test_malformed_json_is_protocol_error(self):
        left, right = socket_pair()
        with left, right:
            body = b"{not json"
            left.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(RemoteProtocolError, match="malformed"):
                recv_frame(right)

    def test_non_object_payload_is_protocol_error(self):
        left, right = socket_pair()
        with left, right:
            body = b"[1, 2, 3]"
            left.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(RemoteProtocolError, match="JSON object"):
                recv_frame(right)

    def test_default_bound_is_generous_but_finite(self):
        assert MAX_FRAME_BYTES == 64 * 1024 * 1024


class TestConcurrentUse:
    def test_shutdown_aborts_a_blocked_recv(self):
        """Socket shutdown is the hedge-cancellation mechanism: a
        blocked reader must wake immediately, not wait for data.  It
        has to be ``shutdown(SHUT_RDWR)`` — the executor's actual
        cancellation call — because a bare ``close()`` leaves a recv
        already blocked in the kernel blocked forever (the in-flight
        syscall pins the descriptor)."""
        left, right = socket_pair()
        outcomes = []
        done = threading.Event()

        def reader():
            try:
                outcomes.append(recv_frame(right))
            except (RemoteTransportError, RemoteProtocolError) as exc:
                outcomes.append(exc)
            finally:
                done.set()

        thread = threading.Thread(target=reader)
        thread.start()
        right.shutdown(socket.SHUT_RDWR)
        assert done.wait(timeout=5.0), "blocked recv did not abort"
        thread.join(timeout=5.0)
        right.close()
        left.close()
        assert outcomes == [None]  # the wake reads as clean EOF
