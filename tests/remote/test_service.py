"""The service surface of the process backend: /healthz replica status."""

import pytest

from repro.service.service import SearchService

from tests.remote.conftest import build_index, process_policy

pytestmark = pytest.mark.remote


class _ClusteredEngine:
    """The minimal engine shape SearchService needs: an ``ir`` backend
    whose ``index`` is the clustered DistributedIndex."""

    def __init__(self, index):
        self.index = index


class TestHealthzReplicas:
    def test_status_reports_per_replica_health(self, tmp_path):
        index = build_index(cluster_size=2, documents=24)
        index.start_remote(replication_factor=2,
                           snapshot_root=tmp_path / "snapshots")
        try:
            service = SearchService(_ClusteredEngine(index))
            status = service.status()
            replicas = status["replicas"]
            assert replicas["replication_factor"] == 2
            assert sorted(replicas["nodes"]) == ["node0", "node1"]
            for node, handles in replicas["nodes"].items():
                assert [handle["slot"] for handle in handles] == [0, 1]
                for handle in handles:
                    assert handle["healthy"]
                    assert handle["pid"] > 0
                    assert handle["port"] > 0
                    assert handle["name"].startswith(f"{node}/r")

            # a killed replica shows up unhealthy on the next probe
            index.remote.kill_replica("node0", slot=1)
            degraded = service.status()["replicas"]
            health = [handle["healthy"]
                      for handle in degraded["nodes"]["node0"]]
            assert health == [True, False]
        finally:
            index.stop_remote()

    def test_status_without_remote_has_no_replicas_key(self):
        index = build_index(cluster_size=2, documents=24)
        service = SearchService(_ClusteredEngine(index))
        assert "replicas" not in service.status()

    def test_query_through_backend_switch(self, tmp_path):
        """The same index answers thread and process queries in turn."""
        index = build_index(cluster_size=2, documents=24)
        index.start_remote(replication_factor=1,
                           snapshot_root=tmp_path / "snapshots")
        try:
            thread = index.query("trophy melbourne",
                                 process_policy(backend="thread"))
            process = index.query("trophy melbourne", process_policy())
            assert process.ranking == thread.ranking
        finally:
            index.stop_remote()
