"""Fault injection: crashes, stragglers, timeouts, hedges, bootstrap.

Every test runs under the autouse thread- and process-leak fixtures,
so a hedge loser or a failed-over attempt that outlives its query — or
a replacement worker that never gets torn down — fails the test even
when the assertions below pass.
"""

import time

import pytest

from repro.core.config import ExecutionPolicy
from repro.service.api import policy_from_dict, policy_to_dict
from repro.telemetry import telemetry_session

from tests.remote.conftest import process_policy

pytestmark = pytest.mark.remote


def thread_policy(**overrides):
    return process_policy(backend="thread", **overrides)


class TestCrashFailover:
    def test_worker_crash_mid_run_fails_over(self, replicated_index):
        """Killing one replica must not even degrade the response."""
        expected = replicated_index.query("trophy melbourne",
                                          thread_policy())
        replicated_index.remote.kill_replica("node0", slot=0)
        with telemetry_session() as telemetry:
            result = replicated_index.query("trophy melbourne",
                                            process_policy())
            assert result.ranking == expected.ranking
            assert not result.degraded
            assert not result.failed_nodes
            # the query's tail healed the cluster: a replacement worker
            # was spawned and bootstrapped from the newest snapshot
            counters = telemetry.metrics.snapshot()["counters"]
            assert counters.get("remote.repairs", 0) >= 1
            assert counters.get("remote.bootstraps", 0) >= 1
        status = replicated_index.remote.status()
        assert all(handle["healthy"]
                   for handles in status["nodes"].values()
                   for handle in handles)

    def test_whole_node_down_degrades_then_heals(self, replicated_index):
        """With every replica of a node dead the query degrades —
        never errors — and the next query sees a repaired cluster."""
        replicated_index.remote.kill_replica("node1", slot=0)
        replicated_index.remote.kill_replica("node1", slot=1)
        degraded = replicated_index.query(
            "trophy melbourne", process_policy(on_failure="degrade"))
        assert degraded.degraded
        assert "node1" in degraded.failed_nodes
        assert degraded.ranking  # survivors still answered
        # the degraded query's tail repaired both replicas
        healed = replicated_index.query("trophy melbourne",
                                        process_policy())
        assert not healed.degraded
        expected = replicated_index.query("trophy melbourne",
                                          thread_policy())
        assert healed.ranking == expected.ranking

    def test_raise_policy_propagates_whole_node_loss(self, replicated_index):
        from repro.errors import ClusterExecutionError

        replicated_index.remote.kill_replica("node2", slot=0)
        replicated_index.remote.kill_replica("node2", slot=1)
        with pytest.raises(ClusterExecutionError):
            replicated_index.query("trophy melbourne", process_policy())
        # the raising query aborts before its repair tail; a degraded
        # query runs to completion and heals, after which reads are clean
        degraded = replicated_index.query(
            "trophy melbourne", process_policy(on_failure="degrade"))
        assert degraded.degraded
        healed = replicated_index.query("trophy melbourne",
                                        process_policy())
        assert not healed.degraded


class TestDeadlines:
    def test_slow_node_times_out_to_degraded(self, replicated_index):
        """A node whose every replica is stuck degrades under deadline."""
        replicated_index.remote.set_fault("node0", 800.0, slot=0)
        replicated_index.remote.set_fault("node0", 800.0, slot=1)
        result = replicated_index.query(
            "trophy melbourne",
            process_policy(on_failure="degrade", node_deadline_ms=200.0))
        assert result.degraded
        assert "node0" in result.failed_nodes
        replicated_index.remote.set_fault("node0", 0.0, slot=0)
        replicated_index.remote.set_fault("node0", 0.0, slot=1)
        recovered = replicated_index.query("trophy melbourne",
                                           process_policy())
        assert not recovered.degraded


class TestHedging:
    def test_hedge_masks_straggler_replica(self, replicated_index):
        """One slow replica per node: the hedge answers within its
        budget instead of waiting out the injected 800ms."""
        expected = replicated_index.query("trophy melbourne",
                                          thread_policy())
        for node in replicated_index.nodes:
            replicated_index.remote.set_fault(node, 800.0, slot=0)
        with telemetry_session() as telemetry:
            started = time.monotonic()
            result = replicated_index.query(
                "trophy melbourne", process_policy(hedge_after_ms=40.0))
            elapsed = time.monotonic() - started
            counters = telemetry.metrics.snapshot()["counters"]
        assert result.ranking == expected.ranking
        assert not result.degraded
        assert counters.get("remote.hedges_issued", 0) >= 1
        assert counters.get("remote.hedges_won", 0) >= 1
        # well under the injected delay: the straggler lost the race
        assert elapsed < 0.6, f"hedge did not mask the straggler: {elapsed}"
        for node in replicated_index.nodes:
            replicated_index.remote.set_fault(node, 0.0, slot=0)

    def test_hedge_loser_is_cancelled_cleanly(self, replicated_index):
        """After a hedged win the loser's thread and socket are gone
        (the autouse fixtures assert the leak half) and the replica
        stays healthy — slowness is not a failure."""
        replicated_index.remote.set_fault("node0", 500.0, slot=0)
        replicated_index.query("trophy melbourne",
                               process_policy(hedge_after_ms=30.0))
        replicated_index.remote.set_fault("node0", 0.0, slot=0)
        status = replicated_index.remote.status()
        assert all(handle["healthy"]
                   for handle in status["nodes"]["node0"])
        follow_up = replicated_index.query("w0 w3", process_policy())
        expected = replicated_index.query("w0 w3", thread_policy())
        assert follow_up.ranking == expected.ranking


class TestBootstrapCatchUp:
    def test_replacement_replays_oplog_past_snapshot(self, replicated_index):
        """Writes land in the op-log; a replacement worker bootstraps
        from the start-time snapshot and catches up by replay."""
        replicated_index.add_document("http://site/late1", "trophy w0 w1")
        replicated_index.add_document("http://site/late2",
                                      "melbourne w2 trophy")
        replicated_index.refresh()
        node = replicated_index.cluster.place("http://site/late1").name
        replicated_index.remote.kill_replica(node, slot=0)
        with telemetry_session() as telemetry:
            replaced = replicated_index.remote.repair()
            counters = telemetry.metrics.snapshot()["counters"]
        assert replaced == 1
        assert counters.get("remote.bootstraps", 0) >= 1
        status = replicated_index.remote.status()
        expected_generation = replicated_index.nodes[node].generation
        for handle in status["nodes"][node]:
            assert handle["healthy"]
            assert handle["generation"] == expected_generation
        thread = replicated_index.query("trophy melbourne",
                                        thread_policy())
        process = replicated_index.query("trophy melbourne",
                                         process_policy())
        assert process.ranking == thread.ranking


class TestPolicyWire:
    def test_remote_knobs_round_trip(self):
        policy = ExecutionPolicy(n=7, backend="process",
                                 hedge_after_ms=25.0, cache=False)
        assert policy_from_dict(policy_to_dict(policy)) == policy

    def test_process_backend_without_remote_is_query_error(self):
        from repro.errors import QueryError
        from tests.remote.conftest import build_index

        index = build_index(cluster_size=2, documents=12)
        with pytest.raises(QueryError, match="start_remote"):
            index.query("trophy", process_policy())
