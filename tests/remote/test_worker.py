"""Worker lifecycle and RPC semantics against live subprocesses."""

import socket

import pytest

from repro.errors import RemoteError, RemoteTransportError
from repro.ir.relations import IrRelations
from repro.remote.protocol import PROTOCOL_VERSION, recv_frame, send_frame
from repro.remote.replicas import ReplicaSet

from tests.remote.conftest import corpus

pytestmark = pytest.mark.remote


@pytest.fixture
def worker():
    """One spawned worker (replication_factor=1 around one node)."""
    replicas = ReplicaSet({"node0": IrRelations()}, replication_factor=1)
    replicas.start()
    try:
        yield replicas.replicas["node0"][0]
    finally:
        replicas.stop()


class TestLifecycle:
    def test_spawn_ping_shutdown(self, worker):
        info = worker.client.ping()
        assert info["name"] == "node0/r0"
        assert info["pid"] == worker.process.pid

    def test_status_reports_empty_index(self, worker):
        status = worker.client.call("status")
        assert status["documents"] == 0
        assert status["generation"] == 0

    def test_unknown_op_is_application_error(self, worker):
        with pytest.raises(RemoteError, match="unknown worker op"):
            worker.client.call("frobnicate")
        # the worker survives an unknown op
        assert worker.client.ping()["pid"] == worker.process.pid

    def test_unsupported_protocol_version_rejected(self, worker):
        with socket.create_connection(
                (worker.client.host, worker.client.port), timeout=5) as sock:
            send_frame(sock, {"v": PROTOCOL_VERSION + 1, "op": "ping"})
            reply = recv_frame(sock)
        assert reply["ok"] is False
        assert "version" in reply["error"]

    def test_malformed_frame_drops_connection_not_worker(self, worker):
        with socket.create_connection(
                (worker.client.host, worker.client.port), timeout=5) as sock:
            sock.sendall(b"\xff\xff\xff\xff garbage")
        # that connection died; the worker still serves fresh ones
        assert worker.client.ping()["pid"] == worker.process.pid

    def test_killed_worker_is_transport_error(self, worker):
        worker.process.kill()
        worker.process.wait(timeout=5)
        with pytest.raises(RemoteTransportError):
            worker.client.ping(deadline_s=2.0)


class TestIndexOps:
    def test_add_search_remove_roundtrip(self, worker):
        docs = corpus(documents=12)
        reply = worker.client.call("add_documents",
                                   {"documents": [list(d) for d in docs]})
        assert reply["count"] == 12
        assert reply["generation"] == 12

        local = IrRelations()
        for url, text in docs:
            local.add_document(url, text)
        # push the *analyzed* (stemmed) term names, as the coordinator does
        from repro.ir.text import analyze
        terms = list(analyze("trophy melbourne"))
        idf = {term: local.idf(local.term_oid(term)) for term in terms}

        from repro.core.config import ExecutionPolicy
        from repro.service.api import SearchRequest

        request = SearchRequest(
            query="trophy melbourne", mode="fragmented",
            policy=ExecutionPolicy(n=5, cache=False)).to_dict()
        result = worker.client.call(
            "search", {"request": request, "terms": terms, "idf": idf})
        assert result["rows"] > 0
        assert result["accounting"]["generation"] == 12

        # remote hits must equal a local single-node execution exactly
        from repro.ir.fragmentation import fragment_by_idf
        from repro.ir.topn import topn_fragmented
        from repro.ir.distributed import patch_fragment_idf

        fragments = patch_fragment_idf(fragment_by_idf(local, 4), local, idf)
        term_oids = [local.term_oid(t) for t in terms]
        expected = topn_fragmented(fragments, term_oids, 5, prune=True,
                                   refine=True)
        assert [(hit["key"], hit["score"]) for hit in result["hits"]] \
            == [(local.doc_url(doc), score)
                for doc, score in expected.ranking]

        removed = worker.client.call("remove_document",
                                     {"url": docs[0][0]})
        assert removed["generation"] == 13
        assert worker.client.call("status")["documents"] == 11

    def test_duplicate_add_is_application_error(self, worker):
        worker.client.call("add_documents",
                           {"documents": [["http://site/x", "alpha"]]})
        with pytest.raises(RemoteError, match="already indexed") as info:
            worker.client.call("add_documents",
                               {"documents": [["http://site/x", "alpha"]]})
        assert info.value.kind == "CatalogError"


class TestCheckpointBootstrap:
    def test_checkpoint_then_bootstrap_transfers_state(self, tmp_path,
                                                       worker):
        docs = corpus(documents=10)
        worker.client.call("add_documents",
                           {"documents": [list(d) for d in docs]})
        path = tmp_path / "ckpt.jsonl"
        saved = worker.client.call("checkpoint", {"path": str(path)})
        assert saved["generation"] == 10
        assert path.is_file()

        other = ReplicaSet({"node0": IrRelations()}, replication_factor=1)
        other.start()
        try:
            fresh = other.replicas["node0"][0]
            restored = fresh.client.call(
                "bootstrap", {"path": str(path), "generation": 10})
            assert restored == {"documents": 10, "generation": 10}
            status = fresh.client.call("status")
            assert status["documents"] == 10
            assert status["generation"] == 10
        finally:
            other.stop()
