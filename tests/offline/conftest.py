"""Fixtures for the offline tier: an exported artifact of the query
suite's digital-library corpus, plus the live engine it came from.

The corpus is deliberately the same one the schema-2 query-language
tests use (:mod:`tests.query.conftest`), so the parity suite here can
replay the exact query-shape matrix those tests pin down — the offline
reader has to answer every shape the live engine answers.
"""

import pytest

from repro.ir.engine import IrEngine
from repro.offline import StaticIndexReader, export_index

from tests.query.conftest import ARTICLES, PAPERS, PLAIN_DOCS


def build_engine(fragment_count: int = 4) -> IrEngine:
    """A live IrEngine over the query suite's corpus."""
    engine = IrEngine(fragment_count=fragment_count)
    for key, title, abstract, year in PAPERS:
        engine.index(f"Paper:{key}:title", title)
        engine.index(f"Paper:{key}:abstract", abstract)
        engine.index(f"Paper:{key}:year", year)
    for key, title in ARTICLES:
        engine.index(f"Article:{key}:title", title)
    for url, text in PLAIN_DOCS:
        engine.index(url, text)
    return engine


@pytest.fixture
def engine() -> IrEngine:
    return build_engine()


@pytest.fixture
def artifact(engine, tmp_path):
    """An exported artifact directory for the corpus engine."""
    return export_index(engine, tmp_path / "artifact")


@pytest.fixture
def reader(artifact) -> StaticIndexReader:
    return StaticIndexReader(artifact)
