"""Acceptance: the static reader is bit-identical to the live service.

Every schema-2 query shape the query-language suite pins down — plus
the v1 dialect and the rich request extras (facets, filters, sort,
pagination, boosts) — is answered twice: once by a
:class:`~repro.service.SearchService` over the live engine, once by a
:class:`~repro.offline.StaticIndexReader` over that engine's exported
artifact.  Everything except the timings must compare equal — scores
included, not just the order.
"""

import pytest

from repro.service import SearchRequest, SearchService
from repro.service.api import SCHEMA_VERSION_V2

from tests.query.test_parity import SHAPES

pytestmark = pytest.mark.offline


def comparable(response) -> dict:
    """The wire dict minus the only legitimately divergent field."""
    payload = response.to_dict()
    payload.pop("timings")
    return payload


def serve_and_read(engine, reader, request):
    with SearchService(engine) as service:
        served = service.search(request)
    static = reader.execute(request)
    return comparable(served), comparable(static)


class TestSchema2Shapes:
    @pytest.mark.parametrize("source", SHAPES)
    @pytest.mark.parametrize("mode", ["content", "fragmented"])
    def test_rich_query_shapes_are_bit_identical(self, engine, reader,
                                                 source, mode):
        request = SearchRequest(query=source, mode=mode,
                                schema_version=SCHEMA_VERSION_V2)
        served, static = serve_and_read(engine, reader, request)
        assert served == static

    def test_facets_filters_sort_and_pagination(self, engine, reader):
        request = SearchRequest(
            query="digital OR database OR retrieval",
            mode="content", schema_version=SCHEMA_VERSION_V2,
            filters=(("year", "1990-2001"),),
            facets=("class", "attribute"),
            sort=(("attribute", "asc"), ("score", "desc")),
            limit=3, offset=1)
        served, static = serve_and_read(engine, reader, request)
        assert served == static
        assert static["facets"]  # the shape actually exercised facets
        assert static["total"] is not None

    def test_boosted_fields_are_bit_identical(self, engine, reader):
        request = SearchRequest(
            query="library search", mode="content",
            schema_version=SCHEMA_VERSION_V2,
            boosts=(("title", 4.0), ("abstract", 2.0)))
        served, static = serve_and_read(engine, reader, request)
        assert served == static
        assert any(hit["score"] > 0.0 for hit in static["hits"])


class TestV1Dialect:
    @pytest.mark.parametrize("mode", ["content", "fragmented"])
    def test_v1_requests_are_bit_identical(self, engine, reader, mode):
        request = SearchRequest(query="digital library retrieval",
                                mode=mode)
        served, static = serve_and_read(engine, reader, request)
        assert served == static
        assert served["schema_version"] == 1


class TestReaderSemantics:
    def test_conceptual_mode_is_a_typed_refusal(self, reader):
        from repro.errors import QueryError

        with pytest.raises(QueryError, match="integrated"):
            reader.execute(SearchRequest(query="x", mode="conceptual"))

    def test_generation_matches_the_exporting_engine(self, engine,
                                                     reader):
        assert reader.generation == engine.generation
        assert reader.document_count() \
            == engine.relations.document_count()
        assert reader.vocabulary_size() \
            == engine.relations.vocabulary_size()

    def test_stats_summarize_the_artifact(self, reader, artifact):
        stats = reader.stats()
        assert stats["directory"] == str(artifact)
        assert stats["format_version"] == 1
        assert stats["schema_version"] == SCHEMA_VERSION_V2
        assert stats["documents"] == reader.document_count()
        assert stats["bytes"] > 0

    def test_reader_needs_no_service_and_no_locks(self, reader):
        # the whole point of the offline tier: a plain object, usable
        # concurrently without admission control — two back-to-back
        # executions observe the same immutable artifact
        request = SearchRequest(query="digital library", mode="content",
                                schema_version=SCHEMA_VERSION_V2)
        first = reader.execute(request).to_dict()
        second = reader.execute(request).to_dict()
        first.pop("timings"), second.pop("timings")
        # the second run may be a cache hit inside the private engine;
        # the ranking surface must not move
        first.pop("cache_hit"), second.pop("cache_hit")
        assert first == second
