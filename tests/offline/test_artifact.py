"""Artifact integrity: corruption is always a typed error, never a
silently wrong ranking.

Every tampering vector — truncation, a flipped bit, a deleted data
file, a missing or malformed manifest, format/analyzer version skew —
must surface as a :class:`~repro.errors.SnapshotError` (or a subclass)
at load time, before a single record is served.
"""

import json

import pytest

from repro.errors import QueryError, SnapshotError
from repro.offline import (INDEX_MANIFEST, OFFLINE_FORMAT_VERSION,
                           OfflineManifest, StaticIndexReader,
                           export_index)
from repro.offline.artifact import (ARTIFACT_FILES, META_FILE,
                                    POSITIONS_FILE, POSTINGS_FILE)

pytestmark = pytest.mark.offline


def load(artifact, **kwargs):
    return StaticIndexReader(artifact, **kwargs)


def edit_manifest(artifact, mutate):
    """Round-trip index.json through ``mutate`` (a dict -> dict)."""
    path = artifact / INDEX_MANIFEST
    data = json.loads(path.read_text())
    path.write_text(json.dumps(mutate(data)))


class TestExportLayout:
    def test_artifact_is_complete_and_self_describing(self, artifact):
        assert (artifact / INDEX_MANIFEST).exists()
        for name in ARTIFACT_FILES:
            assert (artifact / name).exists()
        manifest = OfflineManifest.load(artifact)
        assert manifest.format_version == OFFLINE_FORMAT_VERSION
        assert set(manifest.files) == set(ARTIFACT_FILES)
        for name, stamp in manifest.files.items():
            assert stamp.bytes == (artifact / name).stat().st_size

    def test_export_refuses_non_ir_engines(self, tmp_path):
        with pytest.raises(QueryError, match="IrEngine"):
            export_index(object(), tmp_path / "nope")

    def test_reexport_overwrites_in_place(self, engine, artifact):
        engine.index("http://site/new", "a brand new document")
        export_index(engine, artifact)
        reader = load(artifact)
        assert reader.generation == engine.generation
        assert reader.document_count() \
            == engine.relations.document_count()


class TestCorruptionIsTyped:
    @pytest.mark.parametrize("victim", list(ARTIFACT_FILES))
    def test_truncation_is_detected(self, artifact, victim):
        path = artifact / victim
        path.write_bytes(path.read_bytes()[:-7])
        with pytest.raises(SnapshotError):
            load(artifact)

    @pytest.mark.parametrize("victim", [POSTINGS_FILE, POSITIONS_FILE])
    def test_single_bit_flip_is_detected(self, artifact, victim):
        path = artifact / victim
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x40
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotError):
            load(artifact)

    @pytest.mark.parametrize("victim", list(ARTIFACT_FILES))
    def test_missing_data_file_is_detected(self, artifact, victim):
        (artifact / victim).unlink()
        with pytest.raises(SnapshotError):
            load(artifact)

    def test_missing_manifest_means_not_an_artifact(self, artifact):
        # the manifest is the commit record: without it the directory
        # is not an artifact at all, however intact the data files are
        (artifact / INDEX_MANIFEST).unlink()
        with pytest.raises(SnapshotError, match="missing index.json"):
            load(artifact)

    def test_unparseable_manifest_is_typed(self, artifact):
        (artifact / INDEX_MANIFEST).write_text("{not json")
        with pytest.raises(SnapshotError, match="unreadable"):
            load(artifact)

    def test_manifest_missing_fields_is_typed(self, artifact):
        edit_manifest(artifact, lambda data: {
            key: value for key, value in data.items()
            if key != "generation"})
        with pytest.raises(SnapshotError, match="malformed"):
            load(artifact)

    def test_unstamped_data_file_is_refused(self, artifact):
        def drop_stamp(data):
            del data["files"][META_FILE]
            return data
        edit_manifest(artifact, drop_stamp)
        with pytest.raises(SnapshotError, match="lacks stamps"):
            load(artifact)


class TestVersionSkewIsTyped:
    def test_future_format_version_is_refused(self, artifact):
        edit_manifest(artifact, lambda data: {
            **data, "format_version": OFFLINE_FORMAT_VERSION + 1})
        with pytest.raises(SnapshotError, match="format_version"):
            load(artifact)

    def test_analyzer_skew_is_refused(self, artifact):
        # an artifact tokenized differently would silently miss at
        # query time; the fingerprint turns that into a load error
        edit_manifest(artifact, lambda data: {
            **data,
            "analyzer": {**data["analyzer"], "stemmer": "porter-2025"}})
        with pytest.raises(SnapshotError, match="analyzer"):
            load(artifact)


class TestVerifyKnob:
    def test_verify_false_skips_only_the_checksum_pass(self, artifact):
        reader = load(artifact, verify=False)
        assert reader.document_count() > 0
        # structural + version checks still run without verification
        edit_manifest(artifact, lambda data: {
            **data, "format_version": OFFLINE_FORMAT_VERSION + 1})
        with pytest.raises(SnapshotError, match="format_version"):
            load(artifact, verify=False)

    def test_verified_load_of_an_intact_artifact_succeeds(self, artifact):
        assert load(artifact, verify=True).document_count() > 0
