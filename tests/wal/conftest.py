"""Shared fixtures for the write-ahead-log durability suite.

Thread-leak checked like the service suite: a WAL whose group-commit
machinery wedges a waiter is a service that never acknowledges a
write.
"""

import threading
import time

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import SearchEngine
from repro.web.ausopen import build_ausopen_site
from repro.webspace.schema import australian_open_schema


@pytest.fixture(autouse=True)
def no_thread_leaks():
    """Fail any test that leaks a live non-daemon thread."""
    before = set(threading.enumerate())
    yield
    leaked = set()
    for _ in range(100):
        leaked = {thread for thread in threading.enumerate()
                  if thread not in before
                  and not thread.daemon and thread.is_alive()}
        if not leaked:
            break
        time.sleep(0.01)
    assert not leaked, \
        f"leaked non-daemon threads: {sorted(t.name for t in leaked)}"


def build_engine(**config_overrides):
    """A small populated engine over a fresh synthetic site."""
    server, truth = build_ausopen_site(players=6, articles=4, videos=2,
                                       frames_per_shot=4)
    config = EngineConfig(fragment_count=3, **config_overrides)
    engine = SearchEngine(australian_open_schema(), server, config)
    engine.populate()
    return engine, server, truth
