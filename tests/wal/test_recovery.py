"""Crash recovery: snapshot + tail replay, exactly once, torn tails."""

import pytest

from repro.persistence import SnapshotStore, load_engine
from repro.service import SearchService
from repro.telemetry import telemetry_session
from repro.wal import WriteAheadLog
from repro.wal.record import HEADER_BYTES, Record, encode_record
from repro.webspace.schema import australian_open_schema

from tests.wal.conftest import build_engine

pytestmark = pytest.mark.wal

QUERY = "SELECT p.name FROM Player p WHERE " \
        "p.history CONTAINS 'Winner' TOP 20"


def _counter_total(counters, name):
    return sum(value for key, value in counters.items()
               if key == name or key.startswith(name + "{"))


def _reload(root, server, wal, **kwargs):
    return load_engine(root, australian_open_schema(), server,
                       wal=wal, **kwargs)


def _active_segment(wal_root):
    return sorted(wal_root.iterdir())[-1]


class TestTailReplay:
    def test_acknowledged_writes_survive_a_crash(self, tmp_path):
        engine, server, _ = build_engine()
        root, wal_root = tmp_path / "snap", tmp_path / "wal"
        with WriteAheadLog(wal_root) as wal:
            service = SearchService(engine, wal=wal)
            service.snapshot(root)
            service.reindex("doc:crash", "champion trophy crash recovery")
            service.reindex("doc:crash2", "grand slam final set")
            acked = wal.last_seq
        # crash: the in-memory engine is simply abandoned
        with WriteAheadLog(wal_root) as wal:
            restored = _reload(root, server, wal)
        assert restored.wal_seq == acked
        assert restored.ir.relations.doc_oid("doc:crash") is not None
        assert restored.ir.relations.doc_oid("doc:crash2") is not None
        assert restored.query_text(QUERY).rows  # still query-ready

    def test_remove_replays_too(self, tmp_path):
        engine, server, _ = build_engine()
        root, wal_root = tmp_path / "snap", tmp_path / "wal"
        with WriteAheadLog(wal_root) as wal:
            service = SearchService(engine, wal=wal)
            service.reindex("doc:gone", "soon to be removed")
            service.snapshot(root)
            service.remove("doc:gone")
        with WriteAheadLog(wal_root) as wal:
            restored = _reload(root, server, wal)
        assert restored.ir.relations.doc_oid("doc:gone") is None

    def test_replay_is_exactly_once_past_the_snapshot(self, tmp_path):
        """Writes covered by the snapshot are not re-applied: only the
        tail past the manifest's ``wal_seq`` replays."""
        engine, server, _ = build_engine()
        root, wal_root = tmp_path / "snap", tmp_path / "wal"
        with WriteAheadLog(wal_root) as wal:
            service = SearchService(engine, wal=wal)
            service.reindex("doc:covered", "inside the checkpoint")
            service.snapshot(root)
            service.reindex("doc:tail", "past the checkpoint")
        with telemetry_session() as telemetry:
            with WriteAheadLog(wal_root) as wal:
                restored = _reload(root, server, wal)
            counters = telemetry.metrics.snapshot()["counters"]
        assert _counter_total(counters, "wal.replays") == 1
        assert restored.ir.relations.doc_oid("doc:covered") is not None
        assert restored.ir.relations.doc_oid("doc:tail") is not None

    def test_recovered_engine_matches_the_survivor(self, tmp_path):
        """Recovery state == the pre-crash engine's state, query for
        query (the acid test of redo-only replay)."""
        engine, server, _ = build_engine()
        root, wal_root = tmp_path / "snap", tmp_path / "wal"
        with WriteAheadLog(wal_root) as wal:
            service = SearchService(engine, wal=wal)
            service.snapshot(root)
            service.reindex("doc:p0", "trophy trophy trophy champion")
            service.remove("doc:p0")
            service.reindex("doc:p1", "winner of the final")
            expected = engine.query_text(QUERY)
        with WriteAheadLog(wal_root) as wal:
            restored = _reload(root, server, wal)
        recovered = restored.query_text(QUERY)
        assert [(row.keys, row.score) for row in recovered.rows] \
            == [(row.keys, row.score) for row in expected.rows]
        assert restored.ir.relations.document_count() \
            == engine.ir.relations.document_count()


class TestTornTails:
    """Crash mid-append: the on-disk tail is short or corrupt."""

    def _crashed(self, tmp_path):
        engine, server, _ = build_engine()
        root, wal_root = tmp_path / "snap", tmp_path / "wal"
        with WriteAheadLog(wal_root) as wal:
            service = SearchService(engine, wal=wal)
            service.snapshot(root)
            service.reindex("doc:intact", "fully acknowledged write")
        return root, wal_root, server

    def test_truncated_tail_recovers_to_last_intact_record(self, tmp_path):
        root, wal_root, server = self._crashed(tmp_path)
        segment = _active_segment(wal_root)
        torn = encode_record(Record(99, "reindex",
                                    {"url": "doc:torn", "text": "x"}))
        with segment.open("ab") as stream:
            stream.write(torn[:HEADER_BYTES + 5])  # crash mid-payload
        with telemetry_session() as telemetry:
            with WriteAheadLog(wal_root) as wal:
                assert wal.last_seq == 1  # the intact acknowledged write
                restored = _reload(root, server, wal)
            counters = telemetry.metrics.snapshot()["counters"]
        assert counters["wal.torn_records{reason=truncated_payload}"] == 1
        assert restored.ir.relations.doc_oid("doc:intact") is not None
        assert restored.ir.relations.doc_oid("doc:torn") is None

    def test_bit_flipped_tail_recovers_to_last_intact_record(self, tmp_path):
        root, wal_root, server = self._crashed(tmp_path)
        segment = _active_segment(wal_root)
        data = bytearray(segment.read_bytes())
        data[-3] ^= 0x40
        segment.write_bytes(bytes(data))
        with telemetry_session() as telemetry:
            with WriteAheadLog(wal_root) as wal:
                restored = _reload(root, server, wal)
            counters = telemetry.metrics.snapshot()["counters"]
        assert counters["wal.torn_records{reason=checksum}"] == 1
        # the flipped record (the acknowledged write) is lost from the
        # log, but the snapshot state is intact and the engine loads
        assert restored.ir.relations.doc_oid("doc:torn") is None
        assert restored.query_text(QUERY).rows

    def test_short_header_tail_is_silently_cut(self, tmp_path):
        root, wal_root, server = self._crashed(tmp_path)
        segment = _active_segment(wal_root)
        with segment.open("ab") as stream:
            stream.write(b"\x00\x00\x00")  # crash mid-header
        with WriteAheadLog(wal_root) as wal:
            restored = _reload(root, server, wal)
            # the truncation leaves a clean tail: appends continue
            assert wal.append("remove", {"url": "doc:intact"}) \
                == restored.wal_seq + 1
        assert restored.ir.relations.doc_oid("doc:intact") is not None


class TestFallbackGeneration:
    def test_fallback_load_replays_the_longer_tail(self, tmp_path):
        """Checkpoint truncation follows the *oldest retained*
        checkpoint, so an ``on_corrupt='fallback'`` load of an older
        generation still finds every record it needs."""
        engine, server, _ = build_engine()
        root, wal_root = tmp_path / "snap", tmp_path / "wal"
        with WriteAheadLog(wal_root) as wal:
            service = SearchService(engine, wal=wal)
            service.snapshot(root)
            service.reindex("doc:old-tail", "written after checkpoint one")
            service.snapshot(root)
            service.reindex("doc:new-tail", "written after checkpoint two")
        store = SnapshotStore(root)
        newest = store.path(store.current_generation())
        target = newest / "ir.jsonl"
        target.write_bytes(target.read_bytes()[:-7])  # corrupt newest
        with WriteAheadLog(wal_root) as wal:
            restored = _reload(root, server, wal, on_corrupt="fallback")
        # the older generation + the longer tail reach the same state
        assert restored.ir.relations.doc_oid("doc:old-tail") is not None
        assert restored.ir.relations.doc_oid("doc:new-tail") is not None


class TestReplaySkips:
    def test_deterministically_refailing_op_is_skipped(self, tmp_path):
        """Log-before-apply logs ops that then fail; replay refails
        them deterministically and keeps going."""
        engine, server, _ = build_engine()
        root, wal_root = tmp_path / "snap", tmp_path / "wal"
        with WriteAheadLog(wal_root) as wal:
            service = SearchService(engine, wal=wal)
            service.snapshot(root)
            with pytest.raises(Exception):
                service.remove("doc:never-indexed")
            service.reindex("doc:after", "a later acknowledged write")
        with telemetry_session() as telemetry:
            with WriteAheadLog(wal_root) as wal:
                restored = _reload(root, server, wal)
            counters = telemetry.metrics.snapshot()["counters"]
        assert counters["wal.replay_skipped{op=remove}"] == 1
        assert restored.ir.relations.doc_oid("doc:after") is not None
        assert restored.wal_seq == 2
