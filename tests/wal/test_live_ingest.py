"""Durability under traffic: concurrent ingest, crash, zero acked loss."""

import threading

import pytest

from repro.persistence import load_engine
from repro.service import SearchRequest, SearchService, ServicePolicy
from repro.wal import WriteAheadLog
from repro.webspace.schema import australian_open_schema

from tests.wal.conftest import build_engine

pytestmark = pytest.mark.wal

QUERY = "SELECT p.name FROM Player p WHERE " \
        "p.history CONTAINS 'Winner' TOP 20"

ROOMY = ServicePolicy(max_inflight=16, max_queue=256,
                      queue_timeout_ms=10000.0)


class TestZeroAcknowledgedWriteLoss:
    def test_crash_during_concurrent_ingest_loses_nothing_acked(
            self, tmp_path):
        """The headline guarantee: every write acknowledged before the
        crash is present after recovery — under concurrent writers,
        with the crash landing at an arbitrary point in the stream."""
        engine, server, _ = build_engine()
        root, wal_root = tmp_path / "snap", tmp_path / "wal"
        wal = WriteAheadLog(wal_root)
        service = SearchService(engine, ROOMY, wal=wal)
        service.snapshot(root)

        writers, per_writer = 4, 12
        acked = []
        acked_lock = threading.Lock()
        errors = []
        barrier = threading.Barrier(writers)

        def writer(tag):
            try:
                barrier.wait()
                for i in range(per_writer):
                    url = f"doc:ingest-{tag}-{i}"
                    service.reindex(url, f"champion trophy {tag} {i}")
                    with acked_lock:
                        acked.append(url)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(t,))
                   for t in range(writers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

        # crash: the process dies mid-flight — nothing is closed, the
        # in-memory engine is gone, only the fsynced log survives
        with WriteAheadLog(wal_root) as recovery_log:
            restored = load_engine(root, australian_open_schema(),
                                   server, wal=recovery_log)
        wal.close()

        lost = [url for url in acked
                if restored.ir.relations.doc_oid(url) is None]
        assert lost == []
        assert restored.wal_seq == len(acked)

    def test_acks_only_follow_durable_records(self, tmp_path):
        """What the service acked is exactly what the log holds — the
        log-before-apply protocol leaves no ack without a record."""
        engine, _, _ = build_engine()
        wal = WriteAheadLog(tmp_path / "wal")
        service = SearchService(engine, ROOMY, wal=wal)
        for i in range(5):
            service.reindex(f"doc:ack{i}", f"text {i}")
        records = wal.records()
        wal.close()
        assert [record.params["url"] for record in records] \
            == [f"doc:ack{i}" for i in range(5)]
        assert all(record.op == "reindex" for record in records)


class TestReadsDuringIngest:
    def test_readers_never_fail_while_writers_stream(self, tmp_path):
        """Reads keep completing (no errors, non-degraded) while a
        writer streams acknowledged, WAL-backed updates."""
        engine, _, _ = build_engine()
        wal = WriteAheadLog(tmp_path / "wal")
        service = SearchService(engine, ROOMY, wal=wal)
        stop = threading.Event()
        read_errors = []
        reads = []

        def reader(tag):
            while not stop.is_set():
                try:
                    response = service.search(SearchRequest(query=QUERY))
                    reads.append(response.result.degraded)
                except Exception as exc:  # pragma: no cover
                    read_errors.append(exc)
                    return

        readers = [threading.Thread(target=reader, args=(t,))
                   for t in range(3)]
        for thread in readers:
            thread.start()
        try:
            for i in range(25):
                service.reindex(f"doc:stream{i}", f"live update {i}")
        finally:
            stop.set()
            for thread in readers:
                thread.join()
        wal.close()
        assert read_errors == []
        assert len(reads) > 0
        assert not any(reads)  # no degraded responses either


class TestOnlineMaintenance:
    def test_batched_maintain_interleaves_with_readers(self, tmp_path):
        """``maintain(batch_size=1)`` drains the queue in bounded
        write-lock slices; readers run between the slices and the end
        state matches a monolithic drain."""
        engine, _, _ = build_engine()
        wal = WriteAheadLog(tmp_path / "wal")
        service = SearchService(engine, ROOMY, wal=wal)
        engine.upgrade_detector("tennis", "1.1.0")
        assert engine.maintenance_pending() > 1  # several tasks queued

        stop = threading.Event()
        read_errors = []
        reads = []

        def reader():
            while not stop.is_set():
                try:
                    service.search(SearchRequest(query=QUERY))
                    reads.append(1)
                except Exception as exc:  # pragma: no cover
                    read_errors.append(exc)
                    return

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            report = service.maintain(batch_size=1)
        finally:
            stop.set()
            thread.join()
        wal.close()
        assert read_errors == []
        assert reads
        assert engine.maintenance_pending() == 0
        assert report.detectors_rerun > 0

    def test_batched_maintain_logs_one_replayable_record(self, tmp_path):
        """Only the first batch writes a WAL record: replaying a single
        ``maintain`` drains the whole restored queue anyway."""
        engine, _, _ = build_engine()
        wal = WriteAheadLog(tmp_path / "wal")
        service = SearchService(engine, ROOMY, wal=wal)
        engine.upgrade_detector("tennis", "1.1.0")
        service.maintain(batch_size=1)
        records = wal.records()
        wal.close()
        assert [record.op for record in records] == ["maintain"]
