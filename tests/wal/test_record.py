"""The record format: framing, checksums, corruption taxonomy."""

import struct

import pytest

from repro.wal.record import (HEADER_BYTES, MAX_RECORD_BYTES, Record,
                              decode_records, encode_record, iter_records)

pytestmark = pytest.mark.wal


def test_round_trip_preserves_seq_op_and_params():
    record = Record(7, "reindex", {"url": "http://x", "text": "a b c"})
    decoded = decode_records(encode_record(record))
    assert decoded.torn is None
    assert decoded.records == [record]


def test_stream_of_records_decodes_in_order():
    records = [Record(i, "remove", {"url": f"u{i}"}) for i in range(1, 6)]
    data = b"".join(encode_record(record) for record in records)
    decoded = decode_records(data)
    assert decoded.records == records
    assert decoded.intact_bytes == len(data)
    assert list(iter_records(data)) == records


def test_params_default_to_empty_dict():
    data = encode_record(Record(1, "populate"))
    (record,) = decode_records(data).records
    assert record.params == {}


def test_truncated_header_is_torn_not_an_error():
    data = encode_record(Record(1, "populate"))
    decoded = decode_records(data + data[:HEADER_BYTES - 2])
    assert decoded.torn == "truncated_header"
    assert decoded.records == [Record(1, "populate")]
    assert decoded.intact_bytes == len(data)


def test_truncated_payload_is_torn_at_the_last_intact_record():
    first = encode_record(Record(1, "remove", {"url": "a"}))
    second = encode_record(Record(2, "remove", {"url": "b"}))
    decoded = decode_records(first + second[:-3])
    assert decoded.torn == "truncated_payload"
    assert [record.seq for record in decoded.records] == [1]
    assert decoded.intact_bytes == len(first)


def test_bit_flip_in_payload_fails_the_checksum():
    data = bytearray(encode_record(Record(1, "remove", {"url": "abc"})))
    data[HEADER_BYTES + 4] ^= 0x40
    decoded = decode_records(bytes(data))
    assert decoded.torn == "checksum"
    assert decoded.records == []
    assert decoded.intact_bytes == 0


def test_corrupt_length_field_is_rejected_as_oversized():
    data = bytearray(encode_record(Record(1, "populate")))
    struct.pack_into(">I", data, 0, MAX_RECORD_BYTES + 1)
    decoded = decode_records(bytes(data))
    assert decoded.torn == "oversized"
    assert decoded.records == []


def test_nothing_past_the_first_tear_is_trusted():
    intact = encode_record(Record(1, "populate"))
    flipped = bytearray(encode_record(Record(2, "populate")))
    flipped[HEADER_BYTES] ^= 0x01
    later = encode_record(Record(3, "populate"))
    decoded = decode_records(intact + bytes(flipped) + later)
    assert decoded.torn == "checksum"
    assert [record.seq for record in decoded.records] == [1]
    assert decoded.intact_bytes == len(intact)


def test_empty_stream_is_clean():
    decoded = decode_records(b"")
    assert decoded.torn is None
    assert decoded.records == []
    assert decoded.intact_bytes == 0
