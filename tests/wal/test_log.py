"""The log itself: append, group commit, rotation, truncation."""

import threading

import pytest

from repro.errors import SnapshotError
from repro.telemetry.runtime import telemetry_session
from repro.wal import WriteAheadLog

pytestmark = pytest.mark.wal


def _counter_total(counters, name):
    return sum(value for key, value in counters.items()
               if key == name or key.startswith(name + "{"))


class TestAppend:
    def test_append_assigns_dense_increasing_seqs(self, tmp_path):
        with WriteAheadLog(tmp_path) as log:
            seqs = [log.append("remove", {"url": f"u{i}"})
                    for i in range(5)]
        assert seqs == [1, 2, 3, 4, 5]

    def test_records_reads_back_what_was_appended(self, tmp_path):
        with WriteAheadLog(tmp_path) as log:
            log.append("reindex", {"url": "a", "text": "x y"})
            log.append("remove", {"url": "a"})
            records = log.records()
        assert [(r.seq, r.op) for r in records] == [(1, "reindex"),
                                                    (2, "remove")]
        assert records[0].params == {"url": "a", "text": "x y"}

    def test_records_after_seq_skips_the_covered_prefix(self, tmp_path):
        with WriteAheadLog(tmp_path) as log:
            for i in range(10):
                log.append("remove", {"url": f"u{i}"})
            tail = log.records(after_seq=7)
        assert [record.seq for record in tail] == [8, 9, 10]

    def test_append_after_close_raises(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        log.close()
        with pytest.raises(SnapshotError, match="closed"):
            log.append("remove", {"url": "u"})

    def test_start_seq_floors_the_sequence(self, tmp_path):
        """An engine restored from a snapshot with ``wal_seq=42`` but a
        fully truncated log must not reuse sequence numbers."""
        with WriteAheadLog(tmp_path, start_seq=42) as log:
            assert log.append("remove", {"url": "u"}) == 43


class TestGroupCommit:
    def test_concurrent_appenders_share_fsyncs(self, tmp_path):
        """Group commit: while one flush is in flight, later appenders
        wait and share a follow-up flush — total fsyncs stays well
        under one-per-append."""
        threads, per_thread = 8, 25
        with telemetry_session() as telemetry:
            with WriteAheadLog(tmp_path) as log:
                barrier = threading.Barrier(threads)
                errors = []

                def writer(index):
                    try:
                        barrier.wait()
                        for j in range(per_thread):
                            log.append("remove",
                                       {"url": f"u{index}-{j}"})
                    except BaseException as exc:  # pragma: no cover
                        errors.append(exc)

                workers = [threading.Thread(target=writer, args=(i,))
                           for i in range(threads)]
                for worker in workers:
                    worker.start()
                for worker in workers:
                    worker.join()
                assert not errors
                assert log.last_seq == threads * per_thread
                records = log.records()
            counters = telemetry.metrics.snapshot()["counters"]
        appends = _counter_total(counters, "wal.appends")
        fsyncs = _counter_total(counters, "wal.fsyncs")
        assert appends == threads * per_thread
        assert [record.seq for record in records] \
            == list(range(1, threads * per_thread + 1))
        assert 0 < fsyncs <= appends

    def test_every_append_is_covered_by_an_fsync_before_return(
            self, tmp_path):
        """Single-threaded, each append pays its own flush — the
        batching never skips coverage, it only shares it."""
        with telemetry_session() as telemetry:
            with WriteAheadLog(tmp_path) as log:
                for i in range(4):
                    log.append("remove", {"url": f"u{i}"})
            counters = telemetry.metrics.snapshot()["counters"]
        assert _counter_total(counters, "wal.fsyncs") == 4


class TestCheckpoint:
    def test_checkpoint_rotates_onto_a_generation_named_segment(
            self, tmp_path):
        with WriteAheadLog(tmp_path) as log:
            for i in range(3):
                log.append("remove", {"url": f"u{i}"})
            # seq 0: nothing is covered yet, so the old segment stays
            log.checkpoint(0, generation=7)
            log.append("remove", {"url": "after"})
        names = sorted(path.name for path in tmp_path.iterdir())
        assert names == ["0000000000000001-g00000000.wal",
                         "0000000000000004-g00000007.wal"]

    def test_checkpoint_drops_fully_covered_segments(self, tmp_path):
        with telemetry_session() as telemetry:
            with WriteAheadLog(tmp_path) as log:
                for i in range(3):
                    log.append("remove", {"url": f"u{i}"})
                log.checkpoint(0, generation=1)  # rotate only
                for i in range(3):
                    log.append("remove", {"url": f"v{i}"})
                # seqs 1..6 all covered: both older segments go
                dropped = log.checkpoint(log.last_seq, generation=2)
                assert dropped == 2
                assert log.records() == []
                assert log.last_seq == 6
            counters = telemetry.metrics.snapshot()["counters"]
        assert _counter_total(counters, "wal.truncated_segments") == 2
        assert len(list(tmp_path.iterdir())) == 1

    def test_partially_covered_segment_is_kept(self, tmp_path):
        with WriteAheadLog(tmp_path) as log:
            for i in range(5):
                log.append("remove", {"url": f"u{i}"})
            dropped = log.checkpoint(3, generation=1)
            assert dropped == 0
            assert [record.seq for record in log.records(after_seq=3)] \
                == [4, 5]

    def test_appends_continue_after_rotation(self, tmp_path):
        with WriteAheadLog(tmp_path) as log:
            log.append("remove", {"url": "a"})
            log.checkpoint(1, generation=1)
            assert log.append("remove", {"url": "b"}) == 2
            assert [record.seq for record in log.records(after_seq=1)] \
                == [2]


class TestReopen:
    def test_reopen_resumes_the_sequence(self, tmp_path):
        with WriteAheadLog(tmp_path) as log:
            for i in range(4):
                log.append("remove", {"url": f"u{i}"})
        with WriteAheadLog(tmp_path) as reopened:
            assert reopened.last_seq == 4
            assert reopened.append("remove", {"url": "next"}) == 5

    def test_reopen_across_rotated_segments(self, tmp_path):
        with WriteAheadLog(tmp_path) as log:
            log.append("remove", {"url": "a"})
            log.checkpoint(0, generation=1)  # rotate, keep everything
            log.append("remove", {"url": "b"})
        with WriteAheadLog(tmp_path) as reopened:
            assert reopened.last_seq == 2
            assert [record.seq for record in reopened.records()] == [1, 2]

    def test_status_is_json_friendly(self, tmp_path):
        import json

        with WriteAheadLog(tmp_path) as log:
            log.append("remove", {"url": "a"})
            status = log.status()
        assert json.loads(json.dumps(status)) == status
        assert status["last_seq"] == 1
        assert status["segments"] == 1
        assert status["bytes"] > 0
