"""Span nesting, timing and the in-memory collector."""

import threading

import pytest

from repro.telemetry.trace import NULL_SPAN, NullTracer, Tracer


class TestNesting:
    def test_children_attach_to_enclosing_span(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("child") as child:
                with tracer.span("grandchild"):
                    pass
        assert parent.children == [child]
        assert child.children[0].name == "grandchild"
        assert tracer.roots == [parent]

    def test_sibling_spans_share_the_parent(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        assert [child.name for child in parent.children] == ["a", "b"]

    def test_sequential_roots_all_collected(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [root.name for root in tracer.roots] == ["first", "second"]

    def test_depth_counts_nesting_levels(self):
        tracer = Tracer()
        with tracer.span("a") as a:
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        assert a.depth() == 3

    def test_current_tracks_the_open_span(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("a") as a:
            assert tracer.current() is a
        assert tracer.current() is None

    def test_threads_get_independent_stacks(self):
        tracer = Tracer()
        seen = {}

        def worker():
            with tracer.span("thread-root") as span:
                seen["children"] = list(span.children)

        with tracer.span("main-root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        names = sorted(root.name for root in tracer.roots)
        assert names == ["main-root", "thread-root"]
        assert seen["children"] == []


class TestMeasurement:
    def test_duration_is_monotonic_nonnegative(self):
        tracer = Tracer()
        with tracer.span("timed") as span:
            sum(range(100))
        assert span.duration_ns >= 0
        assert span.duration_ms == pytest.approx(span.duration_ns / 1e6)

    def test_unfinished_span_has_no_duration(self):
        tracer = Tracer()
        span = tracer.span("pending")
        assert span.duration_ms is None

    def test_attributes_at_creation_and_later(self):
        tracer = Tracer()
        with tracer.span("s", mode="fast") as span:
            span.set_attribute("rows", 3)
            span.set_attributes(cached=True)
        assert span.attributes == {"mode": "fast", "rows": 3,
                                   "cached": True}

    def test_exception_marks_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("failing") as span:
                raise ValueError("boom")
        assert span.status == "error"
        assert span.error == "ValueError: boom"
        assert span.end_ns is not None

    def test_find_all_walks_the_forest(self):
        tracer = Tracer()
        with tracer.span("query"):
            with tracer.span("op"):
                pass
        with tracer.span("query"):
            pass
        assert len(tracer.find_all("query")) == 2
        assert len(tracer.find_all("op")) == 1

    def test_reset_clears_collected_roots(self):
        tracer = Tracer()
        with tracer.span("old"):
            pass
        tracer.reset()
        assert tracer.roots == []


class TestNullTracer:
    def test_span_is_shared_noop(self):
        tracer = NullTracer()
        with tracer.span("anything", key="value") as span:
            span.set_attribute("dropped", 1)
            assert span is NULL_SPAN
        assert tracer.roots == ()
        assert tracer.find_all("anything") == []
        assert tracer.current() is None

    def test_null_span_is_reentrant(self):
        tracer = NullTracer()
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                assert inner is NULL_SPAN
        assert NULL_SPAN.attributes == {}
