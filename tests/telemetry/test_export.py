"""JSON report round-trips and the text renderings."""

from repro.telemetry import (Telemetry, build_report, format_report,
                             format_snapshot, format_span, load_report,
                             span_from_dict, span_to_dict, write_report)


def make_session() -> Telemetry:
    telemetry = Telemetry()
    with telemetry.tracer.span("query", schema="s") as span:
        with telemetry.tracer.span("plan.content"):
            with telemetry.tracer.span("op.IrProbe", matched=2):
                pass
        span.set_attribute("rows", 1)
    telemetry.metrics.counter("monetdb.tuples_touched", server="n0").add(9)
    telemetry.metrics.gauge("depth").set(3)
    telemetry.metrics.histogram("lat_ms", buckets=(1, 10)).observe(4)
    return telemetry


class TestSpanRoundTrip:
    def test_dict_round_trip_preserves_every_field(self):
        telemetry = make_session()
        root = telemetry.tracer.roots[0]
        rebuilt = span_from_dict(span_to_dict(root))
        assert span_to_dict(rebuilt) == span_to_dict(root)
        assert rebuilt.name == "query"
        assert rebuilt.children[0].children[0].name == "op.IrProbe"
        assert rebuilt.duration_ns == root.duration_ns

    def test_error_status_round_trips(self):
        telemetry = Telemetry()
        try:
            with telemetry.tracer.span("bad"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        root = telemetry.tracer.roots[0]
        rebuilt = span_from_dict(span_to_dict(root))
        assert rebuilt.status == "error"
        assert rebuilt.error == "RuntimeError: x"


class TestReport:
    def test_build_report_carries_spans_and_metrics(self):
        telemetry = make_session()
        report = build_report(telemetry, meta={"bench": "unit"})
        assert report["meta"] == {"bench": "unit"}
        assert report["spans"][0]["name"] == "query"
        assert report["metrics"]["counters"][
            "monetdb.tuples_touched{server=n0}"] == 9
        assert report["metrics"]["histograms"]["lat_ms"]["count"] == 1

    def test_write_and_load_round_trip(self, tmp_path):
        telemetry = make_session()
        path = tmp_path / "BENCH_unit.json"
        written = write_report(path, telemetry, meta={"k": "v"})
        assert load_report(path) == written

    def test_report_is_json_not_python_repr(self, tmp_path):
        telemetry = make_session()
        path = tmp_path / "r.json"
        write_report(path, telemetry)
        text = path.read_text()
        assert "'" not in text.replace("\\'", "")


class TestTextRendering:
    def test_format_span_indents_children(self):
        telemetry = make_session()
        text = format_span(telemetry.tracer.roots[0])
        lines = text.splitlines()
        assert lines[0].startswith("query")
        assert lines[1].startswith("  plan.content")
        assert lines[2].startswith("    op.IrProbe")
        assert "(matched=2)" in lines[2]
        assert "ms]" in lines[0]

    def test_format_snapshot_lists_every_kind(self):
        telemetry = make_session()
        text = format_snapshot(telemetry.metrics.snapshot())
        assert "counter monetdb.tuples_touched{server=n0} 9" in text
        assert "gauge depth 3" in text
        assert "histogram lat_ms count=1" in text

    def test_format_report_combines_sections(self):
        telemetry = make_session()
        text = format_report(telemetry)
        assert "== trace ==" in text
        assert "== metrics ==" in text
        assert "query" in text

    def test_format_report_empty_session(self):
        text = format_report(Telemetry())
        assert "(no spans recorded)" in text
        assert "(no metrics)" in text
