"""The global default: switching, scoping, and the no-op mode."""

import pytest

from repro.telemetry import (NULL_TELEMETRY, Telemetry, disable, enable,
                             get_telemetry, is_enabled, set_telemetry,
                             telemetry_session)


@pytest.fixture(autouse=True)
def restore_global():
    previous = set_telemetry(NULL_TELEMETRY)
    yield
    set_telemetry(previous)


class TestSwitching:
    def test_default_is_the_null_instance(self):
        assert get_telemetry() is NULL_TELEMETRY
        assert not is_enabled()

    def test_enable_installs_a_live_session(self):
        telemetry = enable()
        assert get_telemetry() is telemetry
        assert is_enabled()

    def test_disable_returns_to_null(self):
        enable()
        disable()
        assert get_telemetry() is NULL_TELEMETRY

    def test_set_telemetry_returns_previous(self):
        first = enable()
        second = Telemetry()
        assert set_telemetry(second) is first
        assert get_telemetry() is second

    def test_session_restores_previous_on_exit(self):
        outer = enable()
        with telemetry_session() as inner:
            assert get_telemetry() is inner
            assert inner is not outer
        assert get_telemetry() is outer

    def test_session_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with telemetry_session():
                raise RuntimeError("x")
        assert get_telemetry() is NULL_TELEMETRY

    def test_reset_clears_both_halves(self):
        telemetry = Telemetry()
        telemetry.metrics.counter("c").add(1)
        with telemetry.tracer.span("s"):
            pass
        telemetry.reset()
        assert telemetry.metrics.counter("c").value == 0
        assert telemetry.tracer.roots == []


class TestNoOpMode:
    def test_instrumented_code_records_nothing_when_off(self):
        telemetry = get_telemetry()
        with telemetry.tracer.span("query", rows=5) as span:
            span.set_attribute("ignored", True)
            telemetry.metrics.counter("work").add(100)
        assert telemetry.tracer.roots == ()
        assert telemetry.metrics.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}}

    def test_monet_server_accounting_survives_noop_mode(self):
        # cost accounting is correctness-bearing (benchmarks assert on
        # it), so it must keep counting with global telemetry off
        from repro.monetdb.server import MonetServer

        server = MonetServer("offline")
        server.charge(5)
        assert server.tuples_touched == 5
        server.reset_accounting()
        assert server.tuples_touched == 0

    def test_server_built_under_session_lands_in_registry(self):
        from repro.monetdb.server import MonetServer

        with telemetry_session() as telemetry:
            server = MonetServer("n0")
            server.charge(7)
            snap = telemetry.metrics.snapshot()
            assert snap["counters"][
                "monetdb.tuples_touched{server=n0}"] == 7

    def test_topn_runs_identically_with_telemetry_off_and_on(self):
        from repro.ir.relations import IrRelations
        from repro.ir.fragmentation import fragment_by_idf
        from repro.ir.ranking import query_term_oids
        from repro.ir.topn import topn_fragmented

        relations = IrRelations()
        relations.add_documents([
            (f"http://x/d{i}", f"alpha beta gamma{i % 3} delta")
            for i in range(20)])
        fragments = fragment_by_idf(relations, 4)
        terms = query_term_oids(relations, "alpha gamma0")

        off = topn_fragmented(fragments, terms, 5)
        with telemetry_session() as telemetry:
            on = topn_fragmented(fragments, terms, 5)
            assert telemetry.metrics.counter("ir.topn_queries").value == 1
            assert telemetry.metrics.counter(
                "ir.topn_tuples_read").value == on.tuples_read
            assert len(telemetry.tracer.find_all("ir.topn")) == 1
        assert on.ranking == off.ranking
        assert on.tuples_read == off.tuples_read
