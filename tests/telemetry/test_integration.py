"""End-to-end telemetry over the three-level stack.

The headline check of the subsystem: a distributed top-N query's
per-node registry counters must agree exactly with the hand-carried
accounting of :class:`DistributedQueryResult`, and an integrated
engine query must produce the query → plan stage → operator span tree.
"""

import pytest

from repro.core.config import EngineConfig, ExecutionPolicy
from repro.core.engine import SearchEngine
from repro.ir.distributed import DistributedIndex
from repro.monetdb.server import Cluster
from repro.telemetry import telemetry_session
from repro.web.ausopen import build_ausopen_site
from repro.webspace.schema import australian_open_schema


def corpus(documents: int = 40):
    words = ["alpha", "beta", "gamma", "delta", "grandslam", "finalist"]
    docs = []
    for d in range(documents):
        body = " ".join(words[i % len(words)]
                        for i in range(d % 7 + 3))
        if d % 10 == 0:
            body += " champion" * (d // 10 + 1)
        docs.append((f"http://x/d{d:03d}", body))
    return docs


class TestDistributedAccounting:
    def test_per_node_counters_match_result_accounting(self):
        with telemetry_session() as telemetry:
            cluster = Cluster(3)
            index = DistributedIndex(cluster, fragment_count=4)
            index.add_documents(corpus())
            telemetry.reset()  # only the query should be on the books
            result = index.query("champion alpha",
                                 policy=ExecutionPolicy(n=5))

            per_node = result.tuples_read_per_node()
            snapshot = telemetry.metrics.snapshot()["counters"]
            for server in cluster:
                assert snapshot[
                    f"ir.node_tuples_read{{node={server.name}}}"] \
                    == per_node[server.name]
                assert snapshot[
                    f"monetdb.tuples_touched{{server={server.name}}}"] \
                    == per_node[server.name]
            assert telemetry.metrics.sum_counters("ir.node_tuples_read") \
                == result.total_tuples()

    def test_distributed_query_span_structure(self):
        with telemetry_session() as telemetry:
            cluster = Cluster(2)
            index = DistributedIndex(cluster, fragment_count=4)
            index.add_documents(corpus())
            telemetry.reset()
            index.query("champion", policy=ExecutionPolicy(n=5))

            roots = telemetry.tracer.roots
            assert [root.name for root in roots] == ["ir.distributed_query"]
            root = roots[0]
            assert len(root.find_all("ir.node_topn")) == 2
            assert len(root.find_all("ir.merge")) == 1
            # distributed_query -> node_topn -> topn: three levels
            assert root.depth() >= 3

    def test_merged_ranking_unchanged_by_instrumentation(self):
        cluster = Cluster(2)
        index = DistributedIndex(cluster, fragment_count=4)
        index.add_documents(corpus())
        plain = index.query("champion alpha",
                            policy=ExecutionPolicy(n=5))
        with telemetry_session():
            traced = index.query("champion alpha",
                                 policy=ExecutionPolicy(n=5))
        assert traced.ranking == plain.ranking
        assert traced.tuples_read_per_node() == plain.tuples_read_per_node()


@pytest.fixture(scope="module")
def clustered_engine():
    server, _ = build_ausopen_site(players=8, articles=4, videos=2,
                                   frames_per_shot=6)
    engine = SearchEngine(australian_open_schema(), server,
                          EngineConfig(cluster_size=3, fragment_count=4))
    engine.populate()
    return engine


class TestEngineSpans:
    def test_query_span_tree_nests_three_levels(self, clustered_engine):
        with telemetry_session() as telemetry:
            clustered_engine.query_text(
                "SELECT p.name FROM Player p WHERE p.plays = 'left' "
                "AND p.history CONTAINS 'Winner' TOP 5")
            roots = [root for root in telemetry.tracer.roots
                     if root.name == "query"]
            assert len(roots) == 1
            root = roots[0]
            # query -> plan stage -> operator (and deeper into the IR plan)
            assert root.depth() >= 3
            stages = {child.name for child in root.children}
            assert {"plan.bind", "plan.select", "plan.content",
                    "plan.join", "plan.rank"} <= stages
            content = root.find_all("plan.content")[0]
            probe = content.find_all("op.IrProbe")[0]
            assert probe.find_all("ir.distributed_query")

    def test_engine_counters_cover_all_levels(self, clustered_engine):
        # conceptual lookups are cached across queries; start cold so the
        # query charges the conceptual server
        clustered_engine._index.invalidate()
        with telemetry_session() as telemetry:
            clustered_engine.query_text(
                "SELECT p.name FROM Player p "
                "WHERE p.history CONTAINS 'Winner' TOP 5")
            snapshot = telemetry.metrics.snapshot()["counters"]
            assert snapshot["engine.queries"] == 1
            assert snapshot["translate.operators{operator=IrProbe}"] == 1
            conceptual = snapshot["monetdb.tuples_touched{server=conceptual}"]
            assert conceptual > 0

    def test_node_tuples_sum_matches_last_distributed_result(
            self, clustered_engine):
        with telemetry_session() as telemetry:
            # cache=False: the assertion compares this run's counters to
            # this run's per-node accounting, so the query must execute
            clustered_engine.query_text(
                "SELECT p.name FROM Player p "
                "WHERE p.history CONTAINS 'Winner' TOP 5",
                policy=ExecutionPolicy(cache=False))
            last = clustered_engine.ir.last_result
            assert last is not None
            assert telemetry.metrics.sum_counters("ir.node_tuples_read") \
                == last.total_tuples()

    def test_results_identical_with_and_without_telemetry(
            self, clustered_engine):
        source = ("SELECT p.name FROM Player p WHERE p.plays = 'left' "
                  "AND p.history CONTAINS 'Winner' TOP 5")
        clustered_engine.query_text(source)  # warm the conceptual caches
        plain = clustered_engine.query_text(source)
        with telemetry_session():
            traced = clustered_engine.query_text(source)
        assert [row.keys for row in traced.rows] \
            == [row.keys for row in plain.rows]
        assert traced.tuples_touched == plain.tuples_touched
