"""Instrument arithmetic and registry semantics."""

import threading

import pytest

from repro.telemetry.metrics import (Counter, Gauge, Histogram,
                                     MetricsRegistry, NullMetricsRegistry)


class TestCounter:
    def test_add_accumulates(self):
        counter = Counter("c")
        counter.add()
        counter.add(41)
        assert counter.value == 42

    def test_reset_zeroes(self):
        counter = Counter("c")
        counter.add(7)
        counter.reset()
        assert counter.value == 0

    def test_negative_add_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").add(-1)

    def test_rendered_name_includes_sorted_labels(self):
        counter = Counter("work", {"b": "2", "a": "1"})
        assert counter.render_name() == "work{a=1,b=2}"

    def test_concurrent_adds_do_not_lose_updates(self):
        counter = Counter("c")

        def worker():
            for _ in range(1000):
                counter.add()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000


class TestGauge:
    def test_last_set_wins(self):
        gauge = Gauge("g")
        gauge.set(3)
        gauge.set(9)
        assert gauge.value == 9

    def test_add_adjusts(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.add(2)
        assert gauge.value == 7


class TestHistogram:
    def test_bucketing_is_upper_bound_inclusive(self):
        histogram = Histogram("h", buckets=(10, 20, 30))
        for value in (5, 10, 11, 25, 99):
            histogram.observe(value)
        assert histogram.bucket_counts() == {
            "<=10": 2, "<=20": 1, "<=30": 1, "+Inf": 1}

    def test_count_and_sum_track_observations(self):
        histogram = Histogram("h", buckets=(1, 2))
        histogram.observe(0.5)
        histogram.observe(1.5)
        assert histogram.count == 2
        assert histogram.sum == pytest.approx(2.0)

    def test_buckets_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(5, 5))

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_reset(self):
        histogram = Histogram("h", buckets=(1,))
        histogram.observe(3)
        histogram.reset()
        assert histogram.count == 0
        assert histogram.bucket_counts() == {"<=1": 0, "+Inf": 0}


class TestRegistry:
    def test_same_name_and_labels_memoize(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", server="n0")
        b = registry.counter("hits", server="n0")
        assert a is b

    def test_different_labels_fan_out(self):
        registry = MetricsRegistry()
        registry.counter("hits", server="n0").add(1)
        registry.counter("hits", server="n1").add(2)
        assert registry.sum_counters("hits") == 3

    def test_snapshot_by_kind(self):
        registry = MetricsRegistry()
        registry.counter("c").add(4)
        registry.gauge("g").set(2)
        registry.histogram("h", buckets=(1,)).observe(0)
        snap = registry.snapshot()
        assert snap["counters"]["c"] == 4
        assert snap["gauges"]["g"] == 2
        assert snap["histograms"]["h"]["count"] == 1

    def test_adopt_surfaces_external_instrument(self):
        registry = MetricsRegistry()
        counter = Counter("monetdb.tuples_touched", {"server": "n0"})
        registry.adopt(counter)
        counter.add(12)
        assert snapshot_value(registry) == 12

    def test_adopt_collision_gets_instance_label(self):
        registry = MetricsRegistry()
        first = Counter("x", {"server": "s"})
        second = Counter("x", {"server": "s"})
        registry.adopt(first)
        registry.adopt(second)
        assert second.labels["instance"] == "2"
        assert len(registry.instruments("counter")) == 2

    def test_adopt_is_idempotent_per_instrument(self):
        registry = MetricsRegistry()
        counter = Counter("x")
        registry.adopt(counter)
        registry.adopt(counter)
        assert len(registry.instruments()) == 1

    def test_reset_zeroes_in_place(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.add(3)
        registry.reset()
        assert counter.value == 0
        assert registry.counter("c") is counter


def snapshot_value(registry):
    return registry.snapshot()["counters"][
        "monetdb.tuples_touched{server=n0}"]


class TestNullRegistry:
    def test_everything_discards(self):
        registry = NullMetricsRegistry()
        registry.counter("c", any="label").add(99)
        registry.gauge("g").set(5)
        registry.histogram("h").observe(1)
        assert registry.counter("c").value == 0
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}}
        assert registry.sum_counters("c") == 0

    def test_shared_instances(self):
        registry = NullMetricsRegistry()
        assert registry.counter("a") is registry.counter("b")
