"""The bounded, thread-safe LRU underneath every query cache."""

import threading

import pytest

from repro.cache import MISS, LruCache
from repro.telemetry import telemetry_session

pytestmark = pytest.mark.cache


class TestBasics:
    def test_get_put_roundtrip(self):
        cache = LruCache(capacity=4)
        assert cache.get("a") is MISS
        cache.put("a", [1, 2])
        assert cache.get("a") == [1, 2]

    def test_none_is_a_cacheable_value(self):
        cache = LruCache(capacity=4)
        cache.put("a", None)
        assert cache.get("a") is None
        assert cache.get("missing") is MISS

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LruCache(capacity=0)
        with pytest.raises(ValueError):
            LruCache(capacity=4).resize(0)

    def test_invalidate_drops_everything(self):
        cache = LruCache(capacity=4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.invalidate() == 2
        assert len(cache) == 0
        assert cache.get("a") is MISS


class TestEviction:
    def test_least_recently_used_goes_first(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        assert cache.get("a") is MISS
        assert cache.get("b") == 2
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_get_freshens_lru_order(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")       # "b" is now least recently used
        cache.put("c", 3)    # evicts "b"
        assert cache.get("a") == 1
        assert cache.get("b") is MISS

    def test_resize_shrink_evicts(self):
        cache = LruCache(capacity=4)
        for i in range(4):
            cache.put(i, i)
        cache.resize(2)
        assert len(cache) == 2
        assert cache.get(0) is MISS
        assert cache.get(3) == 3

    def test_stats_shape(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        stats = cache.stats()
        assert stats == {"entries": 1, "capacity": 2, "hits": 1,
                         "misses": 1, "evictions": 0}


class TestTelemetry:
    def test_hit_miss_eviction_counters(self):
        with telemetry_session() as telemetry:
            cache = LruCache(capacity=1, name="unit")
            cache.get("a")           # miss
            cache.put("a", 1)
            cache.get("a")           # hit
            cache.put("b", 2)        # evicts "a"
            counters = telemetry.metrics.snapshot()["counters"]
            assert counters["cache.miss{cache=unit}"] == 1
            assert counters["cache.hit{cache=unit}"] == 1
            assert counters["cache.eviction{cache=unit}"] == 1


class TestThreadSafety:
    def test_concurrent_hammer_stays_bounded_and_consistent(self):
        cache = LruCache(capacity=8)
        errors = []

        def worker(base):
            try:
                for i in range(300):
                    key = (base + i) % 12
                    value = cache.get(key)
                    if value is MISS:
                        cache.put(key, key * 10)
                    else:
                        assert value == key * 10
            except Exception as error:  # pragma: no cover - diagnostic
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 8
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == 6 * 300
