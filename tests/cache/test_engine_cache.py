"""The integrated engine's query cache, the search_urls parity fix, the
CLI cache knobs, and the warm-query telemetry surface."""

import json

import pytest

from repro.core.config import EngineConfig, ExecutionPolicy
from repro.core.engine import SearchEngine
from repro.ir.engine import ClusterIrEngine, IrEngine
from repro.web.ausopen import build_ausopen_site
from repro.webspace.schema import australian_open_schema

from tests.cache.conftest import corpus

pytestmark = pytest.mark.cache

CONTAINS = ("SELECT p.name FROM Player p "
            "WHERE p.history CONTAINS 'Winner' TOP 5")


@pytest.fixture(scope="module")
def search_engine():
    server, truth = build_ausopen_site(players=8, articles=4, videos=2,
                                       frames_per_shot=6)
    engine = SearchEngine(australian_open_schema(), server, EngineConfig())
    engine.populate()
    return engine, server, truth


class TestQueryTextCache:
    def test_warm_query_is_a_hit_with_identical_rows(self, search_engine):
        engine, _, _ = search_engine
        engine.query_cache.invalidate()
        cold = engine.query_text(CONTAINS)
        assert not cold.cache_hit
        warm = engine.query_text(CONTAINS)
        assert warm.cache_hit
        assert warm.to_dict()["cache_hit"] is True
        assert "query cache" in warm.explain()
        assert [row.keys for row in warm.rows] \
            == [row.keys for row in cold.rows]
        assert [row.score for row in warm.rows] \
            == [row.score for row in cold.rows]

    def test_ir_write_invalidates_the_engine_cache(self, search_engine):
        engine, _, _ = search_engine
        engine.query_cache.invalidate()
        engine.query_text(CONTAINS)
        url = next(url for _, url in engine.ir.relations.D
                   if url.endswith(":history"))
        engine.ir.reindex(url, "Winner Winner of everything")
        after = engine.query_text(CONTAINS)
        assert not after.cache_hit

    def test_conceptual_write_invalidates(self, search_engine):
        engine, server, truth = search_engine
        engine.query_cache.invalidate()
        generation = engine._generation()
        engine.query_text(CONTAINS)
        # a changed source page flows through recrawl into the
        # conceptual store, bumping its generation
        player = truth.player("monica-seles")
        page = server.get(player.page_path)
        server.add_page(player.page_path,
                        page.body.replace(">USA<", ">Ruritania<"))
        report = engine.recrawl()
        assert report.documents_replaced == 1
        assert engine._generation() != generation
        assert not engine.query_text(CONTAINS).cache_hit

    def test_no_cache_policy_bypasses(self, search_engine):
        engine, _, _ = search_engine
        engine.query_cache.invalidate()
        before = engine.query_cache.stats()
        policy = ExecutionPolicy(cache=False)
        engine.query_text(CONTAINS, policy=policy)
        engine.query_text(CONTAINS, policy=policy)
        after = engine.query_cache.stats()
        assert after["entries"] == 0
        # the hit/miss books did not move: the cache was never consulted
        assert after["hits"] == before["hits"]
        assert after["misses"] == before["misses"]


class TestSearchUrlsParity:
    """Regression: IrEngine.search_urls silently ignored ``policy``."""

    def test_single_node_honors_policy_n(self):
        ir = IrEngine()
        for url, text in corpus(documents=30):
            ir.index(url, text)
        assert len(ir.search_urls("trophy champion w0",
                                  policy=ExecutionPolicy(n=3))) == 3
        assert len(ir.search_urls("trophy champion w0",
                                  policy=ExecutionPolicy(n=7))) == 7

    def test_single_and_clustered_surfaces_agree(self):
        docs = corpus(documents=30)
        single = IrEngine(fragment_count=4)
        for url, text in docs:
            single.index(url, text)
        clustered = ClusterIrEngine(cluster_size=3, fragment_count=4)
        clustered.index.add_documents(docs)
        policy = ExecutionPolicy(n=5)
        flat = single.search_urls("trophy champion w0", policy=policy)
        distributed = clustered.search_urls("trophy champion w0",
                                            policy=policy)
        assert [url for url, _ in flat] == [url for url, _ in distributed]
        for (_, left), (_, right) in zip(flat, distributed):
            assert left == pytest.approx(right)

    def test_legacy_n_kwarg_is_rejected(self):
        ir = IrEngine()
        for url, text in corpus(documents=20):
            ir.index(url, text)
        with pytest.raises(TypeError, match="ExecutionPolicy"):
            ir.search_urls("trophy champion", n=2)

    def test_clustered_legacy_n_kwarg_is_rejected_too(self):
        clustered = ClusterIrEngine(cluster_size=2)
        clustered.index.add_documents(corpus(documents=20))
        with pytest.raises(TypeError, match="ExecutionPolicy"):
            clustered.search_urls("trophy champion", n=2)


class TestCliFlags:
    def test_policy_flags_include_the_cache_knobs(self):
        from repro.cli import _parser, _policy_from_args

        args = _parser().parse_args(
            ["query", "--snapshot", "snap", "--no-cache",
             "--cache-size", "7", CONTAINS])
        policy = _policy_from_args(args)
        assert policy.cache is False
        assert policy.cache_size == 7

    def test_cache_defaults_are_on(self):
        from repro.cli import _parser, _policy_from_args

        args = _parser().parse_args(["query", "--snapshot", "snap",
                                     CONTAINS])
        policy = _policy_from_args(args)
        assert policy.cache is True
        assert policy.cache_size == 128

    def test_stats_warm_reports_the_cache_hit(self, tmp_path, capsys):
        from repro.cli import main

        report_path = tmp_path / "warm.json"
        code = main(["stats", "--site", "ausopen", "--players", "4",
                     "--articles", "2", "--videos", "1", "--frames", "4",
                     "--query", CONTAINS, "--warm",
                     "--json", str(report_path)])
        assert code == 0
        report = json.loads(report_path.read_text())
        counters = report["metrics"]["counters"]
        hits = [value for name, value in counters.items()
                if name.startswith("cache.hit")]
        assert sum(hits) >= 1
        assert report["meta"]["result"]["cache_hit"] is True
