"""The cluster-level query cache: per-node generations, degraded results,
thread safety under the parallel executor."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.cluster import ExecutionPolicy, FaultInjector
from repro.telemetry import telemetry_session

from tests.cluster.conftest import build_index, corpus

pytestmark = pytest.mark.cache

QUERY = "trophy melbourne w0 w1"


class TestHitAfterWarm:
    def test_second_query_is_a_cache_hit(self):
        index = build_index(cluster_size=3)
        cold = index.query(QUERY, policy=ExecutionPolicy(n=5))
        assert not cold.cache_hit
        warm = index.query(QUERY, policy=ExecutionPolicy(n=5))
        assert warm.cache_hit
        assert warm.ranking == cold.ranking
        assert warm.tuples_read_per_node() == cold.tuples_read_per_node()

    def test_cache_hit_surfaces_on_dict_and_explain(self):
        index = build_index(cluster_size=2)
        index.query(QUERY, policy=ExecutionPolicy(n=5))
        warm = index.query(QUERY, policy=ExecutionPolicy(n=5))
        assert warm.to_dict()["cache_hit"] is True
        assert "cached" in warm.explain()

    def test_cached_ranking_is_bit_identical_to_uncached(self):
        index = build_index(cluster_size=3)
        uncached = index.query(QUERY,
                               policy=ExecutionPolicy(n=10, cache=False))
        index.query(QUERY, policy=ExecutionPolicy(n=10))
        cached = index.query(QUERY, policy=ExecutionPolicy(n=10))
        assert cached.cache_hit
        assert cached.ranking == uncached.ranking

    def test_policy_knobs_partition_the_cache(self):
        index = build_index(cluster_size=2)
        index.query(QUERY, policy=ExecutionPolicy(n=5))
        pruned_off = index.query(QUERY,
                                 policy=ExecutionPolicy(n=5, prune=False))
        assert not pruned_off.cache_hit


class TestInvalidation:
    def test_add_documents_invalidates(self):
        index = build_index(cluster_size=3, documents=40)
        index.query(QUERY, policy=ExecutionPolicy(n=5))
        index.add_documents([("http://site/extra0", "trophy melbourne"),
                             ("http://site/extra1", "trophy trophy")])
        after = index.query(QUERY, policy=ExecutionPolicy(n=5))
        assert not after.cache_hit

    def test_add_document_invalidates(self):
        index = build_index(cluster_size=2, documents=30)
        before = index.query("trophy", policy=ExecutionPolicy(n=5))
        index.add_document("http://site/solo", "trophy " * 10)
        after = index.query("trophy", policy=ExecutionPolicy(n=5))
        assert not after.cache_hit
        urls = {index.central.doc_url(doc) for doc, _ in after.ranking}
        assert "http://site/solo" in urls
        assert before.ranking != after.ranking

    def test_remove_document_invalidates(self):
        index = build_index(cluster_size=2, documents=30)
        result = index.query("trophy", policy=ExecutionPolicy(n=5))
        top_url = index.central.doc_url(result.ranking[0][0])
        index.remove_document(top_url)
        after = index.query("trophy", policy=ExecutionPolicy(n=5))
        assert not after.cache_hit
        assert top_url not in {index.central.doc_url(doc)
                               for doc, _ in after.ranking}

    def test_refresh_rebuilds_only_stale_nodes(self):
        index = build_index(cluster_size=4)
        with telemetry_session() as telemetry:
            index.refresh()  # nothing changed: all nodes fresh
            assert telemetry.metrics.sum_counters("ir.fragment_rebuilds") \
                == 0
            index.add_document("http://site/one-more", "trophy melbourne")
            index.refresh()  # exactly one node took the document
            assert telemetry.metrics.sum_counters("ir.fragment_rebuilds") \
                == 1


class TestDegradedNeverCached:
    def test_degraded_result_is_not_stored(self):
        faults = FaultInjector().fail("node1", times=1)
        index = build_index(cluster_size=3, fault_injector=faults)
        policy = ExecutionPolicy(n=5, on_failure="degrade")
        degraded = index.query(QUERY, policy=policy)
        assert degraded.degraded
        # the fault budget is spent: this run executes cleanly — it must
        # NOT be a hit on the degraded entry
        healed = index.query(QUERY, policy=policy)
        assert not healed.cache_hit
        assert not healed.degraded
        # and only now does the clean result populate the cache
        warm = index.query(QUERY, policy=policy)
        assert warm.cache_hit
        assert warm.ranking == healed.ranking


class TestThreadSafety:
    def test_racing_queries_agree_with_sequential(self):
        index = build_index(cluster_size=4, documents=60)
        policy = ExecutionPolicy(n=10, max_workers=4)
        reference = index.query(QUERY,
                                policy=ExecutionPolicy(n=10, cache=False))
        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(
                lambda _: index.query(QUERY, policy=policy), range(16)))
        for result in results:
            assert result.ranking == reference.ranking
        # racing cold starts may each execute (there is deliberately no
        # request coalescing), but every store is idempotent: one entry,
        # and the books balance
        executions = sum(1 for result in results if not result.cache_hit)
        assert 1 <= executions <= 16
        stats = index.query_cache.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 16 - executions

    def test_racing_mixed_queries_stay_consistent(self):
        index = build_index(cluster_size=3, documents=50)
        queries = [QUERY, "trophy", "melbourne w2", "w0 w3 w5"]
        expected = {
            query: index.query(query,
                               policy=ExecutionPolicy(n=5,
                                                      cache=False)).ranking
            for query in queries}
        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(
                lambda i: (queries[i % 4],
                           index.query(queries[i % 4],
                                       policy=ExecutionPolicy(n=5))),
                range(24)))
        for query, result in results:
            assert result.ranking == expected[query]


class TestCentralIdfLaziness:
    def test_population_then_query_refreshes_each_store_once(self):
        from repro.ir.distributed import DistributedIndex
        from repro.monetdb.server import Cluster

        with telemetry_session() as telemetry:
            index = DistributedIndex(Cluster(3), fragment_count=4)
            index.add_documents(corpus(documents=30))
            refreshes = telemetry.metrics.sum_counters("ir.idf_refresh")
            # central + one per node, exactly once each
            assert refreshes == 4
            index.query(QUERY, policy=ExecutionPolicy(n=5))
            assert telemetry.metrics.sum_counters("ir.idf_refresh") == 4
