"""Correctness of the single-node query cache: hits, bypass, invalidation."""

import pytest

from repro.core.config import ExecutionPolicy
from repro.ir.engine import IrEngine
from repro.telemetry import telemetry_session

pytestmark = pytest.mark.cache


class TestHitAfterWarm:
    def test_second_search_is_a_hit(self, engine):
        first = engine.search("trophy champion", policy=ExecutionPolicy(n=5))
        assert engine.query_cache.stats()["misses"] == 1
        second = engine.search("trophy champion", policy=ExecutionPolicy(n=5))
        stats = engine.query_cache.stats()
        assert stats["hits"] == 1
        assert second == first

    def test_cached_ranking_is_bit_identical(self, engine):
        uncached = engine.search(
            "trophy champion w0",
            policy=ExecutionPolicy(n=10, cache=False))
        warm = engine.search("trophy champion w0", policy=ExecutionPolicy(n=10))     # populates
        cached = engine.search("trophy champion w0", policy=ExecutionPolicy(n=10))   # serves
        assert cached == uncached
        assert warm == uncached
        assert [score for _, score in cached] \
            == [score for _, score in uncached]

    def test_hit_returns_a_fresh_list(self, engine):
        first = engine.search("trophy", policy=ExecutionPolicy(n=5))
        first.append(("tampered", 0.0))
        second = engine.search("trophy", policy=ExecutionPolicy(n=5))
        assert ("tampered", 0.0) not in second

    def test_normalized_spellings_share_an_entry(self, engine):
        engine.search("Trophy   CHAMPION", policy=ExecutionPolicy(n=5))
        engine.search("trophy champion", policy=ExecutionPolicy(n=5))
        assert engine.query_cache.stats()["hits"] == 1

    def test_fragmented_search_caches_too(self, engine):
        first = engine.search_fragmented("trophy champion", policy=ExecutionPolicy(n=5))
        second = engine.search_fragmented("trophy champion", policy=ExecutionPolicy(n=5))
        assert second.ranking == first.ranking
        assert engine.query_cache.stats()["hits"] == 1

    def test_distinct_n_are_distinct_entries(self, engine):
        engine.search("trophy", policy=ExecutionPolicy(n=5))
        engine.search("trophy", policy=ExecutionPolicy(n=10))
        assert engine.query_cache.stats()["hits"] == 0
        assert engine.query_cache.stats()["misses"] == 2


class TestInvalidation:
    def test_index_invalidates(self, engine):
        before = engine.search("trophy champion", policy=ExecutionPolicy(n=5))
        engine.index("doc:fresh", "trophy trophy trophy champion")
        after = engine.search("trophy champion", policy=ExecutionPolicy(n=5))
        assert engine.query_cache.stats()["hits"] == 0
        assert after != before
        assert "doc:fresh" in {engine.relations.doc_url(doc)
                               for doc, _ in after}

    def test_remove_invalidates(self, engine):
        before = engine.search("trophy champion", policy=ExecutionPolicy(n=5))
        top_url = engine.relations.doc_url(before[0][0])
        engine.remove(top_url)
        after = engine.search("trophy champion", policy=ExecutionPolicy(n=5))
        assert top_url not in {engine.relations.doc_url(doc)
                               for doc, _ in after}

    def test_reindex_invalidates(self, engine):
        engine.search("melbournepark", policy=ExecutionPolicy(n=5))
        engine.reindex("http://site/p0", "melbournepark melbournepark")
        after = engine.search("melbournepark", policy=ExecutionPolicy(n=5))
        assert engine.query_cache.stats()["hits"] == 0
        assert {engine.relations.doc_url(doc) for doc, _ in after} \
            == {"http://site/p0"}

    def test_stale_entries_age_out_rather_than_match(self, engine):
        engine.search("trophy", policy=ExecutionPolicy(n=5))
        engine.index("doc:fresh", "unrelated words")
        engine.search("trophy", policy=ExecutionPolicy(n=5))
        # the stale entry is still *stored* (no purge on write path) but
        # can never be matched again; both executions were misses
        assert engine.query_cache.stats()["misses"] == 2
        assert engine.query_cache.stats()["hits"] == 0


class TestBypass:
    def test_no_cache_policy_never_touches_the_cache(self, engine):
        policy = ExecutionPolicy(n=5, cache=False)
        engine.search("trophy champion", policy=policy)
        engine.search("trophy champion", policy=policy)
        stats = engine.query_cache.stats()
        assert stats["hits"] == 0
        assert stats["misses"] == 0
        assert stats["entries"] == 0

    def test_no_cache_still_returns_the_same_ranking(self, engine):
        cached_path = engine.search("trophy w0", policy=ExecutionPolicy(n=5))
        bypassed = engine.search(
            "trophy w0", policy=ExecutionPolicy(n=5, cache=False))
        assert bypassed == cached_path

    def test_telemetry_records_no_cache_traffic_when_bypassed(self, engine):
        with telemetry_session() as telemetry:
            engine.search("trophy",
                          policy=ExecutionPolicy(n=5, cache=False))
            counters = telemetry.metrics.snapshot()["counters"]
            assert "cache.miss{cache=ir}" not in counters
            assert "cache.hit{cache=ir}" not in counters


class TestEvictionAtCapacity:
    def test_lru_eviction_under_small_capacity(self, engine):
        policy = ExecutionPolicy(n=5, cache_size=2)
        engine.search("trophy", policy=policy)
        engine.search("champion", policy=policy)
        engine.search("w0 w1", policy=policy)            # evicts "trophy"
        stats = engine.query_cache.stats()
        assert stats["entries"] == 2
        assert stats["evictions"] == 1
        # the evicted query misses again, the survivors still hit
        engine.search("champion", policy=policy)
        assert engine.query_cache.stats()["hits"] == 1
        engine.search("trophy", policy=policy)
        assert engine.query_cache.stats()["misses"] == 4

    def test_policy_resizes_the_live_cache(self, engine):
        engine.search("trophy", policy=ExecutionPolicy(n=5))
        assert engine.query_cache.stats()["capacity"] == 128
        engine.search("trophy",
                      policy=ExecutionPolicy(n=5, cache_size=3))
        assert engine.query_cache.stats()["capacity"] == 3


class TestModelSeparation:
    def test_ranking_models_never_share_entries(self):
        tfidf = IrEngine(model="tfidf")
        hiemstra = IrEngine(model="hiemstra")
        for ir in (tfidf, hiemstra):
            ir.index("doc:a", "trophy champion trophy")
            ir.index("doc:b", "champion")
        tfidf.search("trophy champion", policy=ExecutionPolicy(n=5))
        # distinct engines have distinct caches; the model is also in
        # the key, so even a shared cache could not cross-serve
        assert hiemstra.query_cache.stats()["entries"] == 0
        first = hiemstra.search("trophy champion", policy=ExecutionPolicy(n=5))
        assert hiemstra.query_cache.stats()["misses"] == 1
        assert hiemstra.search("trophy champion", policy=ExecutionPolicy(n=5)) == first
