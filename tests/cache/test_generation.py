"""Generation stamping: the write path's entire invalidation protocol.

The headline regression here is the old double IDF refresh of
``search_fragmented`` (one eager refresh in the engine plus one inside
the fragment build) and the old eager per-insert refresh of
``add_document`` — both now collapse onto the generation-memoized
``refresh_idf``, asserted through the ``ir.idf_refresh`` counter.
"""

import pytest

from repro.core.config import ExecutionPolicy
from repro.ir.engine import IrEngine
from repro.ir.relations import IrRelations
from repro.telemetry import telemetry_session

from tests.cache.conftest import corpus

pytestmark = pytest.mark.cache


class TestRelationsGeneration:
    def test_mutations_bump_the_generation(self):
        relations = IrRelations()
        start = relations.generation
        relations.add_document("doc:a", "alpha beta")
        assert relations.generation == start + 1
        relations.add_document("doc:b", "beta gamma")
        assert relations.generation == start + 2
        relations.remove_document("doc:a")
        assert relations.generation == start + 3

    def test_population_defers_idf_work(self):
        relations = IrRelations()
        for url, text in corpus(documents=20):
            relations.add_document(url, text)
        assert len(relations.IDF) == 0
        assert not relations.idf_fresh()
        relations.refresh_idf()
        assert relations.idf_fresh()
        assert len(relations.IDF) == relations.vocabulary_size()

    def test_refresh_is_memoized_per_generation(self):
        relations = IrRelations()
        relations.add_document("doc:a", "alpha beta")
        with telemetry_session() as telemetry:
            relations.refresh_idf()
            relations.refresh_idf()
            relations.refresh_idf()
            assert telemetry.metrics.sum_counters("ir.idf_refresh") == 1
            relations.add_document("doc:b", "beta")
            relations.refresh_idf()
            assert telemetry.metrics.sum_counters("ir.idf_refresh") == 2

    def test_lazy_idf_read_refreshes_once(self):
        relations = IrRelations()
        relations.add_document("doc:a", "alpha beta")
        relations.add_document("doc:b", "beta")
        with telemetry_session() as telemetry:
            beta = relations.term_oid("beta")
            assert relations.idf(beta) == pytest.approx(0.5)
            assert relations.idf(beta) == pytest.approx(0.5)
            assert telemetry.metrics.sum_counters("ir.idf_refresh") == 1


class TestSingleRefreshRegression:
    def test_search_fragmented_refreshes_idf_exactly_once(self, engine):
        # regression: search_fragmented used to refresh IDF eagerly AND
        # again inside the fragment build — one index mutation must cost
        # exactly one refresh, however the query comes in
        with telemetry_session() as telemetry:
            engine.search_fragmented("trophy champion", policy=ExecutionPolicy(n=5))
            assert telemetry.metrics.sum_counters("ir.idf_refresh") == 1
            assert telemetry.metrics.sum_counters("ir.fragment_rebuilds") \
                == 1

    def test_repeated_queries_never_refresh_again(self, engine):
        with telemetry_session() as telemetry:
            # distinct queries so the query cache cannot short-circuit
            engine.search_fragmented("trophy", policy=ExecutionPolicy(n=5))
            engine.search_fragmented("champion", policy=ExecutionPolicy(n=5))
            engine.search("trophy w0", policy=ExecutionPolicy(n=5))
            engine.search("w1 w2", policy=ExecutionPolicy(n=5))
            assert telemetry.metrics.sum_counters("ir.idf_refresh") == 1
            assert telemetry.metrics.sum_counters("ir.fragment_rebuilds") \
                == 1

    def test_mutation_triggers_one_more_refresh(self, engine):
        with telemetry_session() as telemetry:
            engine.search_fragmented("trophy", policy=ExecutionPolicy(n=5))
            engine.index("doc:new", "trophy trophy champion")
            engine.search_fragmented("champion", policy=ExecutionPolicy(n=5))
            assert telemetry.metrics.sum_counters("ir.idf_refresh") == 2
            assert telemetry.metrics.sum_counters("ir.fragment_rebuilds") \
                == 2


class TestFragmentMemoization:
    def test_fragments_reused_until_mutation(self, engine):
        first = engine.fragments()
        assert engine.fragments() is first
        engine.index("doc:new", "something else entirely")
        rebuilt = engine.fragments()
        assert rebuilt is not first

    def test_direct_relations_mutation_is_seen(self, engine):
        # mutations bypassing the engine facade still stamp the
        # generation, so the memoized fragment set goes stale too
        first = engine.fragments()
        engine.relations.add_document("doc:direct", "trophy")
        assert engine.fragments() is not first


class TestEngineGenerationSurface:
    def test_engine_exposes_relations_generation(self, engine):
        before = engine.generation
        engine.index("doc:new", "alpha")
        assert engine.generation == before + 1
        engine.reindex("doc:new", "alpha beta")
        # reindex of an existing document = remove + add
        assert engine.generation == before + 3

    def test_stats_report_the_generation(self, engine):
        assert engine.relations.stats()["generation"] \
            == engine.relations.generation

    def test_search_results_unchanged_by_laziness(self, engine):
        # deferred refresh must not change what queries return
        lazy = engine.search("trophy champion",
                             policy=ExecutionPolicy(n=10, cache=False))
        engine.relations.refresh_idf()
        eager = engine.search("trophy champion",
                              policy=ExecutionPolicy(n=10, cache=False))
        assert lazy == eager
