"""Shared fixtures for the generation-stamped caching suite."""

import random

import pytest

from repro.ir.engine import IrEngine


def corpus(documents=40, seed=11):
    """A small deterministic corpus with a skewed vocabulary."""
    rng = random.Random(seed)
    vocab = [f"w{i}" for i in range(60)]
    weights = [1.0 / (i + 1) for i in range(60)]
    docs = []
    for d in range(documents):
        words = rng.choices(vocab, weights=weights, k=30)
        if d % 5 == 0:
            words += ["trophy", "champion"]
        docs.append((f"http://site/p{d}", " ".join(words)))
    return docs


@pytest.fixture
def engine():
    """A populated single-node IR engine."""
    ir = IrEngine(fragment_count=4)
    for url, text in corpus():
        ir.index(url, text)
    return ir
