"""The ExecutionPolicy surface: validation, deprecation, CLI, results."""

import dataclasses

import pytest

from repro.cluster import ExecutionPolicy
from repro.core.config import EngineConfig
from repro.errors import QueryError
from repro.monetdb.server import Cluster

from tests.cluster.conftest import build_index

pytestmark = pytest.mark.cluster


class TestPolicyValidation:
    def test_defaults(self):
        policy = ExecutionPolicy()
        assert policy.n == 10 and policy.prune
        assert policy.max_workers is None
        assert policy.node_deadline_ms is None
        assert policy.retries == 0
        assert policy.on_failure == "raise"

    @pytest.mark.parametrize("kwargs", [
        {"n": 0}, {"max_workers": 0}, {"node_deadline_ms": 0},
        {"node_deadline_ms": -5}, {"retries": -1}, {"backoff_ms": -1},
        {"on_failure": "shrug"},
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExecutionPolicy(**kwargs)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ExecutionPolicy().n = 5

    def test_replace_revalidates(self):
        policy = ExecutionPolicy().replace(n=5, on_failure="degrade")
        assert policy.n == 5 and policy.on_failure == "degrade"
        with pytest.raises(ValueError):
            policy.replace(retries=-2)

    def test_engine_config_carries_default_policy(self):
        config = EngineConfig(execution=ExecutionPolicy(retries=2))
        assert config.execution.retries == 2
        assert EngineConfig().execution == ExecutionPolicy()


class TestRemovedKwargs:
    def test_n_kwarg_raises_naming_the_replacement(self):
        index = build_index(cluster_size=2)
        with pytest.raises(TypeError, match="ExecutionPolicy"):
            index.query("trophy", n=5)

    def test_prune_kwarg_raises_too(self):
        index = build_index(cluster_size=2)
        with pytest.raises(TypeError, match="ExecutionPolicy"):
            index.query("trophy", n=5, prune=False)

    def test_policy_keyword_is_the_one_true_spelling(self):
        index = build_index(cluster_size=2)
        result = index.query("trophy", policy=ExecutionPolicy(n=5))
        assert len(result.ranking) <= 5

    def test_positional_int_is_rejected(self):
        # the pre-PR-2 signature was query(text, n) — a stale caller
        # must get a TypeError, not have its n swallowed as a policy
        index = build_index(cluster_size=2)
        with pytest.raises(TypeError, match="ExecutionPolicy"):
            index.query("trophy", 5)

    def test_coerce_rejects_the_removed_kwargs(self):
        with pytest.raises(TypeError, match="ExecutionPolicy"):
            ExecutionPolicy.coerce(ExecutionPolicy(n=10, retries=3), n=5)


class TestEmptyCluster:
    def test_place_on_empty_cluster_raises_query_error(self):
        cluster = Cluster(2)
        cluster.servers.clear()
        with pytest.raises(QueryError, match="empty cluster"):
            cluster.place("http://x/a")

    def test_scatter_on_empty_cluster_raises_query_error(self):
        cluster = Cluster(2)
        cluster.servers.clear()
        with pytest.raises(QueryError, match="empty cluster"):
            cluster.scatter([("http://x/a", "text")])

    def test_max_tuples_touched_empty_is_zero(self):
        cluster = Cluster(2)
        cluster.servers.clear()
        assert cluster.max_tuples_touched() == 0


class TestCliPolicyFlags:
    def test_query_parser_accepts_policy_flags(self):
        from repro.cli import _parser, _policy_from_args

        args = _parser().parse_args([
            "query", "--snapshot", "snap", "--workers", "2",
            "--deadline-ms", "50", "--retries", "1", "--backoff-ms", "5",
            "--on-failure", "degrade", "SELECT p.name FROM Player p"])
        policy = _policy_from_args(args)
        assert policy == ExecutionPolicy(
            max_workers=2, node_deadline_ms=50, retries=1, backoff_ms=5,
            on_failure="degrade")

    def test_stats_parser_accepts_policy_flags(self):
        from repro.cli import _parser, _policy_from_args

        args = _parser().parse_args([
            "stats", "--site", "ausopen", "--cluster", "3",
            "--query", "q", "--on-failure", "degrade"])
        assert _policy_from_args(args).on_failure == "degrade"

    def test_policy_flags_in_help(self, capsys):
        from repro.cli import _parser

        with pytest.raises(SystemExit):
            _parser().parse_args(["query", "--help"])
        help_text = capsys.readouterr().out
        for flag in ("--workers", "--deadline-ms", "--on-failure",
                     "--retries", "--backoff-ms"):
            assert flag in help_text
