"""Accounting exactness under concurrency.

The per-node tuple accounting is correctness-bearing (benchmarks read
it), so it must be *exactly* equal between a sequential visit and eight
queries racing through the parallel executor.
"""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.cluster import ExecutionPolicy
from repro.telemetry import telemetry_session

from tests.cluster.conftest import build_index

pytestmark = pytest.mark.cluster

QUERY = "trophy melbourne w0 w1"
CONCURRENCY = 8


class TestConcurrentAccounting:
    def test_eight_concurrent_queries_equal_sequential_totals(self):
        index = build_index(cluster_size=4, documents=80)
        # cache=False: the whole point is eight *executions* racing —
        # the query cache would collapse them into one
        policy = ExecutionPolicy(n=10, cache=False)

        with telemetry_session() as telemetry:
            single = index.query(QUERY, policy=policy)
            per_query = single.tuples_read_per_node()
            sequential_total = {
                node: tuples * CONCURRENCY
                for node, tuples in per_query.items()}

            telemetry.reset()
            index.cluster.reset_accounting()
            with ThreadPoolExecutor(max_workers=CONCURRENCY) as pool:
                results = list(pool.map(
                    lambda _: index.query(QUERY, policy=policy),
                    range(CONCURRENCY)))

            # every racing query carries the exact per-node numbers
            for result in results:
                assert result.tuples_read_per_node() == per_query
                assert result.ranking == single.ranking
            # and the shared counters sum exactly, no lost updates
            assert index.cluster.accounting() == sequential_total
            snapshot = telemetry.metrics.snapshot()["counters"]
            for node, expected in sequential_total.items():
                assert snapshot[f"ir.node_tuples_read{{node={node}}}"] \
                    == expected
                assert snapshot[f"monetdb.tuples_touched{{server={node}}}"] \
                    == expected
            assert telemetry.metrics.sum_counters("ir.distributed_queries") \
                == CONCURRENCY

    def test_sequential_and_parallel_widths_agree(self):
        """max_workers=1 (old sequential loop) matches full fan-out."""
        index = build_index(cluster_size=4, documents=80)
        sequential = index.query(
            QUERY, policy=ExecutionPolicy(n=10, max_workers=1,
                                          cache=False))
        parallel = index.query(QUERY,
                               policy=ExecutionPolicy(n=10, cache=False))
        assert sequential.ranking == parallel.ranking
        assert sequential.tuples_read_per_node() \
            == parallel.tuples_read_per_node()

    def test_parallel_population_matches_sequential(self):
        """add_documents through the executor = per-document loop."""
        from tests.cluster.conftest import corpus
        from repro.ir.distributed import DistributedIndex
        from repro.monetdb.server import Cluster

        docs = corpus(documents=50)
        bulk = DistributedIndex(Cluster(4), fragment_count=4)
        bulk.add_documents(docs)
        one_by_one = DistributedIndex(Cluster(4), fragment_count=4)
        for url, text in docs:
            one_by_one.add_document(url, text)
        one_by_one.refresh()

        assert bulk.central.document_count() \
            == one_by_one.central.document_count()
        for name in bulk.nodes:
            assert bulk.nodes[name].document_count() \
                == one_by_one.nodes[name].document_count()
        left = bulk.query(QUERY, policy=ExecutionPolicy(n=10))
        right = one_by_one.query(QUERY, policy=ExecutionPolicy(n=10))
        assert left.ranking == right.ranking
        assert left.tuples_read_per_node() == right.tuples_read_per_node()
