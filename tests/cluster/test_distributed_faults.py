"""Fault semantics of the distributed query plan.

The acceptance story of the cluster redesign: a timed-out node degrades
the merge to exactly the surviving nodes' ranking, a transient fault is
absorbed by the retry budget, ``on_failure="raise"`` propagates, and the
failure is visible in telemetry (``ir.node_failures``, ``degraded``
span attribute).
"""

import pytest

from repro.cluster import ExecutionPolicy, FaultInjector
from repro.errors import ClusterExecutionError
from repro.monetdb.algebra import topn_merge
from repro.telemetry import telemetry_session

from tests.cluster.conftest import build_index

pytestmark = pytest.mark.cluster

QUERY = "trophy melbourne w0"


def central_rankings_per_node(index, query, n):
    """Each node's local ranking mapped to central doc oids (no faults)."""
    clean = index.query(query, policy=ExecutionPolicy(n=n))
    assert not clean.degraded
    rankings = {}
    for name, local in clean.local_results.items():
        relations = index.nodes[name]
        rankings[name] = [
            (index.central.doc_oid(relations.doc_url(doc)), score)
            for doc, score in local.ranking]
    return rankings


class TestDegradedMerge:
    def test_timeout_degrades_to_surviving_nodes(self):
        faults = FaultInjector()
        index = build_index(cluster_size=4, fault_injector=faults)
        expected = central_rankings_per_node(index, QUERY, n=10)

        faults.delay("node0", 1000)
        policy = ExecutionPolicy(n=10, node_deadline_ms=60,
                                 on_failure="degrade")
        result = index.query(QUERY, policy=policy)

        assert result.degraded
        assert list(result.failed_nodes) == ["node0"]
        assert "node0" not in result.local_results
        survivors = [ranking for name, ranking in expected.items()
                     if name != "node0"]
        assert result.ranking == topn_merge(survivors, 10)

    def test_all_nodes_failed_degrades_to_empty(self):
        faults = FaultInjector()
        index = build_index(cluster_size=2, fault_injector=faults)
        for name in index.nodes:
            faults.fail(name, times=1)
        result = index.query(QUERY, policy=ExecutionPolicy(
            n=10, on_failure="degrade"))
        assert result.degraded
        assert sorted(result.failed_nodes) == sorted(index.nodes)
        assert result.ranking == []

    def test_degraded_result_surface(self):
        faults = FaultInjector()
        index = build_index(cluster_size=4, fault_injector=faults)
        faults.fail("node2", times=1)
        result = index.query(QUERY, policy=ExecutionPolicy(
            n=10, on_failure="degrade"))
        summary = result.to_dict()
        assert summary["kind"] == "distributed"
        assert summary["degraded"] is True
        assert summary["failed_nodes"] == ["node2"]
        assert "node2" not in summary["tuples"]["per_node"]
        assert "FAILED" in result.explain()


class TestRetry:
    def test_transient_fault_absorbed_by_retry(self):
        faults = FaultInjector()
        index = build_index(cluster_size=4, fault_injector=faults)
        exact = index.query(QUERY, policy=ExecutionPolicy(n=10)).ranking

        faults.fail("node1", times=1)
        policy = ExecutionPolicy(n=10, retries=2, backoff_ms=1,
                                 on_failure="degrade")
        result = index.query(QUERY, policy=policy)
        assert not result.degraded
        assert result.failed_nodes == {}
        assert result.attempts["node1"] == 2
        assert result.ranking == exact

    def test_accounting_exact_after_retry(self):
        """A retried node charges its server once, not per attempt."""
        faults = FaultInjector()
        index = build_index(cluster_size=4, fault_injector=faults)
        clean = index.query(QUERY, policy=ExecutionPolicy(n=10))
        index.cluster.reset_accounting()

        faults.fail("node1", times=1)
        policy = ExecutionPolicy(n=10, retries=2, backoff_ms=1)
        retried = index.query(QUERY, policy=policy)
        assert retried.tuples_read_per_node() \
            == clean.tuples_read_per_node()
        assert index.cluster.accounting() == clean.tuples_read_per_node()


class TestRaisePropagation:
    def test_on_failure_raise_propagates(self):
        faults = FaultInjector()
        index = build_index(cluster_size=4, fault_injector=faults)
        faults.fail("node3", times=1, error=OSError("host down"))
        with pytest.raises(ClusterExecutionError) as excinfo:
            index.query(QUERY, policy=ExecutionPolicy(n=10,
                                                      on_failure="raise"))
        assert excinfo.value.failed_nodes == {"node3": "OSError: host down"}

    def test_raise_is_the_default(self):
        faults = FaultInjector()
        index = build_index(cluster_size=2, fault_injector=faults)
        faults.fail("node0", times=1)
        with pytest.raises(ClusterExecutionError):
            index.query(QUERY, policy=ExecutionPolicy(n=10))


class TestFailureTelemetry:
    def test_node_failure_counter_and_degraded_span(self):
        faults = FaultInjector()
        index = build_index(cluster_size=4, fault_injector=faults)
        faults.delay("node0", 1000)
        with telemetry_session() as telemetry:
            result = index.query(QUERY, policy=ExecutionPolicy(
                n=10, node_deadline_ms=60, on_failure="degrade"))
            assert result.degraded
            assert telemetry.metrics.sum_counters("ir.node_failures") == 1
            counter = telemetry.metrics.get("ir.node_failures", node="node0")
            assert counter is not None and counter.value == 1
            span = telemetry.tracer.find_all("ir.distributed_query")[0]
            assert span.attributes["degraded"] is True
            assert span.attributes["failed_nodes"] == ["node0"]

    def test_healthy_query_records_no_failures(self):
        index = build_index(cluster_size=4)
        with telemetry_session() as telemetry:
            result = index.query(QUERY, policy=ExecutionPolicy(n=10))
            assert not result.degraded
            assert telemetry.metrics.sum_counters("ir.node_failures") == 0
            span = telemetry.tracer.find_all("ir.distributed_query")[0]
            assert span.attributes["degraded"] is False
