"""Shared fixtures for the cluster-execution suite.

Every test here runs under the thread-leak check: a test that leaves a
live non-daemon thread behind (an abandoned executor worker, an
unjoined pool) fails, because leaked workers are exactly how a
"parallel" search backend quietly serialises or deadlocks in
production.  The corpus helpers mirror ``tests/ir/test_distributed``.
"""

import random
import threading
import time

import pytest

from repro.ir.distributed import DistributedIndex
from repro.monetdb.server import Cluster


@pytest.fixture(autouse=True)
def no_thread_leaks():
    """Fail any test that leaks a live non-daemon thread."""
    before = set(threading.enumerate())
    yield
    leaked = set()
    # executor shutdown is synchronous, but give cancelled workers a
    # short grace period to unwind their stacks
    for _ in range(100):
        leaked = {thread for thread in threading.enumerate()
                  if thread not in before
                  and not thread.daemon and thread.is_alive()}
        if not leaked:
            break
        time.sleep(0.01)
    assert not leaked, f"leaked non-daemon threads: {sorted(t.name for t in leaked)}"


def corpus(documents=60, seed=5):
    rng = random.Random(seed)
    vocab = [f"w{i}" for i in range(80)]
    weights = [1.0 / (i + 1) for i in range(80)]
    docs = []
    for d in range(documents):
        words = rng.choices(vocab, weights=weights, k=40)
        if d % 6 == 0:
            words += ["trophy", "melbourne"]
        docs.append((f"http://site/p{d}", " ".join(words)))
    return docs


def build_index(cluster_size=4, fault_injector=None, documents=60):
    index = DistributedIndex(Cluster(cluster_size), fragment_count=4,
                             fault_injector=fault_injector)
    index.add_documents(corpus(documents))
    return index
