"""Unit tests for the cluster Executor and FaultInjector."""

import random
import threading
import time

import pytest

from repro.cluster import (ExecutionPolicy, Executor, FaultInjector,
                           InjectedFault)
from repro.telemetry import telemetry_session

pytestmark = pytest.mark.cluster


def tasks_returning(values):
    return {name: (lambda v=value: v) for name, value in values.items()}


class TestFanOut:
    def test_every_task_produces_an_outcome(self):
        outcomes = Executor().run(tasks_returning(
            {"node0": 1, "node1": 2, "node2": 3}))
        assert sorted(outcomes) == ["node0", "node1", "node2"]
        assert all(outcome.ok for outcome in outcomes.values())
        assert [outcomes[n].value for n in ("node0", "node1", "node2")] \
            == [1, 2, 3]
        assert all(outcome.attempts == 1 for outcome in outcomes.values())

    def test_empty_task_set(self):
        assert Executor().run({}) == {}

    def test_outcomes_preserve_task_order(self):
        outcomes = Executor().run(tasks_returning(
            {"b": 1, "a": 2, "c": 3}))
        assert list(outcomes) == ["b", "a", "c"]

    def test_tasks_run_concurrently(self):
        """With one worker per node, N sleeps overlap in wall-clock."""
        barrier = threading.Barrier(4, timeout=5)
        outcomes = Executor(ExecutionPolicy()).run(
            {f"n{i}": barrier.wait for i in range(4)})
        # the barrier releases only if all four waits overlap
        assert all(outcome.ok for outcome in outcomes.values())

    def test_max_workers_one_serialises(self):
        running = []
        overlap = []

        def task():
            running.append(None)
            overlap.append(len(running))
            time.sleep(0.005)
            running.pop()
            return True

        policy = ExecutionPolicy(max_workers=1)
        outcomes = Executor(policy).run({f"n{i}": task for i in range(4)})
        assert all(outcome.ok for outcome in outcomes.values())
        assert max(overlap) == 1


class TestFailureHandling:
    def test_error_reported_not_raised(self):
        def boom():
            raise ValueError("kaput")

        outcomes = Executor().run({"node0": boom})
        outcome = outcomes["node0"]
        assert not outcome.ok
        assert outcome.error == "ValueError: kaput"
        assert outcome.attempts == 1

    def test_retry_succeeds_after_transient_fault(self):
        faults = FaultInjector().fail("node0", times=1)
        policy = ExecutionPolicy(retries=1, backoff_ms=1)
        outcomes = Executor(policy, faults).run(tasks_returning({"node0": 7}))
        outcome = outcomes["node0"]
        assert outcome.ok
        assert outcome.value == 7
        assert outcome.attempts == 2

    def test_retry_budget_exhausted(self):
        faults = FaultInjector().fail("node0", times=3)
        policy = ExecutionPolicy(retries=1, backoff_ms=1)
        outcome = Executor(policy, faults).run(
            tasks_returning({"node0": 7}))["node0"]
        assert not outcome.ok
        assert outcome.attempts == 2
        assert "injected fault" in outcome.error

    def test_injected_custom_error(self):
        faults = FaultInjector().fail("node0", error=OSError("conn reset"))
        outcome = Executor(None, faults).run(
            tasks_returning({"node0": 7}))["node0"]
        assert outcome.error == "OSError: conn reset"

    def test_default_injected_error_is_typed(self):
        faults = FaultInjector().fail("node0")
        with pytest.raises(InjectedFault):
            faults.on_attempt("node0", 1, threading.Event())


class TestDeadlines:
    def test_slow_node_times_out_others_survive(self):
        faults = FaultInjector().delay("node1", 500)
        policy = ExecutionPolicy(node_deadline_ms=40)
        start = time.perf_counter()
        outcomes = Executor(policy, faults).run(tasks_returning(
            {"node0": 1, "node1": 2, "node2": 3}))
        elapsed = time.perf_counter() - start
        assert outcomes["node0"].ok and outcomes["node2"].ok
        assert outcomes["node1"].timed_out
        assert not outcomes["node1"].ok
        assert "deadline" in outcomes["node1"].error \
            or "cancelled" in outcomes["node1"].error
        # the cancellable delay must not hold the pool for the full 500ms
        assert elapsed < 0.4

    def test_deadline_cancels_backoff_wait(self):
        faults = FaultInjector().fail("node0", times=5)
        policy = ExecutionPolicy(retries=5, backoff_ms=200,
                                 node_deadline_ms=30)
        start = time.perf_counter()
        outcome = Executor(policy, faults).run(
            tasks_returning({"node0": 1}))["node0"]
        assert not outcome.ok
        assert time.perf_counter() - start < 0.4

    def test_no_deadline_waits_for_slow_node(self):
        faults = FaultInjector().delay("node0", 30)
        outcome = Executor(None, faults).run(
            tasks_returning({"node0": 9}))["node0"]
        assert outcome.ok
        assert outcome.value == 9
        assert outcome.elapsed_ms >= 25


class TestJitteredBackoff:
    def test_backoff_is_uniform_within_exponential_ceiling(self):
        executor = Executor(ExecutionPolicy(backoff_ms=10),
                            rng=random.Random(42))
        for attempt in (1, 2, 3, 4):
            ceiling = 0.010 * (2 ** (attempt - 1))
            samples = [executor._backoff_s(attempt) for _ in range(200)]
            assert all(0.0 <= sample < ceiling for sample in samples)
            # full jitter, not fixed exponential: the draws spread out
            assert max(samples) - min(samples) > ceiling / 4

    def test_seeded_rng_reproduces_the_schedule(self):
        policy = ExecutionPolicy(backoff_ms=25)
        first = Executor(policy, rng=random.Random(7))
        second = Executor(policy, rng=random.Random(7))
        schedule = [first._backoff_s(attempt) for attempt in (1, 2, 3)]
        assert schedule == [second._backoff_s(a) for a in (1, 2, 3)]
        third = Executor(policy, rng=random.Random(8))
        assert schedule != [third._backoff_s(a) for a in (1, 2, 3)]

    def test_zero_backoff_never_sleeps(self):
        executor = Executor(ExecutionPolicy(backoff_ms=0))
        assert executor._backoff_s(1) == 0.0
        assert executor._backoff_s(5) == 0.0


class TestAbandonedThreads:
    def test_uncancellable_task_is_counted_and_bounded(self):
        """A task that ignores its cancel event is abandoned at the
        deadline: counted on ``cluster.abandoned_threads``, and run()
        returns after the bounded shutdown grace instead of blocking
        until the task finishes."""
        release = threading.Event()

        def stuck():
            release.wait(10.0)  # ignores the executor's cancel event
            return "late"

        executor = Executor(ExecutionPolicy(node_deadline_ms=40),
                            shutdown_grace_ms=100.0)
        try:
            with telemetry_session() as telemetry:
                start = time.perf_counter()
                outcomes = executor.run({"node0": stuck, "node1": lambda: 1})
                elapsed = time.perf_counter() - start
                counters = telemetry.metrics.snapshot()["counters"]
            assert outcomes["node0"].timed_out
            assert not outcomes["node0"].ok
            assert outcomes["node1"].ok
            assert counters.get("cluster.abandoned_threads") == 1
            # deadline (40ms) + grace (100ms) + slack, not the task's 10s
            assert elapsed < 2.0
        finally:
            release.set()  # let the abandoned thread unwind (leak check)

    def test_cancellable_task_is_not_counted_abandoned(self):
        """A task honouring its cancel event drains promptly — the
        abandonment counter must stay untouched."""
        faults = FaultInjector().delay("node0", 5000)
        executor = Executor(ExecutionPolicy(node_deadline_ms=40), faults)
        with telemetry_session() as telemetry:
            outcomes = executor.run(tasks_returning({"node0": 1}))
            counters = telemetry.metrics.snapshot()["counters"]
        assert outcomes["node0"].timed_out
        assert "cluster.abandoned_threads" not in counters


class TestInjectorConfig:
    def test_delay_all_applies_to_every_node(self):
        faults = FaultInjector().delay_all(20)
        outcomes = Executor(None, faults).run(tasks_returning(
            {"node0": 1, "node1": 2}))
        assert all(outcome.elapsed_ms >= 15
                   for outcome in outcomes.values())

    def test_clear_removes_faults(self):
        faults = FaultInjector().fail("node0", times=5).delay_all(50)
        faults.clear()
        outcome = Executor(None, faults).run(
            tasks_returning({"node0": 1}))["node0"]
        assert outcome.ok
        assert outcome.elapsed_ms < 40
