"""The unified result surface across QueryResult and the distributed plan."""

import pytest

from repro.cluster import ExecutionPolicy, FaultInjector
from repro.core.config import EngineConfig
from repro.core.engine import SearchEngine
from repro.web.ausopen import build_ausopen_site
from repro.webspace.schema import australian_open_schema

from tests.cluster.conftest import build_index

pytestmark = pytest.mark.cluster

CONTAINS = ("SELECT p.name FROM Player p "
            "WHERE p.history CONTAINS 'Winner' TOP 5")


@pytest.fixture(scope="module")
def clustered_engine():
    server, _ = build_ausopen_site(players=8, articles=4, videos=2,
                                   frames_per_shot=6)
    engine = SearchEngine(australian_open_schema(), server,
                          EngineConfig(cluster_size=3, fragment_count=4))
    engine.populate()
    return engine


class TestUnifiedShape:
    def test_both_result_types_share_the_dict_shape(self, clustered_engine):
        engine_summary = clustered_engine.query_text(CONTAINS).to_dict()
        distributed_summary = build_index(cluster_size=2).query(
            "trophy", policy=ExecutionPolicy(n=5)).to_dict()
        assert set(engine_summary) == set(distributed_summary)
        for summary in (engine_summary, distributed_summary):
            assert set(summary["tuples"]) == {"total", "max_node",
                                              "per_node"}
            assert isinstance(summary["failed_nodes"], list)
            assert isinstance(summary["degraded"], bool)

    def test_engine_result_carries_per_node_tuples(self, clustered_engine):
        result = clustered_engine.query_text(CONTAINS)
        assert sorted(result.node_tuples) == ["node0", "node1", "node2"]
        assert result.to_dict()["tuples"]["per_node"] == result.node_tuples
        assert not result.degraded
        assert result.failed_nodes == []

    def test_single_node_engine_has_empty_per_node(self):
        server, _ = build_ausopen_site(players=6, articles=3, videos=2,
                                       frames_per_shot=6)
        engine = SearchEngine(australian_open_schema(), server,
                              EngineConfig(cluster_size=1))
        engine.populate()
        summary = engine.query_text(CONTAINS).to_dict()
        assert summary["tuples"]["per_node"] == {}
        assert summary["degraded"] is False


class TestEngineDegradedQuery:
    def test_degraded_content_query_surfaces_failed_nodes(
            self, clustered_engine):
        faults = FaultInjector().fail("node1", times=99)
        clustered_engine.ir.index.fault_injector = faults
        try:
            # cache=False: the injected faults are out-of-band state the
            # cache key cannot see, so force a real execution
            result = clustered_engine.query_text(
                CONTAINS, policy=ExecutionPolicy(on_failure="degrade",
                                                 cache=False))
            assert result.degraded
            assert result.failed_nodes == ["node1"]
            assert "node1" not in result.node_tuples
            assert "degraded" in result.explain()
        finally:
            clustered_engine.ir.index.fault_injector = None

    def test_engine_raise_policy_propagates(self, clustered_engine):
        from repro.errors import ClusterExecutionError

        faults = FaultInjector().fail("node0", times=99)
        clustered_engine.ir.index.fault_injector = faults
        try:
            with pytest.raises(ClusterExecutionError):
                clustered_engine.query_text(
                    CONTAINS, policy=ExecutionPolicy(on_failure="raise",
                                                     cache=False))
        finally:
            clustered_engine.ir.index.fault_injector = None
