"""tf.idf and Hiemstra LM ranking."""

import pytest

from repro.ir.ranking import query_term_oids, rank_hiemstra, rank_tfidf
from repro.ir.relations import IrRelations


@pytest.fixture
def relations() -> IrRelations:
    relations = IrRelations()
    relations.add_documents([
        ("doc:d1", "champion champion tennis net"),
        ("doc:d2", "champion tennis tennis court game"),
        ("doc:d3", "tennis court court game game game"),
        ("doc:d4", "football stadium goal"),
    ])
    return relations


class TestQueryTerms:
    def test_oov_terms_drop(self, relations):
        oids = query_term_oids(relations, "champion quidditch")
        assert len(oids) == 1

    def test_stopwords_drop(self, relations):
        assert query_term_oids(relations, "the of and") == []


class TestTfIdf:
    def test_most_frequent_rare_term_wins(self, relations):
        ranking = rank_tfidf(relations, "champion", n=10)
        urls = [relations.doc_url(doc) for doc, _ in ranking]
        assert urls[0] == "doc:d1"        # tf=2 for the rarest useful term
        assert set(urls) == {"doc:d1", "doc:d2"}

    def test_scores_are_tf_times_idf(self, relations):
        ranking = dict(rank_tfidf(relations, "champion", n=10))
        d1 = relations.doc_oid("doc:d1")
        # champion: df=2 -> idf=0.5; tf in d1 = 2
        assert ranking[d1] == pytest.approx(1.0)

    def test_multi_term_scores_sum(self, relations):
        single = dict(rank_tfidf(relations, "champion", n=10))
        combined = dict(rank_tfidf(relations, "champion net", n=10))
        d1 = relations.doc_oid("doc:d1")
        assert combined[d1] > single[d1]

    def test_n_limits_results(self, relations):
        assert len(rank_tfidf(relations, "tennis", n=2)) == 2

    def test_n_none_returns_all(self, relations):
        assert len(rank_tfidf(relations, "tennis", n=None)) == 3

    def test_no_match_is_empty(self, relations):
        assert rank_tfidf(relations, "quidditch", n=10) == []

    def test_deterministic_tie_break(self, relations):
        first = rank_tfidf(relations, "game", n=10)
        second = rank_tfidf(relations, "game", n=10)
        assert first == second


class TestHiemstra:
    def test_ranks_relevant_documents_first(self, relations):
        ranking = rank_hiemstra(relations, "champion", n=10)
        urls = [relations.doc_url(doc) for doc, _ in ranking]
        assert urls[0] == "doc:d1"

    def test_smoothing_bounds_validated(self, relations):
        with pytest.raises(ValueError):
            rank_hiemstra(relations, "champion", smoothing=0.0)
        with pytest.raises(ValueError):
            rank_hiemstra(relations, "champion", smoothing=1.0)

    def test_scores_positive(self, relations):
        for _, score in rank_hiemstra(relations, "champion tennis", n=10):
            assert score > 0.0

    def test_agrees_with_tfidf_on_clear_winner(self, relations):
        lm = rank_hiemstra(relations, "champion net", n=1)
        tfidf = rank_tfidf(relations, "champion net", n=1)
        assert lm[0][0] == tfidf[0][0]
