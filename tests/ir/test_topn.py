"""Fragmentation and top-N optimization: exactness, pruning, quality."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BatError
from repro.ir.fragmentation import fragment_by_idf
from repro.ir.ranking import query_term_oids, rank_tfidf
from repro.ir.relations import IrRelations
from repro.ir.topn import quality_degrade, topn_cutoff, topn_fragmented


def _zipf_relations(documents=80, vocabulary=120, seed=3) -> IrRelations:
    rng = random.Random(seed)
    vocab = [f"term{i:03d}" for i in range(vocabulary)]
    weights = [1.0 / (i + 1) for i in range(vocabulary)]
    relations = IrRelations()
    docs = []
    for d in range(documents):
        words = rng.choices(vocab, weights=weights, k=60)
        if d % 9 == 0:
            words += ["grandslam", "finalist"]
        docs.append((f"http://x/d{d}", " ".join(words)))
    relations.add_documents(docs)
    return relations


@pytest.fixture(scope="module")
def relations() -> IrRelations:
    return _zipf_relations()


class TestFragmentation:
    def test_fragment_count_respected(self, relations):
        fragments = fragment_by_idf(relations, 6)
        assert len(fragments) == 6

    def test_fragments_cover_all_postings(self, relations):
        fragments = fragment_by_idf(relations, 6)
        assert fragments.total_tuples() == len(relations.TF)

    def test_idf_descends_across_fragments(self, relations):
        fragments = fragment_by_idf(relations, 6)
        minimums = [fragment.min_idf() for fragment in fragments]
        maximums = [max(fragment.idf.values())
                    for fragment in fragments.fragments]
        for earlier_min, later_max in zip(minimums, maximums[1:]):
            assert earlier_min >= later_max

    def test_locate_term(self, relations):
        fragments = fragment_by_idf(relations, 6)
        rare = relations.term_oid("grandslam")
        assert fragments.locate_term(rare) == 0  # rare = high idf = front

    def test_single_fragment(self, relations):
        fragments = fragment_by_idf(relations, 1)
        assert len(fragments) == 1
        assert fragments.total_tuples() == len(relations.TF)

    def test_invalid_count_raises(self, relations):
        with pytest.raises(BatError):
            fragment_by_idf(relations, 0)

    def test_random_order_supported(self, relations):
        fragments = fragment_by_idf(relations, 6, order="random")
        assert fragments.total_tuples() == len(relations.TF)

    def test_unknown_order_raises(self, relations):
        with pytest.raises(BatError):
            fragment_by_idf(relations, 6, order="alphabetical")


class TestExactness:
    @pytest.mark.parametrize("query", [
        "grandslam", "grandslam finalist", "term000 grandslam",
        "term000 term001 term002", "finalist term050",
    ])
    def test_pruned_topn_set_equals_exact(self, relations, query):
        # pruning guarantees the exact top-N *set*; members' partial
        # scores may order differently (see topn_fragmented docstring)
        fragments = fragment_by_idf(relations, 8)
        terms = query_term_oids(relations, query)
        exact = rank_tfidf(relations, query, n=10)
        pruned = topn_fragmented(fragments, terms, 10, prune=True)
        assert {doc for doc, _ in pruned.ranking} \
            == {doc for doc, _ in exact}

    @pytest.mark.parametrize("query", [
        "grandslam", "grandslam finalist", "term000 grandslam",
    ])
    def test_unpruned_order_equals_exact(self, relations, query):
        fragments = fragment_by_idf(relations, 8)
        terms = query_term_oids(relations, query)
        exact = rank_tfidf(relations, query, n=10)
        full = topn_fragmented(fragments, terms, 10, prune=False)
        assert [doc for doc, _ in full.ranking] \
            == [doc for doc, _ in exact]

    def test_pruning_reads_fewer_fragments(self, relations):
        fragments = fragment_by_idf(relations, 8)
        terms = query_term_oids(relations, "grandslam finalist")
        pruned = topn_fragmented(fragments, terms, 10, prune=True)
        full = topn_fragmented(fragments, terms, 10, prune=False)
        assert pruned.fragments_read <= full.fragments_read
        assert pruned.stopped_early

    def test_empty_query(self, relations):
        fragments = fragment_by_idf(relations, 8)
        result = topn_fragmented(fragments, [], 10)
        assert result.ranking == []


class TestCutoffAndQuality:
    def test_cutoff_reads_only_kept_fragments(self, relations):
        fragments = fragment_by_idf(relations, 8)
        terms = query_term_oids(relations, "term000 grandslam")
        cut = topn_cutoff(fragments, terms, 10, keep_fragments=2)
        assert cut.fragments_read <= 2
        assert not cut.exact

    def test_quality_increases_with_fragments_kept(self, relations):
        fragments = fragment_by_idf(relations, 8)
        query = "grandslam term000 term005 term020"
        terms = query_term_oids(relations, query)
        exact = rank_tfidf(relations, query, n=10)
        qualities = []
        for keep in (1, 4, 8):
            cut = topn_cutoff(fragments, terms, 10, keep_fragments=keep)
            qualities.append(quality_degrade(exact, cut.ranking))
        assert qualities[-1] == 1.0          # all fragments = exact
        assert qualities == sorted(qualities)  # monotone improvement

    def test_quality_of_empty_exact_is_one(self):
        assert quality_degrade([], [("d", 1.0)]) == 1.0

    def test_quality_of_disjoint_is_zero(self):
        assert quality_degrade([("a", 1.0)], [("b", 1.0)]) == 0.0


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 10), st.integers(1, 10),
       st.sampled_from(["grandslam", "finalist term010",
                        "term000 term001 grandslam"]))
def test_pruned_always_exact_property(fragment_count, n, query):
    relations = _zipf_relations(documents=40, vocabulary=60, seed=11)
    fragments = fragment_by_idf(relations, fragment_count)
    terms = query_term_oids(relations, query)
    exact = rank_tfidf(relations, query, n=n)
    pruned = topn_fragmented(fragments, terms, n, prune=True)
    assert {doc for doc, _ in pruned.ranking} == {doc for doc, _ in exact}
