"""The T/D/DT/TF/IDF relation scheme."""

import pytest

from repro.errors import CatalogError
from repro.ir.relations import IrRelations
from repro.ir.stemmer import stem


@pytest.fixture
def relations() -> IrRelations:
    relations = IrRelations()
    relations.add_documents([
        ("http://x/d1", "tennis tennis champion"),
        ("http://x/d2", "tennis court"),
        ("http://x/d3", "football"),
    ])
    return relations


class TestVocabulary:
    def test_terms_are_stemmed_and_interned_once(self, relations):
        relations.add_document("http://x/d4", "champions championed")
        assert relations.term_oid("champion") is not None

    def test_unknown_term_is_none(self, relations):
        assert relations.term_oid("quidditch") is None

    def test_vocabulary_size(self, relations):
        assert relations.vocabulary_size() == 4  # tennis champion court football


class TestDocuments:
    def test_doc_oid_round_trip(self, relations):
        oid = relations.doc_oid("http://x/d1")
        assert relations.doc_url(oid) == "http://x/d1"

    def test_duplicate_document_raises(self, relations):
        with pytest.raises(CatalogError):
            relations.add_document("http://x/d1", "again")

    def test_document_length_counts_occurrences(self, relations):
        assert relations.document_length(
            relations.doc_oid("http://x/d1")) == 3

    def test_collection_length(self, relations):
        assert relations.collection_length == 6


class TestFrequencies:
    def test_tf_counts_per_pair(self, relations):
        tennis = relations.term_oid(stem("tennis"))
        postings = dict(relations.postings(tennis))
        assert postings[relations.doc_oid("http://x/d1")] == 2
        assert postings[relations.doc_oid("http://x/d2")] == 1

    def test_df_and_idf(self, relations):
        tennis = relations.term_oid(stem("tennis"))
        football = relations.term_oid(stem("football"))
        assert relations.document_frequency(tennis) == 2
        assert relations.idf(tennis) == pytest.approx(0.5)
        assert relations.idf(football) == pytest.approx(1.0)

    def test_idf_of_unknown_is_zero(self, relations):
        assert relations.idf(999999) == 0.0

    def test_idf_refresh_deferred_until_read(self):
        relations = IrRelations()
        relations.add_document("doc:u1", "alpha")
        assert len(relations.IDF) == 0  # population never refreshes
        relations.add_document("doc:u2", "alpha beta")
        assert len(relations.IDF) == 0
        assert not relations.idf_fresh()
        # the first idf read refreshes through the generation stamp
        alpha = relations.term_oid(stem("alpha"))
        assert relations.idf(alpha) == pytest.approx(0.5)
        assert len(relations.IDF) == 2
        assert relations.idf_fresh()

    def test_idf_refresh_memoized_per_generation(self):
        relations = IrRelations()
        relations.add_document("doc:u1", "alpha beta")
        relations.refresh_idf()
        generation = relations.generation
        relations.refresh_idf()  # no mutation in between: a no-op
        assert relations.generation == generation
        relations.add_document("doc:u2", "beta")
        assert relations.generation == generation + 1
        assert not relations.idf_fresh()


class TestRemoval:
    def test_remove_document_updates_everything(self, relations):
        tennis = relations.term_oid(stem("tennis"))
        relations.remove_document("http://x/d2")
        assert relations.document_count() == 2
        assert relations.document_frequency(tennis) == 1
        assert relations.idf(tennis) == pytest.approx(1.0)
        assert relations.collection_length == 4

    def test_remove_unknown_raises(self, relations):
        with pytest.raises(CatalogError):
            relations.remove_document("http://x/nope")

    def test_stats(self, relations):
        stats = relations.stats()
        assert stats["documents"] == 3
        assert stats["terms"] == 4
        assert stats["pairs"] == 5
