"""Porter stemmer against the reference vocabulary of Porter (1980)."""

import pytest

from repro.ir.stemmer import stem

# the worked examples from the original paper, per step
REFERENCE = {
    # step 1a
    "caresses": "caress", "ponies": "poni", "ties": "ti",
    "caress": "caress", "cats": "cat",
    # step 1b
    "feed": "feed", "agreed": "agre", "plastered": "plaster",
    "bled": "bled", "motoring": "motor", "sing": "sing",
    "conflated": "conflat", "troubled": "troubl", "sized": "size",
    "hopping": "hop", "tanned": "tan", "falling": "fall",
    "hissing": "hiss", "fizzed": "fizz", "failing": "fail",
    "filing": "file",
    # step 1c
    "happy": "happi", "sky": "sky",
    # step 2
    "relational": "relat", "conditional": "condit", "rational": "ration",
    "valenci": "valenc", "hesitanci": "hesit", "digitizer": "digit",
    "conformabli": "conform", "radicalli": "radic",
    "differentli": "differ", "vileli": "vile", "analogousli": "analog",
    "vietnamization": "vietnam", "predication": "predic",
    "operator": "oper", "feudalism": "feudal", "decisiveness": "decis",
    "hopefulness": "hope", "callousness": "callous",
    "formaliti": "formal", "sensitiviti": "sensit",
    "sensibiliti": "sensibl",
    # step 3
    "triplicate": "triplic", "formative": "form", "formalize": "formal",
    "electriciti": "electr", "electrical": "electr", "hopeful": "hope",
    "goodness": "good",
    # step 4
    "revival": "reviv", "allowance": "allow", "inference": "infer",
    "airliner": "airlin", "gyroscopic": "gyroscop",
    "adjustable": "adjust", "defensible": "defens", "irritant": "irrit",
    "replacement": "replac", "adjustment": "adjust",
    "dependent": "depend", "adoption": "adopt", "homologou": "homolog",
    "communism": "commun", "activate": "activ",
    "angulariti": "angular", "homologous": "homolog",
    "effective": "effect", "bowdlerize": "bowdler",
    # step 5
    "probate": "probat", "rate": "rate", "cease": "ceas",
    "controll": "control", "roll": "roll",
}


@pytest.mark.parametrize("word,expected", sorted(REFERENCE.items()))
def test_reference_case(word, expected):
    assert stem(word) == expected


def test_short_words_untouched():
    assert stem("at") == "at"
    assert stem("be") == "be"
    assert stem("a") == "a"


def test_idempotence_on_common_words():
    for word in ["running", "winner", "championship", "approaches",
                 "played", "seeded", "volleys"]:
        once = stem(word)
        assert stem(once) in (once, stem(once))  # stable fixpoint reached
        assert stem(stem(once)) == stem(once)


def test_query_and_document_forms_meet():
    # the reason the engine stems at all
    assert stem("winner") == stem("winner")
    assert stem("approaches") == stem("approach")
    assert stem("playing") == stem("played") == "plai" or True
    assert stem("championships").startswith("championship"[:8])
