"""Thesaurus expansion."""

from repro.ir.stemmer import stem
from repro.ir.thesaurus import Thesaurus


class TestRelated:
    def test_ring_members_related(self):
        thesaurus = Thesaurus()
        related = thesaurus.related("champion")
        assert stem("winner") in related
        assert stem("trophy") in related

    def test_relation_is_symmetric(self):
        thesaurus = Thesaurus()
        assert stem("champion") in thesaurus.related("winner")

    def test_unknown_word_relates_to_itself(self):
        thesaurus = Thesaurus()
        assert thesaurus.related("xylophone") == {stem("xylophone")}

    def test_inflected_forms_hit_the_ring(self):
        thesaurus = Thesaurus()
        assert stem("winner") in thesaurus.related("champions")


class TestExpansion:
    def test_expand_query_includes_synonyms(self):
        thesaurus = Thesaurus()
        expanded = thesaurus.expand_query("champion").split()
        assert stem("winner") in expanded
        assert stem("champion") in expanded

    def test_expansion_deduplicates(self):
        thesaurus = Thesaurus()
        expanded = thesaurus.expand_query("champion winner").split()
        assert len(expanded) == len(set(expanded))

    def test_stopwords_not_expanded(self):
        thesaurus = Thesaurus()
        assert thesaurus.expand_query("the of") == ""

    def test_custom_rings(self):
        thesaurus = Thesaurus(rings=[{"cat", "feline"}])
        assert stem("feline") in thesaurus.related("cat")
        assert thesaurus.related("champion") == {stem("champion")}
