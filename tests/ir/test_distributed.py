"""Distributed retrieval: merge correctness and shared-nothing shape."""

import random

import pytest

from repro.core.config import ExecutionPolicy
from repro.ir.distributed import DistributedIndex
from repro.monetdb.server import Cluster


def _corpus(documents=60, seed=5):
    rng = random.Random(seed)
    vocab = [f"w{i}" for i in range(80)]
    weights = [1.0 / (i + 1) for i in range(80)]
    docs = []
    for d in range(documents):
        words = rng.choices(vocab, weights=weights, k=40)
        if d % 6 == 0:
            words += ["trophy", "melbourne"]
        docs.append((f"http://site/p{d}", " ".join(words)))
    return docs


@pytest.fixture(scope="module")
def index() -> DistributedIndex:
    cluster = Cluster(4)
    index = DistributedIndex(cluster, fragment_count=4)
    index.add_documents(_corpus())
    return index


class TestMergeCorrectness:
    @pytest.mark.parametrize("query", [
        "trophy", "trophy melbourne", "w0 trophy", "w1 w2 w3",
    ])
    def test_distributed_equals_central(self, index, query):
        distributed = index.query(query, policy=ExecutionPolicy(n=10))
        central = index.exact_central_ranking(query, n=10)
        assert [doc for doc, _ in distributed.ranking] \
            == [doc for doc, _ in central]

    def test_scores_match_central(self, index):
        distributed = dict(index.query("trophy", policy=ExecutionPolicy(n=10)).ranking)
        central = dict(index.exact_central_ranking("trophy", n=10))
        for doc, score in distributed.items():
            assert score == pytest.approx(central[doc])

    def test_unpruned_also_correct(self, index):
        distributed = index.query("trophy melbourne",
                                   policy=ExecutionPolicy(n=10, prune=False))
        central = index.exact_central_ranking("trophy melbourne", n=10)
        assert [doc for doc, _ in distributed.ranking] \
            == [doc for doc, _ in central]

    def test_empty_query(self, index):
        assert index.query("zzzunknown", policy=ExecutionPolicy(n=10)).ranking == []


class TestSharedNothingShape:
    def test_every_node_holds_a_share(self, index):
        counts = [relations.document_count()
                  for relations in index.nodes.values()]
        assert all(count > 0 for count in counts)
        assert sum(counts) == index.central.document_count()

    def test_work_splits_across_nodes(self, index):
        result = index.query("w0 w1 trophy", policy=ExecutionPolicy(n=10))
        per_node = result.tuples_read_per_node()
        assert len(per_node) == 4
        # critical path well below total work: that is the parallelism
        assert result.max_node_tuples() < result.total_tuples()

    def test_larger_cluster_lowers_critical_path(self):
        docs = _corpus(documents=120, seed=7)
        small = DistributedIndex(Cluster(2), fragment_count=4)
        small.add_documents(docs)
        large = DistributedIndex(Cluster(8), fragment_count=4)
        large.add_documents(docs)
        query = "w0 w1 w2 trophy"
        NO_PRUNE = ExecutionPolicy(n=10, prune=False)
        small_path = small.query(query, policy=NO_PRUNE).max_node_tuples()
        large_path = large.query(query, policy=NO_PRUNE).max_node_tuples()
        assert large_path < small_path
