"""Tokenizer, stopper, analyzer."""

from hypothesis import given
from hypothesis import strategies as st

from repro.ir.text import STOP_WORDS, analyze, normalize, tokenize


class TestTokenize:
    def test_splits_on_punctuation(self):
        assert tokenize("Hello, world! It's me.") \
            == ["hello", "world", "its", "me"]

    def test_intra_word_apostrophes_joined(self):
        # "don't" must not shed one-letter junk tokens into the index
        assert tokenize("don't") == ["dont"]
        assert tokenize("O'Brien's serve") == ["obriens", "serve"]
        # the unicode right single quote behaves identically
        assert tokenize("it’s") == ["its"]

    def test_edge_apostrophes_still_separate(self):
        assert tokenize("'quoted'") == ["quoted"]
        assert tokenize("rock 'n roll") == ["rock", "n", "roll"]
        assert tokenize("ends'") == ["ends"]

    def test_lowercases(self):
        assert tokenize("Monica SELES") == ["monica", "seles"]

    def test_keeps_digits(self):
        assert tokenize("won in 1991") == ["won", "in", "1991"]

    def test_empty_text(self):
        assert tokenize("") == []
        assert tokenize("  ...  ") == []


class TestNormalize:
    def test_stop_words_dropped(self):
        assert normalize("the") is None
        assert normalize("and") is None

    def test_content_words_stemmed(self):
        assert normalize("winners") == "winner"
        assert normalize("approaching") == "approach"

    def test_self_contained_on_raw_input(self):
        # callers bypassing tokenize (the rich-query parser) hand in
        # raw case: normalize must lowercase before stopping/stemming
        assert normalize("The") is None
        assert normalize("WINNERS") == "winner"
        assert normalize("") is None


class TestAnalyze:
    def test_pipeline(self):
        terms = analyze("The winner approaches the net")
        assert "the" not in terms
        assert "winner" in terms
        assert "approach" in terms
        assert "net" in terms

    def test_stability(self):
        assert analyze("Winner!") == analyze("winner")

    def test_stopword_only_text(self):
        assert analyze("the and of to") == []


@given(st.text(max_size=200))
def test_analyze_never_returns_stopwords(text):
    assert not (set(analyze(text)) & STOP_WORDS)


@given(st.text(max_size=200))
def test_tokens_are_lowercase_alnum(text):
    for token in tokenize(text):
        assert token == token.lower()
        assert token.isalnum()


@given(st.text(max_size=200))
def test_analyze_is_normalize_of_tokenize(text):
    # the documented contract: the one-shot pipeline is exactly the
    # composition of its stages (so parsers may call normalize alone)
    assert analyze(text) \
        == [term for term in map(normalize, tokenize(text)) if term]
