"""IrEngine facade behaviour."""

import pytest

from repro.core.config import ExecutionPolicy
from repro.ir.engine import IrEngine


@pytest.fixture
def engine() -> IrEngine:
    engine = IrEngine(fragment_count=4)
    engine.index("doc:u1", "champion tennis serve")
    engine.index("doc:u2", "tennis court surface")
    engine.index("doc:u3", "football goal keeper")
    return engine


class TestLifecycle:
    def test_search_urls(self, engine):
        urls = [url for url, _ in engine.search_urls("champion")]
        assert urls == ["doc:u1"]

    def test_remove_unindexes(self, engine):
        engine.remove("doc:u1")
        assert engine.search_urls("champion") == []

    def test_reindex_replaces_content(self, engine):
        engine.reindex("doc:u3", "champion of football")
        urls = [url for url, _ in engine.search_urls("champion")]
        assert set(urls) == {"doc:u1", "doc:u3"}

    def test_reindex_of_new_url_indexes(self, engine):
        engine.reindex("doc:u4", "brand new champion")
        assert "doc:u4" in [url for url, _ in engine.search_urls("champion")]

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            IrEngine(model="bm25")

    def test_hiemstra_model_works(self):
        engine = IrEngine(model="hiemstra")
        engine.index("doc:u1", "champion tennis")
        engine.index("doc:u2", "court tennis")
        assert engine.search_urls("champion")[0][0] == "doc:u1"


class TestFragmentsCache:
    def test_fragments_rebuilt_after_updates(self, engine):
        first = engine.fragments()
        engine.index("doc:u9", "fresh words entirely")
        second = engine.fragments()
        assert second is not first
        assert second.total_tuples() > first.total_tuples()

    def test_search_fragmented_matches_search(self, engine):
        exact = engine.search("tennis champion",
                              policy=ExecutionPolicy(n=3))
        fragmented = engine.search_fragmented("tennis champion",
                                              policy=ExecutionPolicy(n=3))
        assert [doc for doc, _ in fragmented.ranking] \
            == [doc for doc, _ in exact]


class TestBooleanFilter:
    def test_matching_documents(self, engine):
        docs = engine.matching_documents("tennis")
        urls = {engine.relations.doc_url(doc) for doc in docs}
        assert urls == {"doc:u1", "doc:u2"}

    def test_matching_documents_empty(self, engine):
        assert engine.matching_documents("quidditch") == set()
