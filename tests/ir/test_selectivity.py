"""The cost/quality prediction model."""

import random

import pytest

from repro.ir.fragmentation import fragment_by_idf
from repro.ir.ranking import query_term_oids, rank_tfidf
from repro.ir.relations import IrRelations
from repro.ir.selectivity import QueryCostModel
from repro.ir.topn import quality_degrade, topn_cutoff


def _corpus() -> IrRelations:
    rng = random.Random(5)
    vocab = [f"w{i:03d}" for i in range(100)]
    weights = [1.0 / (i + 1) for i in range(100)]
    relations = IrRelations()
    docs = []
    for d in range(150):
        words = rng.choices(vocab, weights=weights, k=50)
        if d % 15 == 0:
            words += ["raremark"] * (d // 15 + 1)
        docs.append((f"http://c/d{d}", " ".join(words)))
    relations.add_documents(docs)
    return relations


@pytest.fixture(scope="module")
def setup():
    relations = _corpus()
    fragments = fragment_by_idf(relations, 6)
    return relations, fragments, QueryCostModel(fragments)


QUERY = "raremark w030 w000"


class TestCostPrediction:
    def test_cost_predictions_are_exact(self, setup):
        relations, fragments, model = setup
        terms = query_term_oids(relations, QUERY)
        for keep in range(0, 7):
            predicted = model.predict_cost(terms, keep)
            measured = topn_cutoff(fragments, terms, 10, keep).tuples_read
            assert predicted == measured

    def test_cost_monotone_in_keep(self, setup):
        relations, _, model = setup
        terms = query_term_oids(relations, QUERY)
        costs = [model.predict_cost(terms, keep) for keep in range(7)]
        assert costs == sorted(costs)

    def test_empty_query_costs_nothing(self, setup):
        _, _, model = setup
        assert model.predict_cost([], 6) == 0


class TestQualityPrediction:
    def test_endpoints(self, setup):
        relations, _, model = setup
        terms = query_term_oids(relations, QUERY)
        assert model.predict_quality(terms, 0) == 0.0
        assert model.predict_quality(terms, 6) == pytest.approx(1.0)

    def test_monotone_in_keep(self, setup):
        relations, _, model = setup
        terms = query_term_oids(relations, QUERY)
        curve = [model.predict_quality(terms, keep) for keep in range(7)]
        assert curve == sorted(curve)

    def test_predictions_track_measured_quality(self, setup):
        """Calibration: predicted and measured quality must agree in
        rank order (the optimizer only needs the ordering)."""
        relations, fragments, model = setup
        terms = query_term_oids(relations, QUERY)
        exact = rank_tfidf(relations, QUERY, n=10)
        predicted = []
        measured = []
        for keep in range(1, 7):
            predicted.append(model.predict_quality(terms, keep))
            cut = topn_cutoff(fragments, terms, 10, keep)
            measured.append(quality_degrade(exact, cut.ranking))
        # same ordering, and when prediction says 1.0 quality IS 1.0
        order_p = sorted(range(6), key=lambda i: predicted[i])
        order_m = sorted(range(6), key=lambda i: measured[i])
        assert order_p == order_m or measured == sorted(measured)
        for p, m in zip(predicted, measured):
            if p == pytest.approx(1.0):
                assert m == 1.0

    def test_unknown_terms_mean_perfect_quality(self, setup):
        _, _, model = setup
        assert model.predict_quality([], 0) == 1.0


class TestOptimizerDecision:
    def test_plan_meets_target(self, setup):
        relations, fragments, model = setup
        terms = query_term_oids(relations, QUERY)
        exact = rank_tfidf(relations, QUERY, n=10)
        plan = model.choose_fragments(terms, quality_target=0.95)
        cut = topn_cutoff(fragments, terms, 10, plan.keep_fragments)
        assert plan.predicted_quality >= 0.95
        # the a-priori plan reads no more than the full scan
        full = topn_cutoff(fragments, terms, 10, 6)
        assert cut.tuples_read <= full.tuples_read

    def test_lower_target_is_cheaper(self, setup):
        relations, _, model = setup
        terms = query_term_oids(relations, QUERY)
        cheap = model.choose_fragments(terms, quality_target=0.5)
        thorough = model.choose_fragments(terms, quality_target=0.99)
        assert cheap.keep_fragments <= thorough.keep_fragments
        assert cheap.predicted_cost <= thorough.predicted_cost

    def test_curve_shape(self, setup):
        relations, _, model = setup
        terms = query_term_oids(relations, QUERY)
        curve = model.quality_curve(terms)
        assert curve[0] == (0, 0, 0.0)
        assert curve[-1][2] == pytest.approx(1.0)
