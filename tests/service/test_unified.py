"""Every legacy query method is a thin adapter over execute(request)."""

import pytest

from repro.core.config import EngineConfig, ExecutionPolicy
from repro.errors import QueryError
from repro.ir.engine import ClusterIrEngine
from repro.service.api import SCHEMA_VERSION, SearchRequest

from tests.service.conftest import build_ir_engine, corpus

pytestmark = pytest.mark.service


class TestIrEngineAdapters:
    def test_search_equals_execute_content_mode(self):
        engine = build_ir_engine()
        policy = ExecutionPolicy(n=5)
        adapter = engine.search("trophy champion", policy=policy)
        response = engine.execute(SearchRequest(
            query="trophy champion", mode="content", policy=policy))
        ranked = [(engine.relations.doc_url(doc), score)
                  for doc, score in adapter]
        assert [(hit.key, hit.score) for hit in response.hits] == ranked

    def test_search_urls_equals_execute_hits(self):
        engine = build_ir_engine()
        policy = ExecutionPolicy(n=5)
        urls = engine.search_urls("trophy champion", policy=policy)
        response = engine.execute(SearchRequest(
            query="trophy champion", mode="content", policy=policy))
        assert [(hit.key, hit.score) for hit in response.hits] == urls

    def test_search_fragmented_returns_the_execute_result(self):
        engine = build_ir_engine()
        policy = ExecutionPolicy(n=5)
        adapter = engine.search_fragmented("trophy champion",
                                           policy=policy)
        response = engine.execute(SearchRequest(
            query="trophy champion", mode="fragmented", policy=policy))
        assert adapter.ranking == response.result.ranking

    def test_conceptual_mode_needs_the_integrated_engine(self):
        engine = build_ir_engine()
        with pytest.raises(QueryError, match="SearchEngine"):
            engine.execute(SearchRequest(query="trophy"))


class TestClusterAdapters:
    def test_clustered_search_urls_equals_execute_hits(self):
        clustered = ClusterIrEngine(cluster_size=3, fragment_count=4)
        clustered.index.add_documents(corpus(documents=30))
        policy = ExecutionPolicy(n=5)
        urls = clustered.search_urls("trophy champion", policy=policy)
        response = clustered.execute(SearchRequest(
            query="trophy champion", mode="content", policy=policy))
        assert [(hit.key, hit.score) for hit in response.hits] == urls
        assert response.result.to_dict()["schema_version"] \
            == SCHEMA_VERSION


class TestSearchEngineAdapters:
    def test_query_text_is_the_execute_result(self, search_engine):
        query = ("SELECT p.name FROM Player p "
                 "WHERE p.history CONTAINS 'Winner' TOP 5")
        adapter = search_engine.query_text(query)
        response = search_engine.execute(SearchRequest(query=query))
        assert [row.values for row in adapter.rows] \
            == [row.values for row in response.result.rows]
        assert adapter.to_dict()["schema_version"] == SCHEMA_VERSION

    def test_content_mode_delegates_to_the_ir_engine(self, search_engine):
        response = search_engine.execute(SearchRequest(
            query="tennis", mode="content",
            policy=ExecutionPolicy(n=3)))
        assert response.hits
        assert all(hit.score > 0.0 for hit in response.hits)
