"""The versioned Request/Response wire contract."""

import pytest

from repro.core.config import ExecutionPolicy
from repro.errors import QueryError
from repro.service.api import (MODES, SCHEMA_VERSION, Hit, SearchRequest,
                               SearchResponse, response_from_ranking)

pytestmark = pytest.mark.service


class TestSearchRequest:
    def test_roundtrips_through_the_wire_shape(self):
        request = SearchRequest(query="trophy", mode="content",
                                policy=ExecutionPolicy(n=7, prune=False),
                                trace_id="t-1")
        assert SearchRequest.from_dict(request.to_dict()) == request

    def test_to_dict_is_stamped(self):
        payload = SearchRequest(query="trophy").to_dict()
        assert payload["schema_version"] == SCHEMA_VERSION

    def test_empty_query_is_rejected(self):
        with pytest.raises(QueryError):
            SearchRequest(query="   ")

    def test_unknown_mode_is_rejected_naming_the_modes(self):
        with pytest.raises(QueryError, match="mode"):
            SearchRequest(query="trophy", mode="semantic")
        assert {"conceptual", "content", "fragmented"} == set(MODES)

    def test_from_dict_rejects_future_schema_versions(self):
        payload = SearchRequest(query="trophy").to_dict()
        payload["schema_version"] = 99
        with pytest.raises(QueryError, match="schema_version"):
            SearchRequest.from_dict(payload)

    def test_from_dict_rejects_unknown_fields(self):
        payload = SearchRequest(query="trophy").to_dict()
        payload["limit"] = 10
        with pytest.raises(QueryError, match="limit"):
            SearchRequest.from_dict(payload)

    def test_from_dict_rejects_unknown_policy_knobs(self):
        payload = SearchRequest(query="trophy").to_dict()
        payload["policy"]["parallelism"] = 4
        with pytest.raises(QueryError, match="parallelism"):
            SearchRequest.from_dict(payload)

    def test_requests_are_immutable(self):
        request = SearchRequest(query="trophy")
        with pytest.raises(AttributeError):
            request.query = "changed"


class TestSearchResponse:
    def _response(self) -> SearchResponse:
        request = SearchRequest(query="trophy", mode="content")
        return response_from_ranking(
            request, [("doc:a", 0.9), ("doc:b", 0.4)], elapsed_ms=1.5,
            cache_hit=True, tuples_touched=12)

    def test_to_dict_is_stamped_and_carries_the_request(self):
        payload = self._response().to_dict()
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["query"] == "trophy"
        assert payload["mode"] == "content"
        assert [hit["key"] for hit in payload["hits"]] == ["doc:a", "doc:b"]
        assert payload["timings"]["total_ms"] == 1.5

    def test_annotate_replaces_without_mutation(self):
        response = self._response()
        annotated = response.annotate(queue_ms=3.0, coalesced=True)
        assert annotated.queue_ms == 3.0 and annotated.coalesced
        assert response.queue_ms == 0.0 and not response.coalesced
        assert annotated.hits == response.hits

    def test_hits_are_value_objects(self):
        hit = Hit(key="doc:a", score=0.5)
        assert hit.to_dict() == {"key": "doc:a", "score": 0.5, "values": {}}
