"""Restore must flush coalescing state: single-flight table, caches.

The restored engine's generation stamps can coincide with the old
engine's (both counted from zero), so any state keyed by generation —
an in-flight single-flight leader, a cached query result — can leak a
pre-restore answer to a post-restore request unless the swap flushes
it.
"""

import threading

import pytest

from repro.service import SearchService
from repro.service.singleflight import SingleFlight
from repro.telemetry import telemetry_session

pytestmark = pytest.mark.service


class TestSingleFlightFlush:
    def test_flush_drops_every_flight_and_counts_them(self):
        flights = SingleFlight()
        started = threading.Event()
        release = threading.Event()

        def slow():
            started.set()
            release.wait(5.0)
            return "stale"

        thread = threading.Thread(
            target=lambda: flights.run("k", slow))
        thread.start()
        assert started.wait(5.0)
        assert flights.status()["flights"] == 1
        assert flights.flush() == 1
        assert flights.status()["flights"] == 0
        release.set()
        thread.join(5.0)
        assert flights.flush() == 0

    def test_post_flush_arrival_leads_its_own_flight(self):
        """After a flush, an identical key must execute fresh instead
        of coalescing onto the pre-flush leader."""
        flights = SingleFlight()
        started = threading.Event()
        release = threading.Event()
        outcomes = {}

        def old_world():
            started.set()
            release.wait(5.0)
            return "pre-restore"

        def leader():
            outcomes["old"] = flights.run("k", old_world)

        thread = threading.Thread(target=leader)
        thread.start()
        assert started.wait(5.0)
        flights.flush()
        value, coalesced = flights.run("k", lambda: "post-restore")
        assert (value, coalesced) == ("post-restore", False)
        release.set()
        thread.join(5.0)
        assert outcomes["old"] == ("pre-restore", False)

    def test_finished_leader_never_deletes_a_successors_flight(self):
        """The leader's cleanup is identity-guarded: when a flush has
        already dropped its flight and a newer leader re-registered
        under the same key, finishing must not unregister the newer
        flight (followers would then miss its answer)."""
        flights = SingleFlight()
        started = threading.Event()
        release = threading.Event()

        def old_world():
            started.set()
            release.wait(5.0)
            return "pre-restore"

        thread = threading.Thread(target=lambda: flights.run("k", old_world))
        thread.start()
        assert started.wait(5.0)
        flights.flush()

        new_started = threading.Event()
        new_release = threading.Event()

        def new_world():
            new_started.set()
            new_release.wait(5.0)
            return "post-restore"

        new_leader = threading.Thread(
            target=lambda: flights.run("k", new_world))
        new_leader.start()
        assert new_started.wait(5.0)
        # old leader finishes while the new flight is still running
        release.set()
        thread.join(5.0)
        assert flights.status()["flights"] == 1  # the new one survives
        # a follower arriving now coalesces onto the *new* leader
        follower_result = {}

        def follower():
            follower_result["got"] = flights.run("k", lambda: "wrong")

        tail = threading.Thread(target=follower)
        tail.start()
        new_release.set()
        new_leader.join(5.0)
        tail.join(5.0)
        assert follower_result["got"] == ("post-restore", True)


class TestRestoreFlushesState:
    def test_restore_flushes_flights_and_invalidates_caches(
            self, search_engine, tmp_path):
        service = SearchService(search_engine)
        service.snapshot(tmp_path)

        started = threading.Event()
        release = threading.Event()

        def slow():
            started.set()
            release.wait(5.0)
            return "stale"

        thread = threading.Thread(
            target=lambda: service._flights.run("hot-query", slow))
        thread.start()
        assert started.wait(5.0)
        try:
            with telemetry_session() as telemetry:
                service.restore(tmp_path)
                counters = telemetry.metrics.snapshot()["counters"]
            assert counters["service.restore_flushed_flights"] == 1
            assert "service.restore_invalidated" in counters
            assert service._flights.status()["flights"] == 0
        finally:
            release.set()
            thread.join(5.0)
