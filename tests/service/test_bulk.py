"""Bulk search: one admission, one lock hold, per-item isolation.

``SearchService.execute_bulk`` and its HTTP surface
(``POST /v1/search:bulk``) — the amortized path for analytics
workloads.  The contract under test: results align positionally with
the request batch, one malformed item never fails its siblings, the
token bucket is charged per *item* (rate limits bound query load, not
HTTP request count), and batch-level failures keep the exact status
mapping of the single-request endpoint.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.errors import QueryError, ServiceOverloadedError
from repro.service import (MAX_BULK_ITEMS, ErrorResponse, SearchRequest,
                           SearchResponse, SearchService, ServicePolicy,
                           serve)
from repro.service.api import SCHEMA_VERSION, SCHEMA_VERSION_V2

from tests.service.conftest import build_ir_engine

pytestmark = [pytest.mark.service, pytest.mark.offline]


@pytest.fixture
def service():
    with SearchService(build_ir_engine(documents=30)) as svc:
        yield svc


class TestExecuteBulk:
    def test_results_align_with_the_batch(self, service):
        batch = [
            SearchRequest(query="trophy champion", mode="content"),
            SearchRequest(query="trophy", mode="fragmented"),
            SearchRequest(query="trophy", mode="content",
                          schema_version=SCHEMA_VERSION_V2, limit=2),
        ]
        results = service.execute_bulk(batch)
        assert len(results) == len(batch)
        assert all(isinstance(r, SearchResponse) for r in results)
        assert results[0].request.mode == "content"
        assert results[1].request.mode == "fragmented"
        assert len(results[2].hits) <= 2

    def test_bulk_matches_sequential_answers(self, service):
        batch = [SearchRequest(query="trophy champion", mode="content"),
                 SearchRequest(query="w0 w1", mode="content")]
        bulk = service.execute_bulk(batch)
        for request, bulk_response in zip(batch, bulk):
            single = service.search(request)
            one, other = single.to_dict(), bulk_response.to_dict()
            one.pop("timings"), other.pop("timings")
            # single-request path may coalesce/cache; ranking must match
            one.pop("cache_hit"), other.pop("cache_hit")
            one.pop("coalesced"), other.pop("coalesced")
            assert one == other

    def test_per_item_errors_never_fail_the_batch(self, service):
        batch = [
            SearchRequest(query="trophy", mode="content"),
            SearchRequest(query="x", mode="conceptual"),  # bare IR: fails
            "not a request at all",
            SearchRequest(query="champion", mode="content"),
        ]
        results = service.execute_bulk(batch)
        assert isinstance(results[0], SearchResponse)
        assert isinstance(results[1], ErrorResponse)
        assert results[1].kind == "bad_request"
        assert isinstance(results[2], ErrorResponse)
        assert "SearchRequest" in results[2].message
        assert isinstance(results[3], SearchResponse)

    def test_empty_batch_is_a_query_error(self, service):
        with pytest.raises(QueryError, match="at least one"):
            service.execute_bulk([])

    def test_oversized_batch_is_a_query_error(self, service):
        batch = [SearchRequest(query="w0", mode="content")] \
            * (MAX_BULK_ITEMS + 1)
        with pytest.raises(QueryError, match=str(MAX_BULK_ITEMS)):
            service.execute_bulk(batch)

    def test_batch_runs_in_one_execution_slot(self):
        # max_inflight=1: a batch bigger than the inflight bound still
        # completes, because the whole batch occupies a single slot
        with SearchService(build_ir_engine(documents=20),
                           ServicePolicy(max_inflight=1,
                                         max_queue=0)) as svc:
            batch = [SearchRequest(query="trophy", mode="content")] * 8
            assert len(svc.execute_bulk(batch)) == 8

    def test_rate_bucket_is_charged_per_item(self):
        # burst 4, batch 6: admitted (the bucket borrows), but the
        # borrow is real — the next single request is shed
        with SearchService(build_ir_engine(documents=20),
                           ServicePolicy(rate=0.001, burst=4)) as svc:
            batch = [SearchRequest(query="trophy", mode="content")] * 6
            assert len(svc.execute_bulk(batch)) == 6
            with pytest.raises(ServiceOverloadedError) as excinfo:
                svc.search(SearchRequest(query="trophy", mode="content"))
            assert excinfo.value.reason == "rate"


def post_bulk(base, payload, timeout=10.0):
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        base + "/v1/search:bulk", data=body,
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=timeout) as reply:
        return reply.status, json.loads(reply.read())


@pytest.fixture
def server():
    engine = build_ir_engine(documents=30)
    service = SearchService(engine, ServicePolicy(max_inflight=4,
                                                  max_queue=8))
    httpd = serve(service, "127.0.0.1", 0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        yield httpd
    finally:
        httpd.shutdown_gracefully(5.0)
        httpd.server_close()
        thread.join(5.0)


class TestBulkEndpoint:
    def test_bulk_roundtrip_with_item_isolation(self, server):
        status, payload = post_bulk(server.address, {"requests": [
            {"query": "trophy champion", "mode": "content"},
            {"query": "trophy", "mode": "semantic"},  # malformed item
            {"query": "trophy", "mode": "content",
             "schema_version": 2, "limit": 2, "facets": ["class"]},
        ]})
        assert status == 200
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["items"] == 3
        assert payload["errors"] == 1
        results = payload["results"]
        assert len(results) == 3
        assert results[0]["hits"]
        assert results[1]["error"]["kind"] == "bad_request"
        assert "mode" in results[1]["error"]["message"]
        assert len(results[2]["hits"]) <= 2

    def test_non_object_body_is_a_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_bulk(server.address, ["not", "an", "object"])
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read())
        assert body["error"]["kind"] == "bad_request"

    def test_empty_batch_is_a_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_bulk(server.address, {"requests": []})
        assert excinfo.value.code == 400

    def test_oversized_batch_is_a_400(self, server):
        item = {"query": "trophy", "mode": "content"}
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_bulk(server.address,
                      {"requests": [item] * (MAX_BULK_ITEMS + 1)})
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read())
        assert str(MAX_BULK_ITEMS) in body["error"]["message"]

    def test_shed_batch_is_429_with_retry_after_header(self):
        engine = build_ir_engine(documents=20)
        service = SearchService(engine,
                                ServicePolicy(rate=0.001, burst=1))
        httpd = serve(service, "127.0.0.1", 0)
        thread = threading.Thread(target=httpd.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            item = {"query": "trophy", "mode": "content"}
            status, _ = post_bulk(httpd.address, {"requests": [item]})
            assert status == 200
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post_bulk(httpd.address, {"requests": [item] * 3})
            assert excinfo.value.code == 429
            header = excinfo.value.headers["Retry-After"]
            assert header == str(int(header)) and int(header) >= 1
            body = json.loads(excinfo.value.read())
            assert body["error"]["kind"] == "rate"
            assert body["error"]["retry_after"] > 0.0
        finally:
            httpd.shutdown_gracefully(5.0)
            httpd.server_close()
            thread.join(5.0)

    def test_draining_service_fails_the_batch_with_503(self):
        engine = build_ir_engine(documents=20)
        service = SearchService(engine)
        httpd = serve(service, "127.0.0.1", 0)
        thread = threading.Thread(target=httpd.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            service.drain(5.0)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post_bulk(httpd.address, {"requests": [
                    {"query": "trophy", "mode": "content"}]})
            assert excinfo.value.code == 503
            body = json.loads(excinfo.value.read())
            assert body["error"]["kind"] == "draining"
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(5.0)
