"""Admission control under a fake clock: buckets, queues, shedding."""

import threading

import pytest

from repro.errors import ServiceOverloadedError
from repro.service.admission import (AdmissionController, ServicePolicy,
                                     TokenBucket)

pytestmark = pytest.mark.service


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestServicePolicy:
    def test_defaults_are_sane(self):
        policy = ServicePolicy()
        assert policy.max_inflight >= 1 and policy.coalesce

    @pytest.mark.parametrize("kwargs", [
        {"max_inflight": 0}, {"max_queue": -1},
        {"queue_timeout_ms": 0.0}, {"rate": 0.0}, {"burst": 0},
    ])
    def test_bad_knobs_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServicePolicy(**kwargs)


class TestTokenBucket:
    def test_burst_then_starvation(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3, clock=clock)
        assert [bucket.try_acquire() for _ in range(3)] == [0.0, 0.0, 0.0]
        assert bucket.try_acquire() > 0.0

    def test_refills_continuously(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1, clock=clock)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0
        clock.advance(0.5)  # half a second at 2/s = one token
        assert bucket.try_acquire() == 0.0

    def test_retry_after_predicts_the_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=4.0, burst=1, clock=clock)
        bucket.try_acquire()
        retry_after = bucket.try_acquire()
        assert retry_after == pytest.approx(0.25)
        clock.advance(retry_after)
        assert bucket.try_acquire() == 0.0


class TestAdmissionController:
    def test_admits_up_to_max_inflight(self):
        controller = AdmissionController(ServicePolicy(max_inflight=2,
                                                       max_queue=0))
        assert controller.admit() == 0.0
        assert controller.admit() == 0.0
        with pytest.raises(ServiceOverloadedError) as excinfo:
            controller.admit()
        assert excinfo.value.reason == "queue"
        assert excinfo.value.retry_after > 0.0
        controller.release()
        controller.release()

    def test_release_frees_a_slot(self):
        controller = AdmissionController(ServicePolicy(max_inflight=1,
                                                       max_queue=0))
        controller.admit()
        controller.release()
        assert controller.admit() == 0.0
        controller.release()

    def test_rate_limit_sheds_with_reason_rate(self):
        clock = FakeClock()
        controller = AdmissionController(
            ServicePolicy(rate=1.0, burst=1), clock=clock)
        controller.admit()
        with pytest.raises(ServiceOverloadedError) as excinfo:
            controller.admit()
        assert excinfo.value.reason == "rate"
        assert excinfo.value.retry_after > 0.0
        controller.release()

    def test_queue_timeout_sheds_with_reason_timeout(self):
        controller = AdmissionController(
            ServicePolicy(max_inflight=1, max_queue=4,
                          queue_timeout_ms=30.0))
        controller.admit()
        with pytest.raises(ServiceOverloadedError) as excinfo:
            controller.admit()  # queues, then times out after 30ms
        assert excinfo.value.reason == "timeout"
        controller.release()

    def test_queued_request_reports_its_wait(self):
        controller = AdmissionController(
            ServicePolicy(max_inflight=1, max_queue=1,
                          queue_timeout_ms=2000.0))
        controller.admit()
        queued_ms = []

        def waiter():
            queued_ms.append(controller.admit())
            controller.release()

        thread = threading.Thread(target=waiter)
        thread.start()
        # let the waiter actually enter the queue before releasing
        for _ in range(200):
            if controller.status()["waiting"] == 1:
                break
            threading.Event().wait(0.005)
        controller.release()
        thread.join(timeout=2.0)
        assert not thread.is_alive()
        assert len(queued_ms) == 1 and queued_ms[0] >= 0.0
        assert controller.status() == {"active": 0, "waiting": 0}
