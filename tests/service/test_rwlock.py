"""The write-preferring reader–writer lock."""

import threading
import time

import pytest

from repro.service.rwlock import RwLock

pytestmark = pytest.mark.service


def run_all(threads, timeout=5.0):
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout)
    assert not any(thread.is_alive() for thread in threads)


class TestReaders:
    def test_readers_share_the_lock(self):
        lock = RwLock()
        inside = threading.Barrier(3, timeout=5.0)

        def reader():
            with lock.read_locked():
                inside.wait()  # all three must be inside at once

        run_all([threading.Thread(target=reader) for _ in range(3)])
        assert lock.status() == {"readers": 0, "writer_active": False,
                                 "writers_waiting": 0}


class TestWriterExclusion:
    def test_writer_excludes_readers_and_writers(self):
        lock = RwLock()
        active = []
        torn = []

        def writer(tag):
            with lock.write_locked():
                active.append(tag)
                time.sleep(0.01)
                if len(active) > 1:
                    torn.append(tuple(active))
                active.remove(tag)

        def reader():
            with lock.read_locked():
                if active:
                    torn.append(("reader-saw", tuple(active)))

        run_all([threading.Thread(target=writer, args=(i,))
                 for i in range(3)]
                + [threading.Thread(target=reader) for _ in range(6)])
        assert torn == []

    def test_write_preference_blocks_new_readers(self):
        lock = RwLock()
        lock.acquire_read()
        writer_done = threading.Event()
        late_reader_ran_after_writer = []

        def writer():
            lock.acquire_write()
            writer_done.set()
            lock.release_write()

        def late_reader():
            # arrives while the writer is queued; with write preference
            # it must run only after the writer finished
            while lock.status()["writers_waiting"] == 0:
                time.sleep(0.001)
            with lock.read_locked():
                late_reader_ran_after_writer.append(writer_done.is_set())

        writer_thread = threading.Thread(target=writer)
        reader_thread = threading.Thread(target=late_reader)
        writer_thread.start()
        reader_thread.start()
        time.sleep(0.05)
        lock.release_read()  # lets the writer in, then the late reader
        writer_thread.join(5.0)
        reader_thread.join(5.0)
        assert late_reader_ran_after_writer == [True]
