"""HTTP round-trips against the JSON daemon on an ephemeral port."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.config import ExecutionPolicy
from repro.service import (SearchRequest, SearchService, ServicePolicy,
                           serve)
from repro.service.api import SCHEMA_VERSION

from tests.service.conftest import build_ir_engine

pytestmark = pytest.mark.service


def post(base, payload, timeout=5.0):
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        base + "/v1/search", data=body,
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=timeout) as reply:
        return reply.status, json.loads(reply.read())


@pytest.fixture()
def server():
    engine = build_ir_engine(documents=30)
    service = SearchService(engine, ServicePolicy(
        max_inflight=4, max_queue=8))
    httpd = serve(service, "127.0.0.1", 0)  # port 0: ephemeral
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        yield httpd
    finally:
        httpd.shutdown_gracefully(5.0)
        httpd.server_close()
        thread.join(5.0)


class TestSearchEndpoint:
    def test_roundtrip_speaks_the_versioned_contract(self, server):
        request = SearchRequest(query="trophy champion", mode="content",
                                policy=ExecutionPolicy(n=3),
                                trace_id="req-42")
        status, payload = post(server.address, request.to_dict())
        assert status == 200
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["trace_id"] == "req-42"
        assert payload["rows"] == len(payload["hits"]) <= 3
        assert all(hit["score"] >= 0.0 for hit in payload["hits"])
        assert payload["timings"]["total_ms"] >= 0.0

    def test_malformed_json_is_a_400(self, server):
        request = urllib.request.Request(
            server.address + "/v1/search", data=b"{not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5.0)
        assert excinfo.value.code == 400

    def test_bad_request_fields_are_a_400_with_the_reason(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(server.address, {"query": "trophy", "mode": "semantic"})
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read())
        assert body["schema_version"] == SCHEMA_VERSION
        assert body["error"]["kind"] == "bad_request"
        assert "mode" in body["error"]["message"]

    def test_unknown_endpoint_is_a_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(server.address + "/v2/search",
                                   timeout=5.0)
        assert excinfo.value.code == 404
        body = json.loads(excinfo.value.read())
        assert body["error"]["kind"] == "not_found"


class TestOverloadIsNeverA5xx:
    def test_rate_limited_requests_get_429_with_retry_after(self):
        engine = build_ir_engine(documents=30)
        service = SearchService(engine, ServicePolicy(rate=0.5, burst=1))
        httpd = serve(service, "127.0.0.1", 0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            request = SearchRequest(query="trophy", mode="content")
            status, _ = post(httpd.address, request.to_dict())
            assert status == 200
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post(httpd.address, request.to_dict())
            assert excinfo.value.code == 429
            assert float(excinfo.value.headers["Retry-After"]) >= 1.0
            body = json.loads(excinfo.value.read())
            assert body["error"]["kind"] == "rate"
            assert body["error"]["retry_after"] > 0.0
        finally:
            httpd.shutdown_gracefully(5.0)
            httpd.server_close()
            thread.join(5.0)


class TestIntrospectionEndpoints:
    def test_healthz_reports_running(self, server):
        with urllib.request.urlopen(server.address + "/healthz",
                                    timeout=5.0) as reply:
            payload = json.loads(reply.read())
        assert reply.status == 200
        assert payload["state"] == "running"
        assert payload["schema_version"] == SCHEMA_VERSION

    def test_metrics_carries_counters_and_telemetry(self, server):
        request = SearchRequest(query="trophy", mode="content")
        post(server.address, request.to_dict())
        with urllib.request.urlopen(server.address + "/metrics",
                                    timeout=5.0) as reply:
            payload = json.loads(reply.read())
        assert payload["counters"]["admitted"] >= 1
        assert "metrics" in payload

    def test_draining_service_fails_healthz_and_sheds_searches(self):
        engine = build_ir_engine(documents=20)
        service = SearchService(engine)
        httpd = serve(service, "127.0.0.1", 0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            service.drain(5.0)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(httpd.address + "/healthz",
                                       timeout=5.0)
            assert excinfo.value.code == 503
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post(httpd.address,
                     SearchRequest(query="trophy",
                                   mode="content").to_dict())
            assert excinfo.value.code == 503
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(5.0)


class TestRetryAfterClamp:
    """The header is clamped to >= 1 whole second: sub-second hints
    serialize as ``Retry-After: 0`` and compliant clients hammer."""

    def test_sub_second_hints_clamp_to_one(self):
        from repro.service.httpd import retry_after_header

        assert retry_after_header(0.0) == "1"
        assert retry_after_header(0.049) == "1"
        assert retry_after_header(0.999) == "1"

    def test_longer_hints_round_up_to_whole_seconds(self):
        from repro.service.httpd import retry_after_header

        assert retry_after_header(1.0) == "1"
        assert retry_after_header(1.2) == "2"
        assert retry_after_header(30.0) == "30"

    def test_wire_header_is_a_positive_integer(self):
        """End to end: a shed response carries an integral header >= 1
        even when the admission hint is a few milliseconds."""
        engine = build_ir_engine(documents=30)
        service = SearchService(engine, ServicePolicy(rate=2.0, burst=1))
        httpd = serve(service, "127.0.0.1", 0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            request = SearchRequest(query="trophy", mode="content")
            status, _ = post(httpd.address, request.to_dict())
            assert status == 200
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post(httpd.address, request.to_dict())
            assert excinfo.value.code == 429
            header = excinfo.value.headers["Retry-After"]
            assert header == str(int(header))  # integral, no decimals
            assert int(header) >= 1
            # the JSON body keeps the precise sub-second hint
            body = json.loads(excinfo.value.read())
            assert 0.0 < body["error"]["retry_after"] <= 1.0
        finally:
            httpd.shutdown_gracefully(5.0)
            httpd.server_close()
            thread.join(5.0)
