"""Shared fixtures for the service suite.

Every test runs under the thread-leak check from the cluster suite: a
service layer whose tests leak worker threads is a service layer that
leaks them in production, where they pin the index in memory and keep
the process from exiting on drain.
"""

import random
import threading
import time

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import SearchEngine
from repro.ir.engine import IrEngine
from repro.web.ausopen import build_ausopen_site
from repro.webspace.schema import australian_open_schema

@pytest.fixture(autouse=True)
def no_thread_leaks():
    """Fail any test that leaks a live non-daemon thread."""
    before = set(threading.enumerate())
    yield
    leaked = set()
    # drained services and shut-down HTTP servers stop synchronously,
    # but give unwinding workers a short grace period
    for _ in range(100):
        leaked = {thread for thread in threading.enumerate()
                  if thread not in before
                  and not thread.daemon and thread.is_alive()}
        if not leaked:
            break
        time.sleep(0.01)
    assert not leaked, \
        f"leaked non-daemon threads: {sorted(t.name for t in leaked)}"


def corpus(documents=40, seed=7):
    rng = random.Random(seed)
    vocab = [f"w{i}" for i in range(60)]
    weights = [1.0 / (i + 1) for i in range(60)]
    docs = []
    for d in range(documents):
        words = rng.choices(vocab, weights=weights, k=30)
        if d % 5 == 0:
            words += ["trophy", "champion"]
        docs.append((f"doc:p{d}", " ".join(words)))
    return docs


def build_ir_engine(documents=40) -> IrEngine:
    engine = IrEngine(fragment_count=4)
    for url, text in corpus(documents):
        engine.index(url, text)
    return engine


@pytest.fixture(scope="module")
def search_engine() -> SearchEngine:
    server, _ = build_ausopen_site(players=8, articles=4, videos=2,
                                   frames_per_shot=6)
    engine = SearchEngine(australian_open_schema(), server,
                          EngineConfig(fragment_count=4))
    engine.populate()
    return engine
