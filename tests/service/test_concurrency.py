"""The service under concurrency: parallel reads, writes, shed, drain."""

import threading
import time

import pytest

from repro.core.config import ExecutionPolicy
from repro.errors import ServiceClosedError, ServiceOverloadedError
from repro.service import (SearchRequest, SearchService, ServicePolicy)

from tests.service.conftest import build_ir_engine

pytestmark = pytest.mark.service

NO_CACHE = ExecutionPolicy(n=5, cache=False)


class TestParallelReadsDuringWrites:
    def test_queries_survive_a_concurrent_writer(self):
        engine = build_ir_engine(documents=40)
        service = SearchService(engine, ServicePolicy(
            max_inflight=8, max_queue=64, queue_timeout_ms=10000.0))
        errors = []
        responses = []
        lock = threading.Lock()
        stop = threading.Event()

        def reader(tag):
            for i in range(15):
                try:
                    response = service.submit(
                        f"trophy champion w{tag} w{i % 10}",
                        mode="content", policy=NO_CACHE)
                except Exception as exc:  # noqa: BLE001 - recorded
                    with lock:
                        errors.append(exc)
                else:
                    with lock:
                        responses.append(response)

        def writer():
            i = 0
            while not stop.is_set():
                service.reindex(f"doc:hot{i % 3}",
                                f"trophy champion fresh{i}")
                i += 1
                time.sleep(0.001)

        readers = [threading.Thread(target=reader, args=(t,))
                   for t in range(6)]
        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        for thread in readers:
            thread.start()
        for thread in readers:
            thread.join(30.0)
        stop.set()
        writer_thread.join(5.0)
        assert errors == []
        assert len(responses) == 6 * 15
        # every response is structurally sound despite interleaved writes
        for response in responses:
            for hit in response.hits:
                assert isinstance(hit.key, str) and hit.score >= 0.0
        assert service.status()["counters"]["writes"] > 0
        assert service.drain(5.0)


class TestCoalescing:
    def test_concurrent_duplicates_execute_once(self):
        engine = build_ir_engine(documents=30)
        executions = []
        real_execute = engine.execute

        def slow_execute(request):
            executions.append(request.query)
            time.sleep(0.2)
            return real_execute(request)

        engine.execute = slow_execute
        service = SearchService(engine, ServicePolicy(
            max_inflight=8, max_queue=16))
        barrier = threading.Barrier(6, timeout=5.0)
        results = []
        lock = threading.Lock()

        def query():
            barrier.wait()
            response = service.submit("trophy champion", mode="content",
                                      policy=NO_CACHE)
            with lock:
                results.append(response)

        threads = [threading.Thread(target=query) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10.0)
        assert len(executions) == 1
        assert len(results) == 6
        rankings = {tuple((h.key, h.score) for h in r.hits)
                    for r in results}
        assert len(rankings) == 1  # everyone saw the leader's answer
        assert sum(1 for r in results if r.coalesced) == 5
        assert service.status()["counters"]["coalesced"] == 5
        assert service.drain(5.0)

    def test_coalescing_off_executes_each(self):
        engine = build_ir_engine(documents=30)
        executions = []
        real_execute = engine.execute

        def counting_execute(request):
            executions.append(request.query)
            return real_execute(request)

        engine.execute = counting_execute
        service = SearchService(engine, ServicePolicy(coalesce=False))
        for _ in range(3):
            service.submit("trophy champion", mode="content",
                           policy=NO_CACHE)
        assert len(executions) == 3
        assert service.drain(5.0)


class TestLoadShedding:
    def test_shed_requests_carry_retry_after_and_never_crash(self):
        engine = build_ir_engine(documents=30)
        release = threading.Event()
        real_execute = engine.execute

        def gated_execute(request):
            release.wait(5.0)
            return real_execute(request)

        engine.execute = gated_execute
        service = SearchService(engine, ServicePolicy(
            max_inflight=1, max_queue=0, coalesce=False))
        occupier = threading.Thread(
            target=lambda: service.submit("trophy", mode="content",
                                          policy=NO_CACHE))
        occupier.start()
        for _ in range(200):
            if service.status()["admission"]["active"] == 1:
                break
            time.sleep(0.005)
        with pytest.raises(ServiceOverloadedError) as excinfo:
            service.submit("champion", mode="content", policy=NO_CACHE)
        assert excinfo.value.retry_after > 0.0
        assert excinfo.value.reason == "queue"
        release.set()
        occupier.join(5.0)
        counters = service.status()["counters"]
        assert counters["shed"] == 1
        assert counters["admitted"] == 1
        assert service.drain(5.0)

    def test_rate_limited_service_sheds_with_reason_rate(self):
        engine = build_ir_engine(documents=30)
        service = SearchService(engine, ServicePolicy(rate=0.5, burst=1))
        service.submit("trophy", mode="content", policy=NO_CACHE)
        with pytest.raises(ServiceOverloadedError) as excinfo:
            service.submit("trophy", mode="content", policy=NO_CACHE)
        assert excinfo.value.reason == "rate"
        assert excinfo.value.retry_after > 0.0
        assert service.drain(5.0)


class TestDrain:
    def test_drain_finishes_inflight_then_rejects(self):
        engine = build_ir_engine(documents=30)
        release = threading.Event()
        real_execute = engine.execute

        def gated_execute(request):
            release.wait(5.0)
            return real_execute(request)

        engine.execute = gated_execute
        service = SearchService(engine)
        responses = []
        runner = threading.Thread(
            target=lambda: responses.append(
                service.submit("trophy", mode="content", policy=NO_CACHE)))
        runner.start()
        for _ in range(200):
            if service.status()["inflight"] == 1:
                break
            time.sleep(0.005)
        drainer = threading.Thread(target=lambda: service.drain(10.0))
        drainer.start()
        time.sleep(0.05)
        assert service.state == "draining"
        with pytest.raises(ServiceClosedError):
            service.submit("champion", mode="content", policy=NO_CACHE)
        release.set()
        runner.join(5.0)
        drainer.join(5.0)
        assert service.state == "closed"
        assert len(responses) == 1 and responses[0].hits
        assert service.status()["counters"]["rejected"] == 1

    def test_context_manager_drains_on_exit(self):
        engine = build_ir_engine(documents=20)
        with SearchService(engine) as service:
            service.submit("trophy", mode="content", policy=NO_CACHE)
        assert service.state == "closed"
        with pytest.raises(ServiceClosedError):
            service.submit("trophy", mode="content", policy=NO_CACHE)


class TestWriteKeyedCoalescing:
    def test_writes_split_singleflight_generations(self):
        # a follower keyed after a write must not join a pre-write flight:
        # the generation is part of the single-flight key
        engine = build_ir_engine(documents=30)
        service = SearchService(engine)
        before = service.submit("trophy champion", mode="content",
                                policy=NO_CACHE)
        service.reindex("doc:p0", "trophy trophy trophy champion trophy")
        after = service.submit("trophy champion", mode="content",
                               policy=NO_CACHE)
        assert [h.key for h in before.hits] != [h.key for h in after.hits] \
            or [h.score for h in before.hits] \
            != [h.score for h in after.hits]
        assert service.drain(5.0)


class TestRestoreUnderLoad(object):
    QUERY = ("SELECT p.name FROM Player p "
             "WHERE p.history CONTAINS 'Winner' TOP 5")

    def test_queries_run_to_completion_across_a_restore(
            self, search_engine, tmp_path):
        service = SearchService(search_engine, ServicePolicy(
            max_inflight=8, max_queue=64, queue_timeout_ms=10000.0))
        service.snapshot(tmp_path)
        errors = []
        responses = []
        lock = threading.Lock()

        def reader():
            for _ in range(10):
                try:
                    response = service.submit(self.QUERY)
                except Exception as exc:  # noqa: BLE001 - recorded
                    with lock:
                        errors.append(exc)
                else:
                    with lock:
                        responses.append(response)

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()
        service.restore(tmp_path)
        for thread in readers:
            thread.join(30.0)
        assert errors == []
        assert len(responses) == 4 * 10
        names = {tuple(hit.values) for response in responses
                 for hit in response.hits}
        assert len(names) >= 1  # identical rows before and after the swap
        # the service now fronts the restored engine, not the original
        assert service.engine is not search_engine
        assert service.drain(5.0)
