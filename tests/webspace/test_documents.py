"""Materialized views: XML authoring and parsing."""

import pytest

from repro.errors import SchemaError
from repro.webspace.documents import (WebspaceDocument, document_from_xml,
                                      document_to_xml)
from repro.webspace.objects import AssociationInstance, WebObject
from repro.webspace.schema import australian_open_schema
from repro.xmlstore.sax import parse_document
from repro.xmlstore.writer import serialize


@pytest.fixture
def schema():
    return australian_open_schema()


@pytest.fixture
def document():
    return WebspaceDocument(
        "http://x/seles.html",
        objects=[
            WebObject("Player", "monica-seles", {
                "name": "Monica Seles", "gender": "female",
                "plays": "left", "history": "Winner of the Open.",
                "picture": "http://x/img/seles.jpg"}),
            WebObject("Profile", "profile:monica-seles",
                      {"document": "http://x/seles.html"}),
        ],
        associations=[AssociationInstance(
            "Is_covered_in", "monica-seles", "profile:monica-seles")])


class TestAuthoring:
    def test_structure_mirrors_schema(self, schema, document):
        xml = document_to_xml(schema, document)
        assert xml.tag == "webspace"
        assert xml.attributes["schema"] == "australian-open"
        player = xml.find("Player")
        assert player.attributes["id"] == "monica-seles"
        assert player.find("name").text() == "Monica Seles"

    def test_multimedia_types_annotated(self, schema, document):
        xml = document_to_xml(schema, document)
        player = xml.find("Player")
        assert player.find("history").attributes["type"] == "Hypertext"
        assert player.find("picture").attributes["type"] == "Image"

    def test_by_reference_attributes_use_href(self, schema, document):
        xml = document_to_xml(schema, document)
        picture = xml.find("Player").find("picture")
        assert picture.attributes["href"] == "http://x/img/seles.jpg"
        assert picture.text() == ""

    def test_associations_rendered(self, schema, document):
        xml = document_to_xml(schema, document)
        assoc = xml.find("Is_covered_in")
        assert assoc.attributes == {"source": "monica-seles",
                                    "target": "profile:monica-seles"}

    def test_missing_attributes_omitted(self, schema, document):
        xml = document_to_xml(schema, document)
        assert xml.find("Player").find("country") is None


class TestRoundTrip:
    def test_to_xml_and_back(self, schema, document):
        xml = document_to_xml(schema, document)
        parsed = document_from_xml(schema, xml)
        assert parsed.doc_id == document.doc_id
        original = document.objects[0]
        restored = parsed.objects[0]
        assert restored.cls == original.cls
        assert restored.key == original.key
        assert restored.attributes == original.attributes
        assert parsed.associations == document.associations

    def test_round_trip_through_serialisation(self, schema, document):
        xml = document_to_xml(schema, document)
        reparsed = parse_document(serialize(xml))
        restored = document_from_xml(schema, reparsed)
        assert restored.objects[0].attributes \
            == document.objects[0].attributes


class TestValidation:
    def test_wrong_root_rejected(self, schema):
        from repro.xmlstore.model import element
        with pytest.raises(SchemaError):
            document_from_xml(schema, element("site"))

    def test_wrong_schema_name_rejected(self, schema):
        from repro.xmlstore.model import element
        bad = element("webspace", {"schema": "lonely-planet"})
        with pytest.raises(SchemaError):
            document_from_xml(schema, bad)

    def test_object_without_id_rejected(self, schema):
        from repro.xmlstore.model import element
        bad = element("webspace", {"schema": "australian-open"},
                      element("Player"))
        with pytest.raises(SchemaError):
            document_from_xml(schema, bad)

    def test_unknown_concept_rejected(self, schema):
        from repro.xmlstore.model import element
        bad = element("webspace", {"schema": "australian-open"},
                      element("Umpire", {"id": "u1"}))
        with pytest.raises(SchemaError):
            document_from_xml(schema, bad)
