"""Webspace schema and object graph."""

import pytest

from repro.errors import SchemaError
from repro.webspace.objects import (AssociationInstance, ObjectGraph,
                                    WebObject)
from repro.webspace.schema import WebspaceSchema, australian_open_schema


class TestSchema:
    def test_fig3_schema_builds(self):
        schema = australian_open_schema()
        assert set(schema.classes) == {"Player", "Article", "Profile",
                                       "Video"}
        assert schema.cls("Player").attribute("history").name == "Hypertext"
        assert schema.cls("Video").attribute("video").name == "Video"
        assert schema.association("About").source == "Article"
        assert schema.association("About").target == "Player"

    def test_multimedia_attributes(self):
        schema = australian_open_schema()
        multimedia = schema.cls("Player").multimedia_attributes()
        assert set(multimedia) == {"history", "picture", "interview"}
        assert not multimedia["history"].by_reference
        assert multimedia["picture"].by_reference
        assert multimedia["interview"].by_reference

    def test_duplicate_class_rejected(self):
        schema = WebspaceSchema("s")
        schema.add_class("A", {"x": "varchar"})
        with pytest.raises(SchemaError):
            schema.add_class("A", {"x": "varchar"})

    def test_unknown_attribute_type_rejected(self):
        schema = WebspaceSchema("s")
        with pytest.raises(SchemaError):
            schema.add_class("A", {"x": "blob"})

    def test_association_needs_known_classes(self):
        schema = WebspaceSchema("s")
        schema.add_class("A", {})
        with pytest.raises(SchemaError):
            schema.add_association("rel", "A", "B")

    def test_empty_schema_invalid(self):
        with pytest.raises(SchemaError):
            WebspaceSchema("s").validate()

    def test_unknown_lookups_raise(self):
        schema = australian_open_schema()
        with pytest.raises(SchemaError):
            schema.cls("Umpire")
        with pytest.raises(SchemaError):
            schema.association("Coaches")
        with pytest.raises(SchemaError):
            schema.cls("Player").attribute("ranking")


class TestObjectGraph:
    @pytest.fixture
    def graph(self):
        return ObjectGraph(australian_open_schema())

    def test_add_and_fetch(self, graph):
        graph.add_object(WebObject("Player", "p1", {"name": "A"}))
        assert graph.object("Player", "p1").get("name") == "A"
        assert graph.has_object("Player", "p1")
        assert not graph.has_object("Player", "p2")

    def test_merging_partial_views(self, graph):
        graph.add_object(WebObject("Player", "p1", {"name": "A"}))
        graph.add_object(WebObject("Player", "p1", {"country": "NL"}))
        merged = graph.object("Player", "p1")
        assert merged.get("name") == "A"
        assert merged.get("country") == "NL"

    def test_merge_does_not_overwrite(self, graph):
        graph.add_object(WebObject("Player", "p1", {"name": "A"}))
        graph.add_object(WebObject("Player", "p1", {"name": "B"}))
        assert graph.object("Player", "p1").get("name") == "A"

    def test_unknown_class_rejected(self, graph):
        with pytest.raises(SchemaError):
            graph.add_object(WebObject("Umpire", "u1"))

    def test_unknown_attribute_rejected(self, graph):
        with pytest.raises(SchemaError):
            graph.add_object(WebObject("Player", "p1", {"ranking": 3}))

    def test_associations_deduplicated(self, graph):
        graph.add_object(WebObject("Article", "a1"))
        graph.add_object(WebObject("Player", "p1"))
        instance = AssociationInstance("About", "a1", "p1")
        graph.add_association(instance)
        graph.add_association(instance)
        assert graph.association_count() == 1
        assert graph.related("About", "a1") == ["p1"]

    def test_objects_of_sorted_by_key(self, graph):
        graph.add_object(WebObject("Player", "zz"))
        graph.add_object(WebObject("Player", "aa"))
        assert [o.key for o in graph.objects_of("Player")] == ["aa", "zz"]

    def test_missing_object_raises(self, graph):
        with pytest.raises(SchemaError):
            graph.object("Player", "ghost")
