"""The textual conceptual query language."""

import pytest

from repro.errors import QueryError
from repro.webspace.language import parse_query
from repro.webspace.schema import australian_open_schema


@pytest.fixture
def schema():
    return australian_open_schema()


class TestParsing:
    def test_headline_query(self, schema):
        query = parse_query(schema, """
            SELECT p.name, v.title
            FROM Player p, Video v
            WHERE p.gender = 'female'
              AND p.plays = 'left'
              AND p.history CONTAINS 'Winner'
              AND v Features p
              AND v.video EVENT netplay
            TOP 10
        """)
        assert [b.cls for b in query.bindings] == ["Player", "Video"]
        assert len(query.attribute_predicates) == 2
        assert query.content_predicates[0].text == "Winner"
        assert query.event_predicates[0].event == "netplay"
        assert query.joins[0].association == "Features"
        assert query.limit == 10
        assert query.projections == [("p", "name"), ("v", "title")]

    def test_minimal_query(self, schema):
        query = parse_query(schema, "SELECT p.name FROM Player p")
        assert query.limit == 10  # default
        assert not query.attribute_predicates

    def test_keywords_case_insensitive(self, schema):
        query = parse_query(schema,
                            "select p.name from Player p where "
                            "p.plays = 'left' top 5")
        assert query.limit == 5

    def test_double_quoted_strings(self, schema):
        query = parse_query(schema, 'SELECT p.name FROM Player p WHERE '
                                    'p.name = "Monica Seles"')
        assert query.attribute_predicates[0].value == "Monica Seles"

    def test_comparison_operators_translate(self, schema):
        query = parse_query(schema, "SELECT p.name FROM Player p WHERE "
                                    "p.name != 'X' AND p.country >= 'A'")
        ops = [pred.op for pred in query.attribute_predicates]
        assert ops == ["!=", ">="]

    def test_join_condition(self, schema):
        query = parse_query(schema, """
            SELECT a.title FROM Article a, Player p
            WHERE a About p AND p.name = 'Monica Seles'
        """)
        assert query.joins[0].source_alias == "a"
        assert query.joins[0].target_alias == "p"


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "",
        "SELECT",
        "SELECT p.name",                              # no FROM
        "SELECT p.name FROM Umpire u",                # unknown class
        "SELECT p.name FROM Player p WHERE p.name",   # dangling predicate
        "SELECT p.name FROM Player p WHERE p.name LIKE 'x'",
        "SELECT p.name FROM Player p TOP",            # missing number
        "SELECT p.name FROM Player p extra",          # trailing tokens
        "SELECT p.name FROM Player p WHERE p.history CONTAINS Winner",
        "SELECT p.name FROM Player p WHERE p.name = 'unterminated",
    ])
    def test_rejects_malformed(self, schema, bad):
        with pytest.raises((QueryError, ValueError)):
            parse_query(schema, bad)

    def test_disconnected_query_rejected(self, schema):
        with pytest.raises(QueryError):
            parse_query(schema,
                        "SELECT p.name FROM Player p, Article a")


class TestExecutionEquivalence:
    def test_text_and_builder_agree(self):
        from repro.core import EngineConfig, SearchEngine
        from repro.web import build_ausopen_site

        server, truth = build_ausopen_site(players=8, articles=4,
                                           videos=3, frames_per_shot=6)
        engine = SearchEngine(australian_open_schema(), server,
                              EngineConfig())
        engine.populate()

        text_result = engine.query_text(
            "SELECT p.name FROM Player p WHERE p.plays = 'left' TOP 50")
        builder_result = engine.query(
            engine.new_query().from_class("p", "Player")
            .where("p.plays", "==", "left").select("p.name").top(50))
        assert text_result.column("p.name") \
            == builder_result.column("p.name")
