"""Conceptual query construction and validation."""

import pytest

from repro.errors import QueryError
from repro.webspace.query import WebspaceQuery
from repro.webspace.schema import australian_open_schema


@pytest.fixture
def schema():
    return australian_open_schema()


class TestBuilder:
    def test_headline_query_builds(self, schema):
        query = (WebspaceQuery(schema)
                 .from_class("p", "Player")
                 .where("p.gender", "==", "female")
                 .where("p.plays", "==", "left")
                 .contains("p.history", "Winner")
                 .from_class("v", "Video")
                 .join("Features", "v", "p")
                 .video_event("v.video", "netplay")
                 .select("p.name", "v.title"))
        query.validate()
        assert len(query.bindings) == 2
        assert len(query.attribute_predicates) == 2
        assert len(query.content_predicates) == 1
        assert len(query.event_predicates) == 1

    def test_alias_bound_twice_rejected(self, schema):
        query = WebspaceQuery(schema).from_class("p", "Player")
        with pytest.raises(QueryError):
            query.from_class("p", "Article")

    def test_unknown_class_rejected(self, schema):
        with pytest.raises(QueryError):
            WebspaceQuery(schema).from_class("u", "Umpire")

    def test_unknown_attribute_rejected(self, schema):
        query = WebspaceQuery(schema).from_class("p", "Player")
        with pytest.raises(QueryError):
            query.where("p.ranking", "==", 1)

    def test_unbound_alias_rejected(self, schema):
        query = WebspaceQuery(schema).from_class("p", "Player")
        with pytest.raises(QueryError):
            query.where("x.name", "==", "A")

    def test_bad_operator_rejected(self, schema):
        query = WebspaceQuery(schema).from_class("p", "Player")
        with pytest.raises(QueryError):
            query.where("p.name", "~=", "A")

    def test_path_without_dot_rejected(self, schema):
        query = WebspaceQuery(schema).from_class("p", "Player")
        with pytest.raises(QueryError):
            query.where("name", "==", "A")

    def test_contains_requires_hypertext(self, schema):
        query = WebspaceQuery(schema).from_class("p", "Player")
        with pytest.raises(QueryError):
            query.contains("p.name", "text")  # varchar, not Hypertext
        with pytest.raises(QueryError):
            query.contains("p.picture", "text")  # Image is by-reference

    def test_video_event_requires_video(self, schema):
        query = WebspaceQuery(schema).from_class("p", "Player")
        with pytest.raises(QueryError):
            query.video_event("p.picture", "netplay")

    def test_join_direction_checked(self, schema):
        query = (WebspaceQuery(schema)
                 .from_class("p", "Player")
                 .from_class("a", "Article"))
        with pytest.raises(QueryError):
            query.join("About", "p", "a")  # About goes Article -> Player
        query.join("About", "a", "p")

    def test_top_validated(self, schema):
        query = WebspaceQuery(schema).from_class("p", "Player")
        with pytest.raises(QueryError):
            query.top(0)
        assert query.top(5).limit == 5


class TestValidation:
    def test_no_bindings_invalid(self, schema):
        with pytest.raises(QueryError):
            WebspaceQuery(schema).validate()

    def test_no_projection_invalid(self, schema):
        query = WebspaceQuery(schema).from_class("p", "Player")
        with pytest.raises(QueryError):
            query.validate()

    def test_disconnected_bindings_invalid(self, schema):
        query = (WebspaceQuery(schema)
                 .from_class("p", "Player")
                 .from_class("a", "Article")
                 .select("p.name", "a.title"))
        with pytest.raises(QueryError):
            query.validate()

    def test_connected_bindings_valid(self, schema):
        query = (WebspaceQuery(schema)
                 .from_class("p", "Player")
                 .from_class("a", "Article")
                 .join("About", "a", "p")
                 .select("p.name"))
        query.validate()
