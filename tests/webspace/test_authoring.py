"""The webspace authoring tool."""

import pytest

from repro.errors import SchemaError
from repro.webspace.authoring import (WebspaceAuthor, author_documents,
                                      validate_coverage)
from repro.webspace.objects import AssociationInstance, ObjectGraph, WebObject
from repro.webspace.schema import australian_open_schema


@pytest.fixture
def schema():
    return australian_open_schema()


@pytest.fixture
def graph(schema):
    graph = ObjectGraph(schema)
    graph.add_object(WebObject("Player", "seles", {
        "name": "Monica Seles", "gender": "female"}))
    graph.add_object(WebObject("Player", "novak", {
        "name": "Talia Novak", "gender": "female"}))
    graph.add_object(WebObject("Article", "a1", {"title": "Day 1"}))
    graph.add_object(WebObject("Video", "v1", {"title": "Highlights"}))
    graph.add_association(AssociationInstance("About", "a1", "seles"))
    graph.add_association(AssociationInstance("Features", "v1", "seles"))
    graph.add_association(AssociationInstance("Features", "v1", "novak"))
    return graph


class TestGuidedAuthoring:
    def test_full_flow(self, schema):
        author = WebspaceAuthor(schema)
        author.open_document("http://x/seles.html") \
            .put("Player", "seles", name="Monica Seles",
                 gender="female") \
            .put("Profile", "profile:seles", document="http://x/s.html") \
            .relate("Is_covered_in", "seles", "profile:seles") \
            .close_document()
        author.open_document("http://x/a1.html") \
            .put("Article", "a1", title="Day 1") \
            .put("Player", "seles") \
            .relate("About", "a1", "seles") \
            .close_document()
        merged = author.graph()
        assert merged.object("Player", "seles").get("name") \
            == "Monica Seles"
        assert merged.related("About", "a1") == ["seles"]

    def test_put_requires_open_document(self, schema):
        with pytest.raises(SchemaError):
            WebspaceAuthor(schema).put("Player", "x")

    def test_unknown_attribute_rejected(self, schema):
        author = WebspaceAuthor(schema).open_document("d")
        with pytest.raises(SchemaError):
            author.put("Player", "x", ranking=1)

    def test_nested_open_rejected(self, schema):
        author = WebspaceAuthor(schema).open_document("d")
        with pytest.raises(SchemaError):
            author.open_document("d2")

    def test_empty_document_rejected(self, schema):
        author = WebspaceAuthor(schema).open_document("d")
        with pytest.raises(SchemaError):
            author.close_document()

    def test_duplicate_document_id_rejected(self, schema):
        author = WebspaceAuthor(schema)
        author.open_document("d").put("Player", "x").close_document()
        with pytest.raises(SchemaError):
            author.open_document("d")


class TestBatchAuthoring:
    @pytest.mark.parametrize("strategy", ["per-object", "per-class"])
    def test_strategies_cover_the_graph(self, graph, strategy):
        documents = author_documents(graph, strategy)
        report = validate_coverage(graph, documents)
        assert report.complete, (report.missing_objects,
                                 report.missing_attributes,
                                 report.missing_associations)

    def test_per_object_documents_overlap(self, graph):
        """The paper's point: views share objects."""
        documents = author_documents(graph, "per-object")
        seen: dict[str, int] = {}
        for document in documents:
            for obj in document.objects:
                seen[obj.key] = seen.get(obj.key, 0) + 1
        assert seen["seles"] >= 3  # own page + article stub + video stub

    def test_per_class_is_a_partition(self, graph):
        documents = author_documents(graph, "per-class")
        # every object materialised exactly once
        keys = [obj.key for document in documents
                for obj in document.objects]
        assert len(keys) == len(set(keys))

    def test_unknown_strategy_rejected(self, graph):
        with pytest.raises(SchemaError):
            author_documents(graph, "per-page")

    def test_round_trip_through_the_store(self, schema, graph):
        """Authored views shred, store and retrieve identically."""
        from repro.webspace.documents import document_to_xml
        from repro.webspace.retriever import retrieve_from_xml
        from repro.xmlstore.store import XmlStore

        documents = author_documents(graph, "per-object")
        store = XmlStore()
        for document in documents:
            store.insert(document.doc_id, document_to_xml(schema, document))
        roots = [store.reconstruct(key) for key in store.document_keys()]
        merged = retrieve_from_xml(schema, roots)
        assert merged.object("Player", "seles").get("name") \
            == "Monica Seles"
        assert merged.related("Features", "v1") == ["novak", "seles"]


class TestCoverageValidation:
    def test_detects_missing_object(self, graph):
        documents = author_documents(graph, "per-object")
        documents = [d for d in documents
                     if d.doc_id != "doc:Video:v1"]
        report = validate_coverage(graph, documents)
        assert ("Video", "v1") in report.missing_objects
        assert not report.complete

    def test_detects_missing_attribute(self, schema, graph):
        from repro.webspace.documents import WebspaceDocument
        thin = [WebspaceDocument("only-keys")]
        thin[0].objects = [WebObject("Player", "seles")]
        report = validate_coverage(graph, thin)
        assert ("Player", "seles", "name") in report.missing_attributes

    def test_detects_missing_association(self, graph):
        documents = author_documents(graph, "per-class")
        documents = [d for d in documents if d.doc_id != "doc:associations"]
        report = validate_coverage(graph, documents)
        assert AssociationInstance("About", "a1", "seles") \
            in report.missing_associations
