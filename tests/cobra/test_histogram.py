"""Colour statistics."""

import numpy as np
import pytest

from repro.cobra.histogram import (color_histogram, dominant_color, entropy,
                                   histogram_difference, mean_intensity,
                                   quantize_color, skin_fraction, skin_mask,
                                   variance_intensity)
from repro.cobra.video import SKIN_COLOR


def _flat(color, shape=(20, 30, 3)):
    return np.full(shape, color, dtype=np.uint8)


class TestHistogram:
    def test_normalised(self):
        histogram = color_histogram(_flat((10, 20, 30)))
        assert histogram.sum() == pytest.approx(1.0)
        assert histogram.shape == (24,)

    def test_identical_frames_zero_difference(self):
        frame = _flat((10, 20, 30))
        assert histogram_difference(color_histogram(frame),
                                    color_histogram(frame)) == 0.0

    def test_different_frames_large_difference(self):
        left = color_histogram(_flat((10, 10, 10)))
        right = color_histogram(_flat((250, 250, 250)))
        assert histogram_difference(left, right) == pytest.approx(2.0)

    def test_noise_gives_small_difference(self):
        rng = np.random.default_rng(0)
        base = np.full((20, 30, 3), 100, dtype=np.int16)
        one = (base + rng.integers(-8, 9, base.shape)).astype(np.uint8)
        two = (base + rng.integers(-8, 9, base.shape)).astype(np.uint8)
        assert histogram_difference(color_histogram(one),
                                    color_histogram(two)) < 0.2


class TestDominantColor:
    def test_flat_frame(self):
        assert dominant_color(_flat((40, 110, 60))) \
            == quantize_color(np.array([40, 110, 60]))

    def test_majority_wins(self):
        frame = _flat((40, 110, 60))
        frame[:5, :, :] = (250, 250, 250)
        assert dominant_color(frame) == quantize_color(
            np.array([40, 110, 60]))


class TestScalarFeatures:
    def test_entropy_of_flat_frame_is_zero(self):
        assert entropy(_flat((100, 100, 100))) == 0.0

    def test_entropy_of_noise_is_high(self):
        rng = np.random.default_rng(0)
        noise = rng.integers(0, 256, (40, 60, 3)).astype(np.uint8)
        assert entropy(noise) > 6.0

    def test_mean_and_variance(self):
        assert mean_intensity(_flat((100, 100, 100))) == 100.0
        assert variance_intensity(_flat((100, 100, 100))) == 0.0


class TestSkin:
    def test_skin_color_detected(self):
        assert skin_fraction(_flat(SKIN_COLOR)) == 1.0

    def test_court_green_is_not_skin(self):
        assert skin_fraction(_flat((40, 110, 60))) == 0.0

    def test_mask_is_boolean(self):
        mask = skin_mask(_flat(SKIN_COLOR))
        assert mask.dtype == bool and mask.all()

    def test_partial_skin(self):
        frame = _flat((40, 110, 60))
        frame[:10, :, :] = SKIN_COLOR
        assert skin_fraction(frame) == pytest.approx(0.5)
