"""Synthetic video generator: determinism and ground truth."""

import numpy as np
import pytest

from repro.errors import VideoError
from repro.cobra.video import (COURT_COLORS, ShotSpec, generate_video,
                               tennis_match_script)


class TestGeneration:
    def test_frame_array_shape(self):
        video = generate_video([ShotSpec("tennis", 5)], "http://x/v.mpg",
                               width=32, height=18)
        assert video.frames.shape == (5, 18, 32, 3)
        assert video.frames.dtype == np.uint8

    def test_deterministic_for_same_seed(self):
        script = [ShotSpec("tennis", 4), ShotSpec("audience", 3)]
        first = generate_video(script, "http://x/v.mpg", seed=9)
        second = generate_video(script, "http://x/v.mpg", seed=9)
        assert np.array_equal(first.frames, second.frames)

    def test_different_seeds_differ(self):
        script = [ShotSpec("audience", 3)]
        first = generate_video(script, "http://x/v.mpg", seed=1)
        second = generate_video(script, "http://x/v.mpg", seed=2)
        assert not np.array_equal(first.frames, second.frames)

    def test_ground_truth_boundaries(self):
        script = [ShotSpec("tennis", 5), ShotSpec("closeup", 3),
                  ShotSpec("other", 2)]
        video = generate_video(script, "http://x/v.mpg")
        assert video.truth.boundaries == [0, 5, 8]
        assert video.truth.categories == ["tennis", "closeup", "other"]
        assert video.truth.shot_ranges(video.frame_count) \
            == [(0, 4), (5, 7), (8, 9)]

    def test_netplay_ground_truth(self):
        approach = [(320.0, 330.0), (320.0, 160.0)]
        stay = [(320.0, 330.0), (320.0, 320.0)]
        video = generate_video(
            [ShotSpec("tennis", 2, approach), ShotSpec("tennis", 2, stay)],
            "http://x/v.mpg")
        assert video.truth.netplay_shots == [0]

    def test_unknown_court_rejected(self):
        with pytest.raises(VideoError):
            generate_video([ShotSpec("tennis", 2)], "http://x/v.mpg",
                           court="moon_dust")

    def test_empty_script_rejected(self):
        with pytest.raises(VideoError):
            generate_video([], "http://x/v.mpg")

    def test_zero_length_shot_rejected(self):
        with pytest.raises(VideoError):
            generate_video([ShotSpec("tennis", 0)], "http://x/v.mpg")

    def test_unknown_category_rejected(self):
        with pytest.raises(VideoError):
            generate_video([ShotSpec("drone", 2)], "http://x/v.mpg")

    def test_court_color_dominates_tennis_frames(self):
        for court, color in COURT_COLORS.items():
            video = generate_video([ShotSpec("tennis", 2)], "http://x/v",
                                   court=court)
            frame = video.frames[0].reshape(-1, 3).astype(int)
            close = (np.abs(frame - np.array(color)).sum(axis=1) < 40)
            assert close.mean() > 0.5


class TestMatchScript:
    def test_script_structure(self):
        script = tennis_match_script(rng_seed=0, rallies=3,
                                     netplay_rallies=(1,))
        categories = [spec.category for spec in script]
        assert categories.count("tennis") == 3
        assert categories[-1] == "other"

    def test_netplay_rally_reaches_net(self):
        script = tennis_match_script(rng_seed=0, rallies=2,
                                     netplay_rallies=(0,))
        netplay_shot = [s for s in script if s.category == "tennis"][0]
        assert min(y for _, y in netplay_shot.trajectory) <= 170.0

    def test_baseline_rally_stays_back(self):
        script = tennis_match_script(rng_seed=0, rallies=2,
                                     netplay_rallies=())
        for spec in script:
            if spec.category == "tennis":
                assert min(y for _, y in spec.trajectory) > 170.0

    def test_strokes_assigned_round_robin(self):
        script = tennis_match_script(rng_seed=0, rallies=4,
                                     strokes=("serve", "forehand"))
        strokes = [s.stroke for s in script if s.category == "tennis"]
        assert strokes == ["serve", "forehand", "serve", "forehand"]
