"""The operational tennis grammar: grammar path vs direct analysis."""

import pytest

from repro.errors import VideoError
from repro.featuregrammar.fde import FDE
from repro.featuregrammar.rpc import RpcServer
from repro.cobra.grammar import (analyze_video, build_tennis_grammar,
                                 build_tennis_registry)
from repro.cobra.library import VideoLibrary
from repro.cobra.video import generate_video, tennis_match_script


@pytest.fixture(scope="module")
def setup():
    script = tennis_match_script(rng_seed=2, rallies=3,
                                 netplay_rallies=(1,), frames_per_shot=8)
    video = generate_video(script, "http://x/m.mpg", seed=2)
    library = VideoLibrary()
    library.add(video)
    library.add_non_video("http://x/p.jpg", ("image", "jpeg"))
    server = RpcServer("video")
    grammar = build_tennis_grammar()
    registry = build_tennis_registry(library, server)
    return video, library, grammar, registry, server


class TestGrammarDriven:
    def test_video_parses_with_zero_leftover(self, setup):
        video, _, grammar, registry, _ = setup
        outcome = FDE(grammar, registry).parse(video.location)
        assert outcome.leftover_tokens == 0

    def test_shot_structure_matches_truth(self, setup):
        video, _, grammar, registry, _ = setup
        outcome = FDE(grammar, registry).parse(video.location)
        shots = outcome.tree.find_all("shot")
        begins = [s.child("begin").leaf_value() for s in shots]
        assert begins == video.truth.boundaries
        types = [s.child("type").children[0].name for s in shots]
        assert types == video.truth.categories

    def test_netplay_matches_truth(self, setup):
        video, _, grammar, registry, _ = setup
        outcome = FDE(grammar, registry).parse(video.location)
        shots = outcome.tree.find_all("shot")
        truth_ranges = video.truth.shot_ranges(video.frame_count)
        netplay_shots = [
            truth_ranges.index((s.child("begin").leaf_value(),
                                s.child("end").leaf_value()))
            for s in shots if any(n.value for n in s.find_all("netplay"))]
        assert netplay_shots == video.truth.netplay_shots

    def test_external_detectors_really_cross_the_transport(self, setup):
        video, _, grammar, registry, server = setup
        calls_before = server.calls
        FDE(grammar, registry).parse(video.location)
        assert server.calls > calls_before

    def test_non_video_takes_mime_branch(self, setup):
        _, _, grammar, registry, _ = setup
        outcome = FDE(grammar, registry).parse("http://x/p.jpg")
        assert outcome.tree.child("mm_type") is None


class TestCrossCheck:
    def test_grammar_agrees_with_direct_analysis(self, setup):
        """The grammar-driven extraction and analyze_video must agree on
        shots, categories and netplay events."""
        video, _, grammar, registry, _ = setup
        description = analyze_video(video)
        outcome = FDE(grammar, registry).parse(video.location)
        grammar_shots = [
            (s.child("begin").leaf_value(), s.child("end").leaf_value(),
             s.child("type").children[0].name)
            for s in outcome.tree.find_all("shot")]
        direct_shots = [(s.begin, s.end, s.category)
                        for s in description.shots]
        assert grammar_shots == direct_shots

    def test_direct_analysis_netplay_events(self, setup):
        video, _, _, _, _ = setup
        description = analyze_video(video)
        truth_ranges = video.truth.shot_ranges(video.frame_count)
        expected = {truth_ranges[i] for i in video.truth.netplay_shots}
        found = set()
        for event in description.events_named("netplay"):
            for begin, end in truth_ranges:
                if begin <= event.begin <= end:
                    found.add((begin, end))
        assert found == expected

    def test_objects_populated_for_tennis_shots_only(self, setup):
        video, _, _, _, _ = setup
        description = analyze_video(video)
        tennis_frames = sum(
            shot.end - shot.begin + 1
            for shot in description.shots_of_category("tennis"))
        assert len(description.objects) == tennis_frames


class TestLibrary:
    def test_missing_video_raises(self):
        with pytest.raises(VideoError):
            VideoLibrary().get("http://x/none.mpg")

    def test_mime_lookup(self, setup):
        _, library, _, _, _ = setup
        assert library.mime("http://x/m.mpg") == ("video", "mpeg")
        assert library.mime("http://x/p.jpg") == ("image", "jpeg")

    def test_locations_sorted(self, setup):
        _, library, _, _, _ = setup
        assert library.locations() == ["http://x/m.mpg", "http://x/p.jpg"]
