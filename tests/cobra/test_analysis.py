"""Segmentation, classification, tracking, features, events (E11 shape)."""

import math

import numpy as np
import pytest

from repro.errors import VideoError
from repro.cobra.classification import classify_shots, estimate_court_color
from repro.cobra.events import detect_events, detect_netplay, detect_rally
from repro.cobra.features import shape_features
from repro.cobra.segmentation import Shot, detect_boundaries, segment_video
from repro.cobra.tracking import player_mask, track_player
from repro.cobra.video import (COURT_COLORS, ShotSpec, generate_video,
                               tennis_match_script)


@pytest.fixture(scope="module")
def match():
    script = tennis_match_script(rng_seed=3, rallies=4,
                                 netplay_rallies=(1, 3),
                                 frames_per_shot=10)
    return generate_video(script, "http://x/match.mpg", seed=3)


class TestSegmentation:
    def test_boundaries_exact(self, match):
        assert detect_boundaries(match.frames) == match.truth.boundaries

    def test_shots_cover_video(self, match):
        shots = segment_video(match.frames)
        assert shots[0].begin == 0
        assert shots[-1].end == match.frame_count - 1
        for left, right in zip(shots, shots[1:]):
            assert right.begin == left.end + 1

    def test_single_shot_video(self):
        video = generate_video([ShotSpec("tennis", 6)], "http://x/v")
        assert segment_video(video.frames) == [Shot(0, 5)]

    def test_empty_input_rejected(self):
        with pytest.raises(VideoError):
            detect_boundaries(np.zeros((0, 4, 4, 3), dtype=np.uint8))


class TestClassification:
    def test_categories_exact(self, match):
        shots = segment_video(match.frames)
        classified = classify_shots(match.frames, shots)
        assert [shot.category for shot in classified] \
            == match.truth.categories

    def test_court_color_estimated_from_mode(self, match):
        shots = segment_video(match.frames)
        estimated = estimate_court_color(match.frames, shots)
        true_color = np.array(match.truth.court_color)
        assert np.abs(np.array(estimated) - true_color).max() <= 32

    @pytest.mark.parametrize("court", sorted(COURT_COLORS))
    def test_all_court_surfaces_without_retuning(self, court):
        """The paper's adaptivity claim: same parameters, any surface."""
        script = tennis_match_script(rng_seed=5, rallies=3,
                                     netplay_rallies=(0,),
                                     frames_per_shot=8)
        video = generate_video(script, f"http://x/{court}.mpg",
                               court=court, seed=5)
        shots = segment_video(video.frames)
        classified = classify_shots(video.frames, shots)
        assert [s.begin for s in classified] == video.truth.boundaries
        assert [s.category for s in classified] == video.truth.categories


class TestTracking:
    def test_player_found_every_frame(self, match):
        shots = segment_video(match.frames)
        court = estimate_court_color(match.frames, shots)
        classified = classify_shots(match.frames, shots, court)
        tennis = [s for s in classified if s.category == "tennis"][0]
        tracked = track_player(match.frames, tennis.begin, tennis.end,
                               court)
        assert len(tracked) == tennis.end - tennis.begin + 1

    def test_tracked_positions_near_truth(self, match):
        shots = segment_video(match.frames)
        court = estimate_court_color(match.frames, shots)
        classified = classify_shots(match.frames, shots, court)
        tennis_shots = [s for s in classified if s.category == "tennis"]
        truth_ranges = match.truth.shot_ranges(match.frame_count)
        for shot in tennis_shots:
            shot_index = truth_ranges.index((shot.begin, shot.end))
            trajectory = match.truth.trajectories[shot_index]
            tracked = track_player(match.frames, shot.begin, shot.end,
                                   court)
            for record in tracked:
                true_x, true_y = trajectory[record.frame_no - shot.begin]
                assert abs(record.y - true_y) < 45.0
                assert abs(record.x - true_x) < 45.0

    def test_mask_excludes_court_and_lines(self, match):
        court = match.truth.court_color
        mask = player_mask(match.frames[0], court)
        # foreground is a small blob, not the court
        assert 0 < mask.sum() < mask.size * 0.2


class TestShapeFeatures:
    def test_rectangle_features(self):
        mask = np.zeros((30, 30), dtype=bool)
        mask[5:20, 10:15] = True          # tall 15x5 rectangle
        features = shape_features(mask, (12, 12), 15, 15)
        assert features.area == 15 * 5
        assert features.bounding_box == (5, 10, 19, 14)
        assert abs(features.center_row - 12.0) < 0.6
        assert abs(features.center_col - 12.0) < 0.6
        # vertical elongation: orientation near +-pi/2, eccentric
        assert abs(abs(features.orientation) - math.pi / 2) < 0.1
        assert features.eccentricity > 0.8

    def test_circle_is_round(self):
        rows, cols = np.ogrid[:40, :40]
        mask = (rows - 20) ** 2 + (cols - 20) ** 2 <= 100
        features = shape_features(mask, (20, 20), 20, 20)
        assert features.eccentricity < 0.2

    def test_empty_window(self):
        mask = np.zeros((10, 10), dtype=bool)
        features = shape_features(mask, (5, 5), 3, 3)
        assert features.area == 0


class TestEvents:
    def _tracked(self, ys, begin=0):
        from repro.cobra.tracking import TrackedFrame
        from repro.cobra.features import ShapeFeatures
        dummy = ShapeFeatures(10, 0.0, 0.0, (0, 0, 1, 1), 0.0, 0.5)
        return [TrackedFrame(begin + i, 320.0, y, dummy)
                for i, y in enumerate(ys)]

    def test_netplay_detected(self):
        event = detect_netplay(self._tracked([300.0, 200.0, 150.0, 140.0]))
        assert event is not None
        assert (event.begin, event.end) == (2, 3)
        assert event.attributes["min_y"] == 140.0

    def test_netplay_absent(self):
        assert detect_netplay(self._tracked([300.0, 280.0])) is None

    def test_baseline_rally(self):
        event = detect_rally(self._tracked([320.0, 330.0, 325.0]))
        assert event is not None and event.name == "baseline_rally"

    def test_rally_broken_by_approach(self):
        assert detect_rally(self._tracked([320.0, 160.0])) is None

    def test_detect_events_combines(self):
        events = detect_events(self._tracked([330.0, 325.0]))
        assert [event.name for event in events] == ["baseline_rally"]

    def test_empty_track(self):
        assert detect_events([]) == []
