"""HMM machinery and stroke recognition (E14)."""

import math

import numpy as np
import pytest

from repro.errors import VideoError
from repro.cobra.hmm import (N_SYMBOLS, STROKE_CLASSES, DiscreteHMM,
                             StrokeRecognizer, observations_from_track,
                             synthetic_stroke_sequences)


class TestDiscreteHMM:
    def test_distributions_normalised(self):
        hmm = DiscreteHMM(3, 5, seed=1)
        assert hmm.initial.sum() == pytest.approx(1.0)
        assert np.allclose(hmm.transition.sum(axis=1), 1.0)
        assert np.allclose(hmm.emission.sum(axis=1), 1.0)

    def test_likelihood_is_log_probability(self):
        hmm = DiscreteHMM(2, 3, seed=1)
        assert hmm.log_likelihood([0, 1, 2]) < 0.0

    def test_likelihood_sums_to_one_over_sequences(self):
        # sum over all length-2 observation sequences must be 1
        hmm = DiscreteHMM(2, 2, seed=3)
        total = sum(math.exp(hmm.log_likelihood([a, b]))
                    for a in range(2) for b in range(2))
        assert total == pytest.approx(1.0)

    def test_viterbi_length_matches(self):
        hmm = DiscreteHMM(3, 4, seed=2)
        states = hmm.viterbi([0, 1, 2, 3, 0])
        assert len(states) == 5
        assert all(0 <= s < 3 for s in states)

    def test_viterbi_follows_deterministic_emissions(self):
        hmm = DiscreteHMM(2, 2, seed=0)
        hmm.initial = np.array([0.5, 0.5])
        hmm.transition = np.array([[0.5, 0.5], [0.5, 0.5]])
        hmm.emission = np.array([[0.99, 0.01], [0.01, 0.99]])
        assert hmm.viterbi([0, 1, 0, 1]) == [0, 1, 0, 1]

    def test_baum_welch_increases_likelihood(self):
        rng = np.random.default_rng(4)
        sequences = [list(rng.integers(0, 4, size=10)) for _ in range(8)]
        hmm = DiscreteHMM(3, 4, seed=4)
        before = sum(hmm.log_likelihood(s) for s in sequences)
        hmm.baum_welch(sequences, iterations=10)
        after = sum(hmm.log_likelihood(s) for s in sequences)
        assert after >= before

    def test_empty_sequence_rejected(self):
        with pytest.raises(VideoError):
            DiscreteHMM(2, 2).log_likelihood([])

    def test_out_of_range_symbol_rejected(self):
        with pytest.raises(VideoError):
            DiscreteHMM(2, 2).log_likelihood([5])

    def test_degenerate_sizes_rejected(self):
        with pytest.raises(VideoError):
            DiscreteHMM(0, 2)


class TestObservations:
    def test_alphabet_bounds(self):
        sequences = synthetic_stroke_sequences("serve", 5, seed=1)
        for sequence in sequences:
            assert all(0 <= symbol < N_SYMBOLS for symbol in sequence)

    def test_deterministic(self):
        assert synthetic_stroke_sequences("volley", 3, seed=7) \
            == synthetic_stroke_sequences("volley", 3, seed=7)

    def test_unknown_stroke_rejected(self):
        with pytest.raises(VideoError):
            synthetic_stroke_sequences("smash", 3)

    def test_track_discretisation(self):
        from repro.cobra.features import ShapeFeatures
        from repro.cobra.tracking import TrackedFrame
        dummy = ShapeFeatures(10, 0.0, 0.0, (0, 0, 1, 1), 0.0, 0.5)
        track = [TrackedFrame(0, 300.0, 320.0, dummy),
                 TrackedFrame(1, 330.0, 150.0, dummy),   # moved right, at net
                 TrackedFrame(2, 300.0, 250.0, dummy)]   # moved left, mid
        symbols = observations_from_track(track)
        assert symbols == [2 * 3 + 1, 0 * 3 + 2, 1 * 3 + 0]

    def test_empty_track(self):
        assert observations_from_track([]) == []


class TestStrokeRecognizer:
    @pytest.fixture(scope="class")
    def recognizer(self):
        recognizer = StrokeRecognizer(n_states=4)
        training = {stroke: synthetic_stroke_sequences(stroke, 25, seed=11)
                    for stroke in STROKE_CLASSES}
        recognizer.train(training, iterations=10)
        return recognizer

    def test_accuracy_well_above_chance(self, recognizer):
        test_set = [(stroke, sequence)
                    for stroke in STROKE_CLASSES
                    for sequence in synthetic_stroke_sequences(
                        stroke, 12, seed=99)]
        accuracy = recognizer.accuracy(test_set)
        assert accuracy > 0.8  # chance is 0.25

    def test_classify_returns_known_class(self, recognizer):
        sequence = synthetic_stroke_sequences("serve", 1, seed=5)[0]
        assert recognizer.classify(sequence) in STROKE_CLASSES

    def test_untrained_recognizer_rejected(self):
        with pytest.raises(VideoError):
            StrokeRecognizer().classify([0, 1])

    def test_accuracy_of_empty_set(self, recognizer):
        assert recognizer.accuracy([]) == 1.0
