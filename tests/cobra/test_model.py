"""The COBRA description model helpers."""

import pytest

from repro.cobra.model import (CobraDescription, RawVideo, ShotFeatures,
                               VideoEvent, VideoObject)


@pytest.fixture
def description():
    raw = RawVideo("http://x/v.mpg", frame_count=30, width=64, height=36)
    description = CobraDescription(raw)
    description.shots = [
        ShotFeatures(0, 9, category="tennis"),
        ShotFeatures(10, 14, category="closeup"),
        ShotFeatures(15, 29, category="tennis"),
    ]
    description.objects = [
        VideoObject("player", frame_no=n, x=300.0, y=320.0, area=400)
        for n in list(range(0, 10)) + list(range(15, 30))
    ]
    description.events = [
        VideoEvent("netplay", 20, 25),
        VideoEvent("baseline_rally", 0, 9),
    ]
    return description


class TestLayers:
    def test_raw_layer_is_a_handle(self, description):
        assert description.raw.location == "http://x/v.mpg"
        assert description.raw.fps == 25.0

    def test_shots_of_category(self, description):
        tennis = description.shots_of_category("tennis")
        assert [(s.begin, s.end) for s in tennis] == [(0, 9), (15, 29)]
        assert description.shots_of_category("audience") == []

    def test_events_named(self, description):
        assert len(description.events_named("netplay")) == 1
        assert description.events_named("serve") == []

    def test_objects_in_range(self, description):
        in_second_shot = description.objects_in_range(15, 29)
        assert len(in_second_shot) == 15
        assert all(15 <= obj.frame_no <= 29 for obj in in_second_shot)

    def test_event_confidence_defaults(self, description):
        event = description.events[0]
        assert event.confidence == 1.0
        assert event.attributes == {}
