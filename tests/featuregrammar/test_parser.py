"""Feature grammar language parser."""

import pytest

from repro.errors import GrammarSemanticsError, GrammarSyntaxError
from repro.featuregrammar.ast import Multiplicity, SymbolKind
from repro.featuregrammar.parser import parse_grammar
from repro.featuregrammar.predicate import Compare, Quantifier

MINIMAL = """
%start S(x);
%atom str x;
S : x;
"""


class TestDirectives:
    def test_start_declaration(self):
        grammar = parse_grammar(MINIMAL)
        assert grammar.start.symbol == "S"
        assert grammar.start.parameters == ("x",)

    def test_module_name(self):
        grammar = parse_grammar("%module demo;\n" + MINIMAL)
        assert grammar.name == "demo"

    def test_atom_declaration_lists(self):
        grammar = parse_grammar("""
            %start S(a);
            %atom flt a, b;
            %atom int c;
            S : a b c;
        """)
        assert grammar.atom_of("a").name == "flt"
        assert grammar.atom_of("b").name == "flt"
        assert grammar.atom_of("c").name == "int"

    def test_atom_adt_only_declaration(self):
        # '%atom url;' declares the ADT itself
        parse_grammar("%start S(x);\n%atom url;\n%atom url x;\nS : x;")

    def test_duplicate_atom_raises(self):
        with pytest.raises(GrammarSemanticsError):
            parse_grammar("%start S(x);\n%atom str x;\n%atom int x;\nS : x;")

    def test_missing_start_raises(self):
        with pytest.raises(GrammarSemanticsError):
            parse_grammar("%atom str x;\nS : x;")

    def test_start_without_production_raises(self):
        with pytest.raises(GrammarSemanticsError):
            parse_grammar("%start T(x);\n%atom str x;\nS : x;")

    def test_unknown_directive_raises(self):
        with pytest.raises(GrammarSyntaxError):
            parse_grammar("%frobnicate x;\n" + MINIMAL)


class TestDetectors:
    def test_blackbox_with_parameters(self):
        grammar = parse_grammar("""
            %start S(x);
            %atom str x, y;
            %detector d(x, a.b);
            S : x d;
            d : y;
        """)
        decl = grammar.detectors["d"]
        assert decl.blackbox
        assert [str(path) for path in decl.parameters] == ["x", "a.b"]

    def test_protocol_prefix(self):
        grammar = parse_grammar("""
            %start S(x);
            %atom str x, y;
            %detector xml-rpc::d(x);
            S : x d;
            d : y;
        """)
        assert grammar.detectors["d"].protocol == "xml-rpc"

    def test_hooks(self):
        grammar = parse_grammar("""
            %start S(x);
            %atom str x, y;
            %detector d(x);
            %detector d.init();
            %detector d.final();
            %detector d.begin();
            %detector d.end();
            S : x d;
            d : y;
        """)
        assert grammar.detectors["d"].hooks == {"init", "final", "begin",
                                                "end"}

    def test_hook_on_undeclared_detector_raises(self):
        with pytest.raises(GrammarSemanticsError):
            parse_grammar("%start S(x);\n%detector d.init();\n"
                          "%atom str x;\nS : x;")

    def test_duplicate_detector_raises(self):
        with pytest.raises(GrammarSemanticsError):
            parse_grammar("""
                %start S(x);
                %atom str x;
                %detector d(x);
                %detector d(x);
                S : x;
            """)

    def test_whitebox_predicate(self):
        grammar = parse_grammar("""
            %start S(x);
            %atom str x;
            %detector w x == "video";
            S : x w?;
        """)
        decl = grammar.detectors["w"]
        assert decl.whitebox
        assert isinstance(decl.predicate, Compare)

    def test_whitebox_quantifier(self):
        grammar = parse_grammar("""
            %start S(x);
            %atom flt x;
            %detector w some[a.b]( c.d <= 170.0 );
            S : x w?;
        """)
        predicate = grammar.detectors["w"].predicate
        assert isinstance(predicate, Quantifier)
        assert predicate.kind == "some"
        assert str(predicate.binding) == "a.b"

    def test_whitebox_becomes_bit_atom(self):
        grammar = parse_grammar("""
            %start S(x);
            %atom str x;
            %detector w x == "v";
            S : x w?;
        """)
        assert grammar.atom_of("w").name == "bit"

    def test_whitebox_boolean_connectives(self):
        grammar = parse_grammar("""
            %start S(x);
            %atom flt x;
            %detector w x > 1.0 and x < 2.0 or not x == 1.5;
            S : x w?;
        """)
        assert grammar.detectors["w"].predicate is not None


class TestProductions:
    def test_multiplicities(self):
        grammar = parse_grammar("""
            %start S(a);
            %atom str a, b, c, d;
            S : a b? c* d+;
        """)
        terms = grammar.rules["S"][0].terms
        assert [t.multiplicity for t in terms] == [
            Multiplicity.ONE, Multiplicity.OPTIONAL, Multiplicity.STAR,
            Multiplicity.PLUS]

    def test_alternatives_by_repeated_lhs(self):
        grammar = parse_grammar("""
            %start S(a);
            %atom str a, b;
            S : a;
            S : b;
        """)
        assert len(grammar.alternatives("S")) == 2

    def test_alternatives_by_pipe(self):
        grammar = parse_grammar("""
            %start S(a);
            %atom str a, b;
            S : a | b;
        """)
        assert len(grammar.alternatives("S")) == 2

    def test_literals(self):
        grammar = parse_grammar("""
            %start S(a);
            %atom str a;
            S : "tennis" a;
        """)
        first = grammar.rules["S"][0].terms[0]
        assert first.literal and first.symbol == "tennis"

    def test_references(self):
        grammar = parse_grammar("""
            %start S(a);
            %atom str a;
            S : &S a | a;
        """)
        assert grammar.rules["S"][0].terms[0].reference

    def test_last_obligatory(self):
        grammar = parse_grammar("""
            %start S(a);
            %atom str a, b, c;
            S : a b c?;
        """)
        assert grammar.rules["S"][0].last_obligatory().symbol == "b"

    def test_kind_classification(self):
        grammar = parse_grammar("""
            %start S(a);
            %atom str a, y;
            %detector d(a);
            S : a V d;
            V : a;
            d : y;
        """)
        assert grammar.kind_of("a") == SymbolKind.ATOM
        assert grammar.kind_of("V") == SymbolKind.VARIABLE
        assert grammar.kind_of("d") == SymbolKind.DETECTOR

    def test_implicit_atoms_promoted(self):
        grammar = parse_grammar("""
            %start S(a);
            %atom str a;
            S : a mystery;
        """)
        assert "mystery" in grammar.implicit_atoms
        assert grammar.atom_of("mystery").name == "str"
