"""The detector registry: registration, versions, hooks, accounting."""

import pytest

from repro.errors import DetectorError
from repro.featuregrammar.detectors import DetectorRegistry
from repro.featuregrammar.versions import Version


@pytest.fixture
def registry():
    registry = DetectorRegistry()
    registry.register("alpha", lambda x: x + 1, version="1.2.3")
    registry.register("beta", lambda: "out")
    return registry


class TestRegistration:
    def test_lookup(self, registry):
        assert "alpha" in registry
        assert registry.get("alpha").name == "alpha"

    def test_missing_raises(self, registry):
        with pytest.raises(DetectorError):
            registry.get("gamma")
        with pytest.raises(DetectorError):
            registry.execute("gamma", ())

    def test_reregistration_replaces_implementation(self, registry):
        registry.register("alpha", lambda x: x * 10, version="1.2.3")
        assert registry.execute("alpha", (3,)) == 30

    def test_version_parsing(self, registry):
        assert registry.version("alpha") == Version(1, 2, 3)
        assert registry.version("beta") == Version(1, 0, 0)

    def test_set_version_returns_old(self, registry):
        old = registry.set_version("alpha", "2.0.0")
        assert old == Version(1, 2, 3)
        assert registry.version("alpha") == Version(2, 0, 0)


class TestExecution:
    def test_execute_passes_arguments(self, registry):
        assert registry.execute("alpha", (41,)) == 42

    def test_implementation_errors_wrapped(self, registry):
        registry.register("broken", lambda: 1 / 0)
        with pytest.raises(DetectorError):
            registry.execute("broken", ())

    def test_detector_error_passes_through(self, registry):
        def refuse():
            raise DetectorError("refused")
        registry.register("refusing", refuse)
        with pytest.raises(DetectorError, match="refused"):
            registry.execute("refusing", ())

    def test_execution_accounting(self, registry):
        registry.execute("alpha", (1,))
        registry.execute("alpha", (2,))
        registry.execute("beta", ())
        assert registry.executions("alpha") == 2
        assert registry.executions() == 3
        registry.reset_executions()
        assert registry.executions() == 0


class TestHooks:
    def test_hooks_run_and_report(self, registry):
        events = []
        registry.register_hook("alpha", "begin",
                               lambda: events.append("begin"))
        assert registry.run_hook("alpha", "begin") is True
        assert events == ["begin"]

    def test_missing_hook_reports_false(self, registry):
        assert registry.run_hook("alpha", "final") is False
        assert registry.run_hook("nonexistent", "init") is False

    def test_init_marks_initialized(self, registry):
        registry.register_hook("alpha", "init", lambda: None)
        assert not registry.get("alpha").initialized
        registry.run_hook("alpha", "init")
        assert registry.get("alpha").initialized
