"""The Feature Detector Engine: parsing semantics."""

import pytest

from repro.errors import ParseError
from repro.featuregrammar.detectors import DetectorRegistry
from repro.featuregrammar.fde import FDE
from repro.featuregrammar.parser import parse_grammar
from repro.featuregrammar.parsetree import NodeKind, tree_to_xml
from repro.xmlstore.writer import serialize


class TestVideoParsing:
    def test_video_parses(self, fde):
        outcome = fde.parse("http://site/match.mpg")
        assert outcome.tree.name == "MMO"
        assert outcome.leftover_tokens == 0

    def test_shots_match_segmenter_output(self, fde):
        outcome = fde.parse("http://site/match.mpg")
        shots = outcome.tree.find_all("shot")
        assert [(s.child("begin").leaf_value(), s.child("end").leaf_value())
                for s in shots] == [(0, 2), (3, 4), (5, 7)]

    def test_type_literals_select_alternatives(self, fde):
        outcome = fde.parse("http://site/match.mpg")
        shots = outcome.tree.find_all("shot")
        types = [s.child("type").children[0].name for s in shots]
        assert types == ["tennis", "other", "tennis"]

    def test_netplay_only_on_net_approach(self, fde):
        outcome = fde.parse("http://site/match.mpg")
        shots = outcome.tree.find_all("shot")
        netplay = [[n.value for n in s.find_all("netplay")] for s in shots]
        assert netplay == [[True], [], []]

    def test_frames_carry_player_features(self, fde):
        outcome = fde.parse("http://site/match.mpg")
        frames = outcome.tree.find_all("frame")
        assert len(frames) == 6  # 3 + 3 tennis frames
        first_player = frames[0].child("player")
        assert first_player.child("yPos").leaf_value() == 300.0
        assert first_player.child("Area").leaf_value() == 450

    def test_non_video_skips_mm_type(self, fde):
        outcome = fde.parse("http://site/photo.jpg")
        assert outcome.tree.child("mm_type") is None
        mime = outcome.tree.find_all("primary")[0]
        assert mime.leaf_value() == "image"

    def test_detector_calls_counted(self, fde):
        outcome = fde.parse("http://site/match.mpg")
        # header + segment + tennis x 2 tennis shots
        assert outcome.detector_calls == 4

    def test_detector_version_recorded(self, fde):
        outcome = fde.parse("http://site/match.mpg")
        header = outcome.tree.find_all("header")[0]
        assert str(header.detector_version) == "1.0.0"

    def test_references_empty_without_reference_terms(self, fde):
        assert fde.parse("http://site/photo.jpg").references == []


class TestErrors:
    def test_missing_start_tokens(self, fde):
        with pytest.raises(ParseError):
            fde.parse()

    def test_unknown_object_fails_parse(self, fde):
        with pytest.raises(ParseError):
            fde.parse("http://site/missing.mpg")


class TestXmlDump:
    def test_tree_dumps_to_xml(self, fde):
        outcome = fde.parse("http://site/match.mpg")
        xml = tree_to_xml(outcome.tree)
        text = serialize(xml)
        assert text.startswith("<MMO>")
        assert "<netplay>true</netplay>" in text
        assert 'version="1.0.0"' in text

    def test_dump_survives_storage_round_trip(self, fde):
        from repro.xmlstore.model import isomorphic
        from repro.xmlstore.store import XmlStore

        outcome = fde.parse("http://site/match.mpg")
        xml = tree_to_xml(outcome.tree)
        store = XmlStore()
        store.insert("meta", xml)
        assert isomorphic(store.reconstruct("meta"), xml)


class TestGrammarMechanics:
    def test_plus_requires_one(self):
        grammar = parse_grammar("""
            %start S(x);
            %atom str x;
            %detector feed(x);
            %atom int n;
            S : x feed;
            feed : item+;
            item : n;
        """)
        registry = DetectorRegistry()
        registry.register("feed", lambda x: [])
        with pytest.raises(ParseError):
            FDE(grammar, registry).parse("http://x/a")
        registry.register("feed", lambda x: [1, 2])
        outcome = FDE(grammar, registry).parse("http://x/a")
        assert len(outcome.tree.find_all("item")) == 2

    def test_star_accepts_zero(self):
        grammar = parse_grammar("""
            %start S(x);
            %atom str x;
            %detector feed(x);
            %atom int n;
            S : x feed;
            feed : item*;
            item : n;
        """)
        registry = DetectorRegistry()
        registry.register("feed", lambda x: [])
        outcome = FDE(grammar, registry).parse("http://x/a")
        assert outcome.tree.find_all("item") == []

    def test_long_repetition_is_iterative(self):
        # hundreds of occurrences must not exhaust the interpreter stack
        grammar = parse_grammar("""
            %start S(x);
            %atom str x;
            %detector feed(x);
            %atom int n;
            S : x feed;
            feed : item*;
            item : n;
        """)
        registry = DetectorRegistry()
        registry.register("feed", lambda x: list(range(3000)))
        outcome = FDE(grammar, registry).parse("http://x/a")
        assert len(outcome.tree.find_all("item")) == 3000

    def test_backtracking_across_alternatives(self):
        grammar = parse_grammar("""
            %start S(x);
            %atom str x;
            %detector feed(x);
            %atom int n;
            %atom str w;
            S : x feed;
            feed : n n;
            feed : n w;
        """)
        registry = DetectorRegistry()
        registry.register("feed", lambda x: [1, "two"])
        outcome = FDE(grammar, registry).parse("http://x/a")
        assert outcome.tree.find_all("w")[0].leaf_value() == "two"
        assert outcome.backtracks >= 1

    def test_repetition_backs_off_for_the_continuation(self):
        # feed emits ints; item* must stop early so tail can match
        grammar = parse_grammar("""
            %start S(x);
            %atom str x;
            %detector feed(x);
            %atom int n;
            S : x feed;
            feed : item* tail;
            item : n;
            tail : n n;
        """)
        registry = DetectorRegistry()
        registry.register("feed", lambda x: [1, 2, 3, 4])
        outcome = FDE(grammar, registry).parse("http://x/a")
        assert len(outcome.tree.find_all("item")) == 2
        assert outcome.tree.find_all("tail")[0].children[0].leaf_value() == 3

    def test_repetition_revisits_occurrence_alternatives(self):
        # the first reading of an occurrence may swallow tokens the
        # continuation needs; the repetition must then re-read that
        # occurrence through its OTHER alternative, not merely drop it
        grammar = parse_grammar("""
            %start S(x);
            %atom str x;
            %detector feed(x);
            %atom int n;
            %atom str w;
            S : x feed;
            feed : item* tail;
            item : n n;
            item : n;
            tail : n w;
        """)
        registry = DetectorRegistry()
        registry.register("feed", lambda x: [1, 2, "end"])
        outcome = FDE(grammar, registry).parse("http://x/a")
        # the only consistent reading: item=(1), tail=(2, "end")
        items = outcome.tree.find_all("item")
        assert len(items) == 1
        assert [leaf.leaf_value() for leaf in items[0].children] == [1]
        tail = outcome.tree.find_all("tail")[0]
        assert [leaf.leaf_value() for leaf in tail.children] == [2, "end"]

    def test_repetition_backs_off_across_detector_boundaries(self):
        # the soccer-extension scenario: a repetition inside one shot
        # must not permanently swallow the next shot's tokens
        grammar = parse_grammar("""
            %start S(x);
            %atom str x;
            %detector feed(x);
            %atom int n;
            S : x feed;
            feed : group*;
            group : "g" pair*;
            pair : n n;
        """)
        registry = DetectorRegistry()
        registry.register("feed", lambda x: ["g", 1, 2, "g", 3, 4])
        outcome = FDE(grammar, registry).parse("http://x/a")
        groups = outcome.tree.find_all("group")
        assert len(groups) == 2
        assert [len(g.find_all("pair")) for g in groups] == [1, 1]

    def test_reference_consumes_identifying_token(self):
        grammar = parse_grammar("""
            %start S(x);
            %atom url x;
            %detector links(x);
            S : x links;
            links : anchor*;
            anchor : "a" &S;
        """)
        registry = DetectorRegistry()
        registry.register(
            "links", lambda x: ["a", "http://x/1", "a", "http://x/2"])
        outcome = FDE(grammar, registry).parse("http://x/root")
        assert outcome.references == [("S", "http://x/1"),
                                      ("S", "http://x/2")]
        anchors = outcome.tree.find_all("anchor")
        assert anchors[0].children[1].kind == NodeKind.REFERENCE

    def test_hooks_fire_in_order(self):
        events = []
        grammar = parse_grammar("""
            %start S(x);
            %atom str x, y;
            %detector d(x);
            %detector d.init();
            %detector d.final();
            %detector d.begin();
            %detector d.end();
            S : x d d;
            d : y;
        """)
        registry = DetectorRegistry()
        registry.register("d", lambda x: ["out"])
        registry.register_hook("d", "init", lambda: events.append("init"))
        registry.register_hook("d", "final", lambda: events.append("final"))
        registry.register_hook("d", "begin", lambda: events.append("begin"))
        registry.register_hook("d", "end", lambda: events.append("end"))
        FDE(grammar, registry).parse("http://x/a")
        assert events == ["init", "begin", "end", "begin", "end", "final"]

    def test_copying_stacks_give_same_parse(self, grammar, registry):
        shared = FDE(grammar, registry, shared_stacks=True)
        copying = FDE(grammar, registry, shared_stacks=False)
        left = shared.parse("http://site/match.mpg")
        right = copying.parse("http://site/match.mpg")
        assert serialize(tree_to_xml(left.tree)) \
            == serialize(tree_to_xml(right.tree))
