"""E2: the dependency graph of Fig 8 and its closures."""

import pytest

from repro.featuregrammar.dependency import DependencyGraph
from repro.featuregrammar.parser import parse_grammar

FIGURE_6 = """
%start MMO(location);
%detector header(location);
%detector video_type primary == "video";
%atom url location;
%atom str primary;
%atom str secondary;
MMO : location header mm_type?;
header : MIME_type;
MIME_type : primary secondary;
mm_type : video_type video;
"""


@pytest.fixture
def graph():
    return DependencyGraph.from_grammar(parse_grammar(FIGURE_6))


class TestEdges:
    def test_sibling_edges_of_mmo_rule(self, graph):
        # "header depends on location and vice versa"
        assert "location" in graph.siblings("header")
        assert "header" in graph.siblings("location")
        assert "mm_type" in graph.siblings("header")

    def test_rule_edge_skips_optional(self, graph):
        # "MMO depends on the validity of header and not ... mm_type"
        assert graph.rule_targets("MMO") == {"header"}

    def test_rule_edges_down_the_chain(self, graph):
        assert graph.rule_targets("header") == {"MIME_type"}
        assert graph.rule_targets("MIME_type") == {"secondary"}
        assert graph.rule_targets("mm_type") == {"video"}

    def test_parameter_edges(self, graph):
        assert graph.parameters("header") == {"location"}
        # the whitebox predicate's path is a parameter dependency
        assert graph.parameters("video_type") == {"primary"}

    def test_edge_kinds_enumerable(self, graph):
        kinds = {edge.kind for edge in graph.edges}
        assert kinds == {"sibling", "rule", "parameter"}


class TestClosures:
    def test_header_closure_matches_paper(self, graph):
        # "This will involve header, MIME_type, secondary and primary
        # nodes, as can be derived by following the rule and sibling
        # dependencies downward."
        assert graph.downward_closure("header") \
            == {"header", "MIME_type", "secondary", "primary"}

    def test_parameter_dependents_of_header_closure(self, graph):
        # "If ... the primary MIME type has changed the video_type
        # detector will become invalid."
        closure = graph.downward_closure("header")
        assert graph.parameter_dependents(closure) == {"video_type",
                                                       "header"} \
            or graph.parameter_dependents(closure) == {"video_type"}

    def test_atom_closure_is_itself(self, graph):
        assert graph.downward_closure("secondary") == {"secondary"}


class TestUpward:
    def test_mime_type_escalates_to_header(self, graph):
        assert graph.upward_detectors("MIME_type") == {"header"}

    def test_primary_escalates_to_header(self, graph):
        assert graph.upward_detectors("primary") == {"header"}

    def test_header_escalates_to_start(self, graph):
        assert graph.upward_detectors("header") == {"MMO"}

    def test_video_type_escalates_to_start(self, graph):
        # mm_type is not a detector, MMO is the start symbol
        assert graph.upward_detectors("video_type") == {"MMO"}


class TestLargerGrammar:
    def test_tennis_chain(self, grammar):
        graph = DependencyGraph.from_grammar(grammar)
        # tennis reads begin.frameNo/end.frameNo: parameter edges
        assert {"location", "begin", "frameNo", "end"} \
            <= graph.parameters("tennis")
        # netplay quantifies over tennis.frame and reads player.yPos
        assert {"tennis", "frame", "player", "yPos"} \
            <= graph.parameters("netplay")

    def test_segment_closure_stops_at_pure_star_rule(self, grammar):
        # 'segment : shot*' has no obligatory symbol, so no rule edge:
        # the paper's rule dependency anchors on "the last symbol with a
        # lower bound greater than zero", which a pure-star rule lacks
        graph = DependencyGraph.from_grammar(grammar)
        assert graph.downward_closure("segment") == {"segment"}

    def test_shot_closure_contains_whole_shot_structure(self, grammar):
        graph = DependencyGraph.from_grammar(grammar)
        closure = graph.downward_closure("shot")
        assert {"shot", "type", "begin", "end", "tennis", "event",
                "frame"} <= closure

    def test_netplay_escalates_to_tennis(self, grammar):
        graph = DependencyGraph.from_grammar(grammar)
        assert graph.upward_detectors("netplay") == {"tennis"}


class TestDotExport:
    def test_fig8_shapes_and_styles(self, graph):
        dot = graph.to_dot()
        assert dot.startswith("digraph")
        assert '"header" [shape=diamond];' in dot
        assert '"MMO" [shape=ellipse];' in dot
        assert '"location" [shape=box];' in dot
        assert "style=dashed" in dot      # sibling
        assert "style=solid" in dot       # rule
        assert "style=dotted" in dot      # parameter

    def test_sibling_pairs_drawn_once(self, graph):
        dot = graph.to_dot()
        drawn = dot.count('label="sibling"')
        pairs = {frozenset((e.source, e.target))
                 for e in graph.edges_of_kind("sibling")}
        assert drawn == len(pairs)
