"""Shared fixtures: an operational tennis-style grammar with stub
implementations whose behaviour tests can steer per-object."""

import pytest

from repro.featuregrammar.detectors import DetectorRegistry
from repro.featuregrammar.fde import FDE
from repro.featuregrammar.parser import parse_grammar

OPERATIONAL_GRAMMAR = """
%module tennis_test;
%start MMO(location);

%detector header(location);
%detector video_type primary == "video";
%detector xml-rpc::segment(location);
%detector xml-rpc::tennis(location, begin.frameNo, end.frameNo);
%detector netplay some[tennis.frame]( player.yPos <= 170.0 );

%atom url location;
%atom str primary, secondary;
%atom flt xPos, yPos, Ecc, Orient;
%atom int frameNo, Area;
%atom bit netplay;

MMO : location header mm_type?;
header : MIME_type;
MIME_type : primary secondary;
mm_type : video_type video;
video : segment;
segment : shot*;
shot : begin end type;
begin : frameNo;
end : frameNo;
type : "tennis" tennis;
type : "other";
tennis : frame* event;
frame : frameNo player;
player : xPos yPos Area Ecc Orient;
event : netplay?;
"""


class StubWorld:
    """Mutable backing data for the stub detectors."""

    def __init__(self):
        # location -> (primary, secondary)
        self.mime = {}
        # location -> [(begin, end, type, [yPos per frame])]
        self.shots = {}

    def add_video(self, location, shots):
        self.mime[location] = ("video", "mpeg")
        self.shots[location] = shots

    def add_other(self, location, mime=("image", "jpeg")):
        self.mime[location] = mime


def build_registry(world: StubWorld) -> DetectorRegistry:
    from repro.featuregrammar.rpc import RpcServer, default_transports

    server = RpcServer()
    registry = DetectorRegistry(default_transports(server))
    registry.register("header",
                      lambda location: list(world.mime[location]))

    def segment(location):
        tokens = []
        for begin, end, shot_type, _ in world.shots.get(location, []):
            tokens.extend([begin, end, shot_type])
        return tokens

    def tennis(location, begin, end):
        tokens = []
        for b, e, shot_type, ys in world.shots.get(location, []):
            if b == begin and e == end:
                for offset, y in enumerate(ys):
                    tokens.extend([b + offset, 100.0, float(y),
                                   450, 0.6, 0.2])
        return tokens

    server.register("segment", segment)
    server.register("tennis", tennis)
    registry.remote("xml-rpc", "segment")
    registry.remote("xml-rpc", "tennis")
    return registry


@pytest.fixture
def world() -> StubWorld:
    world = StubWorld()
    world.add_video("http://site/match.mpg", [
        (0, 2, "tennis", [300.0, 250.0, 160.0]),   # approaches the net
        (3, 4, "other", []),
        (5, 7, "tennis", [300.0, 310.0, 305.0]),   # stays at the baseline
    ])
    world.add_other("http://site/photo.jpg")
    return world


@pytest.fixture
def grammar():
    return parse_grammar(OPERATIONAL_GRAMMAR)


@pytest.fixture
def registry(world):
    return build_registry(world)


@pytest.fixture
def fde(grammar, registry) -> FDE:
    return FDE(grammar, registry)
