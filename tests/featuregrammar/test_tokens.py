"""Token stacks: shared-suffix and copying semantics must agree."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.featuregrammar.tokens import (CopyingTokenStack, SharedTokenStack,
                                         Token, make_stack)


@pytest.fixture(params=[SharedTokenStack, CopyingTokenStack])
def stack_class(request):
    return request.param


class TestInterface:
    def test_empty(self, stack_class):
        stack = stack_class.empty()
        assert stack.is_empty() and len(stack) == 0
        assert stack.peek() is None

    def test_pop_empty_raises(self, stack_class):
        with pytest.raises(IndexError):
            stack_class.empty().pop()

    def test_from_tokens_top_is_first(self, stack_class):
        stack = stack_class.from_tokens([Token(1), Token(2), Token(3)])
        assert stack.peek().value == 1
        assert [token.value for token in stack] == [1, 2, 3]

    def test_push_pop(self, stack_class):
        stack = stack_class.empty().push(Token("a"))
        token, rest = stack.pop()
        assert token.value == "a" and rest.is_empty()

    def test_push_all_order(self, stack_class):
        stack = stack_class.empty().push_all([Token(1), Token(2)])
        assert [token.value for token in stack] == [1, 2]

    def test_persistence_of_versions(self, stack_class):
        base = stack_class.from_tokens([Token("x")])
        version_a = base.push(Token("a"))
        version_b = base.push(Token("b"))
        assert version_a.peek().value == "a"
        assert version_b.peek().value == "b"
        assert base.peek().value == "x"

    def test_save_is_usable_after_mutating_path(self, stack_class):
        stack = stack_class.from_tokens([Token(1), Token(2)])
        saved = stack.save()
        _, popped = stack.pop()
        assert len(saved) == 2 and len(popped) == 1


class TestSharingAccounting:
    def test_shared_push_allocates_one_cell(self):
        stack = SharedTokenStack.from_tokens([Token(i) for i in range(100)])
        before = SharedTokenStack.cells_allocated
        stack.push(Token("top"))
        assert SharedTokenStack.cells_allocated - before == 1

    def test_copying_save_allocates_full_copy(self):
        stack = CopyingTokenStack.from_tokens([Token(i) for i in range(100)])
        before = CopyingTokenStack.cells_allocated
        stack.save()
        assert CopyingTokenStack.cells_allocated - before == 100

    def test_shared_save_is_free(self):
        stack = SharedTokenStack.from_tokens([Token(i) for i in range(100)])
        before = SharedTokenStack.cells_allocated
        saved = stack.save()
        assert saved is stack
        assert SharedTokenStack.cells_allocated == before

    def test_suffixes_physically_shared(self):
        base = SharedTokenStack.from_tokens([Token(1), Token(2)])
        version_a = base.push(Token("a"))
        version_b = base.push(Token("b"))
        assert version_a._rest is version_b._rest  # the shared suffix


class TestFactory:
    def test_make_stack_shared(self):
        assert isinstance(make_stack([Token(1)], shared=True),
                          SharedTokenStack)

    def test_make_stack_copying(self):
        assert isinstance(make_stack([Token(1)], shared=False),
                          CopyingTokenStack)


@given(st.lists(st.integers(), max_size=30))
def test_both_flavours_agree(values):
    tokens = [Token(v) for v in values]
    shared = SharedTokenStack.from_tokens(tokens)
    copying = CopyingTokenStack.from_tokens(tokens)
    assert list(t.value for t in shared) == list(t.value for t in copying)
    while not shared.is_empty():
        s_token, shared = shared.pop()
        c_token, copying = copying.pop()
        assert s_token.value == c_token.value
    assert copying.is_empty()
