"""Whitebox predicate evaluation."""

import pytest

from repro.errors import DetectorError
from repro.featuregrammar.ast import TreePath
from repro.featuregrammar.parsetree import NodeKind, ParseNode
from repro.featuregrammar.predicate import (And, Compare, Constant, Not, Or,
                                            Quantifier)


def _atom(name, value):
    return ParseNode(name, NodeKind.ATOM, value=value)


def _var(name, *children):
    node = ParseNode(name, NodeKind.VARIABLE)
    for child in children:
        node.add(child)
    return node


@pytest.fixture
def context():
    """MIME-style tree with a detector context node at the end."""
    tree = _var("MMO",
                _atom("location", "http://x/v.mpg"),
                _var("header",
                     _var("MIME_type",
                          _atom("primary", "video"),
                          _atom("secondary", "mpeg"))),
                _var("probe"))
    return tree.children[2]  # the probe node: predicates evaluate here


class TestCompare:
    def test_equality_true(self, context):
        assert Compare(TreePath.parse("primary"), "==", "video") \
            .evaluate(context)

    def test_equality_false(self, context):
        assert not Compare(TreePath.parse("primary"), "==", "image") \
            .evaluate(context)

    @pytest.mark.parametrize("op,right,expected", [
        ("!=", "image", True), ("!=", "video", False),
        ("<", "w", True), ("<=", "video", True),
        (">", "u", True), (">=", "video", True),
    ])
    def test_all_operators(self, context, op, right, expected):
        assert Compare(TreePath.parse("primary"), op, right) \
            .evaluate(context) is expected

    def test_path_to_path_comparison(self, context):
        assert Compare(TreePath.parse("primary"), "!=",
                       TreePath.parse("secondary")).evaluate(context)

    def test_type_mismatch_raises(self, context):
        with pytest.raises(DetectorError):
            Compare(TreePath.parse("primary"), "<", 42).evaluate(context)

    def test_missing_path_raises(self, context):
        with pytest.raises(DetectorError):
            Compare(TreePath.parse("absent"), "==", 1).evaluate(context)


class TestConnectives:
    def test_and(self, context):
        video = Compare(TreePath.parse("primary"), "==", "video")
        mpeg = Compare(TreePath.parse("secondary"), "==", "mpeg")
        assert And((video, mpeg)).evaluate(context)
        assert not And((video, Not(mpeg))).evaluate(context)

    def test_or(self, context):
        video = Compare(TreePath.parse("primary"), "==", "video")
        wrong = Compare(TreePath.parse("primary"), "==", "image")
        assert Or((wrong, video)).evaluate(context)
        assert not Or((wrong, wrong)).evaluate(context)

    def test_not(self, context):
        assert Not(Constant(False)).evaluate(context)

    def test_constants(self, context):
        assert Constant(True).evaluate(context)
        assert not Constant(False).evaluate(context)

    def test_paths_collected(self):
        predicate = And((Compare(TreePath.parse("a.b"), "==", 1),
                         Not(Compare(TreePath.parse("c"), ">", 2.0))))
        assert [str(p) for p in predicate.paths()] == ["a.b", "c"]


@pytest.fixture
def frames_context():
    frames = []
    for number, y in [(0, 300.0), (1, 160.0), (2, 310.0)]:
        frames.append(_var("frame", _atom("frameNo", number),
                           _var("player", _atom("yPos", y))))
    tennis = _var("tennis", *frames, _var("event"))
    _var("shot", tennis)
    return tennis.children[-1]  # the event node


class TestQuantifiers:
    def _netplay(self, kind):
        return Quantifier(kind, TreePath.parse("tennis.frame"),
                          Compare(TreePath.parse("player.yPos"),
                                  "<=", 170.0))

    def test_some_true(self, frames_context):
        assert self._netplay("some").evaluate(frames_context)

    def test_one_true_for_single_match(self, frames_context):
        assert self._netplay("one").evaluate(frames_context)

    def test_all_false_when_any_fails(self, frames_context):
        assert not self._netplay("all").evaluate(frames_context)

    def test_all_with_relaxed_threshold(self, frames_context):
        relaxed = Quantifier("all", TreePath.parse("tennis.frame"),
                             Compare(TreePath.parse("player.yPos"),
                                     "<=", 1000.0))
        assert relaxed.evaluate(frames_context)

    def test_all_vacuously_true_on_no_bindings(self, frames_context):
        empty = Quantifier("all", TreePath.parse("tennis.nothing"),
                           Constant(False))
        assert empty.evaluate(frames_context)

    def test_some_false_on_no_bindings(self, frames_context):
        empty = Quantifier("some", TreePath.parse("tennis.nothing"),
                           Constant(True))
        assert not empty.evaluate(frames_context)

    def test_inner_predicate_scoped_per_binding(self, frames_context):
        # every frame's own yPos is inspected, not the first frame's
        exactly_one = Quantifier(
            "one", TreePath.parse("tennis.frame"),
            Compare(TreePath.parse("player.yPos"), "==", 160.0))
        assert exactly_one.evaluate(frames_context)

    def test_unknown_kind_rejected(self):
        with pytest.raises(DetectorError):
            Quantifier("most", TreePath.parse("a"), Constant(True))

    def test_str_rendering(self):
        predicate = self._netplay("some")
        assert str(predicate) == \
            "some[tennis.frame](player.yPos <= 170.0)"
