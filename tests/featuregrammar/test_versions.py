"""Three-level detector versions."""

import pytest

from repro.errors import SchedulerError
from repro.featuregrammar.versions import ChangeLevel, Version


class TestParsing:
    def test_full_version(self):
        assert Version.parse("2.3.4") == Version(2, 3, 4)

    def test_short_forms(self):
        assert Version.parse("2") == Version(2, 0, 0)
        assert Version.parse("2.1") == Version(2, 1, 0)

    def test_str_round_trip(self):
        assert str(Version.parse("1.2.3")) == "1.2.3"

    @pytest.mark.parametrize("bad", ["", "a.b", "1.2.3.4", "1..2"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(SchedulerError):
            Version.parse(bad)

    def test_negative_rejected(self):
        with pytest.raises(SchedulerError):
            Version(-1, 0, 0)


class TestChangeLevels:
    def test_same_version_is_none(self):
        assert Version(1, 2, 3).change_level(Version(1, 2, 3)) \
            == ChangeLevel.NONE

    def test_correction(self):
        assert Version(1, 2, 3).change_level(Version(1, 2, 4)) \
            == ChangeLevel.CORRECTION

    def test_minor(self):
        assert Version(1, 2, 3).change_level(Version(1, 3, 0)) \
            == ChangeLevel.MINOR

    def test_major(self):
        assert Version(1, 2, 3).change_level(Version(2, 0, 0)) \
            == ChangeLevel.MAJOR

    def test_major_dominates_lower_components(self):
        assert Version(1, 2, 3).change_level(Version(2, 2, 3)) \
            == ChangeLevel.MAJOR

    def test_levels_are_ordered(self):
        assert ChangeLevel.NONE < ChangeLevel.CORRECTION \
            < ChangeLevel.MINOR < ChangeLevel.MAJOR


class TestBump:
    def test_bump_correction(self):
        assert Version(1, 2, 3).bump(ChangeLevel.CORRECTION) \
            == Version(1, 2, 4)

    def test_bump_minor_resets_correction(self):
        assert Version(1, 2, 3).bump(ChangeLevel.MINOR) == Version(1, 3, 0)

    def test_bump_major_resets_all(self):
        assert Version(1, 2, 3).bump(ChangeLevel.MAJOR) == Version(2, 0, 0)

    def test_bump_none_is_identity(self):
        assert Version(1, 2, 3).bump(ChangeLevel.NONE) == Version(1, 2, 3)

    def test_bump_round_trips_change_level(self):
        for level in (ChangeLevel.CORRECTION, ChangeLevel.MINOR,
                      ChangeLevel.MAJOR):
            assert Version(1, 2, 3).change_level(
                Version(1, 2, 3).bump(level)) == level
