"""E1: the paper's grammar fragments parse verbatim.

Figures 6, 7 and 14 are reproduced character-for-character (minus the
printed line numbers) and must load.  Where a fragment is partial, the
undeclared leaf symbols are promoted to implicit str atoms.
"""

from repro.featuregrammar.ast import Multiplicity
from repro.featuregrammar.parser import parse_grammar
from repro.featuregrammar.predicate import Quantifier

FIGURE_6 = """
%start MMO(location);

%detector header(location);
%detector header.init();
%detector header.final();

%detector video_type primary == "video";

%atom url;

%atom url location;
%atom str primary;
%atom str secondary;

MMO : location header mm_type?;
header : MIME_type;
MIME_type : primary secondary;
mm_type : video_type video;
"""

FIGURE_7 = """
%start MMO(location);

%detector xml-rpc::segment(location);
%detector xml-rpc::tennis(location,begin.frameNo,
end.frameNo);

%detector netplay some[tennis.frame](
  player.yPos <= 170.0
);

%atom flt xPos,yPos,Ecc,Orient;
%atom int frameNo,Area;
%atom bit netplay;

MMO : video;
video : segment;
segment : shot*;
shot : begin end type;
begin : frameNo;
end : frameNo;
type : "tennis" tennis;
type : "other";
tennis : frame* event;
frame : frameNo player;
player : xPos yPos Area Ecc Orient;
event : netplay;
"""

FIGURE_14 = """
%start html(location);
%atom url location;
html : title? body? anchor* ;
body : &keyword+;
anchor : &MMO embedded link? alternative?;
keyword : word;
"""


class TestFigure6:
    def test_parses(self):
        grammar = parse_grammar(FIGURE_6)
        assert grammar.start.symbol == "MMO"
        assert grammar.start.parameters == ("location",)

    def test_detectors(self):
        grammar = parse_grammar(FIGURE_6)
        assert grammar.detectors["header"].blackbox
        assert grammar.detectors["header"].hooks == {"init", "final"}
        assert grammar.detectors["video_type"].whitebox

    def test_video_fragment_is_implicit(self):
        # 'video' has no rule in the Fig 6 fragment: promoted to an atom
        grammar = parse_grammar(FIGURE_6)
        assert "video" in grammar.implicit_atoms

    def test_mm_type_optional(self):
        grammar = parse_grammar(FIGURE_6)
        mm_type = grammar.rules["MMO"][0].terms[2]
        assert mm_type.multiplicity == Multiplicity.OPTIONAL

    def test_rule_dependency_anchor(self):
        # "MMO depends on the validity of header and not ... mm_type"
        grammar = parse_grammar(FIGURE_6)
        assert grammar.rules["MMO"][0].last_obligatory().symbol == "header"


class TestFigure7:
    def test_parses(self):
        grammar = parse_grammar(FIGURE_7)
        assert {"segment", "tennis", "netplay"} <= set(grammar.detectors)

    def test_external_protocols(self):
        grammar = parse_grammar(FIGURE_7)
        assert grammar.detectors["segment"].protocol == "xml-rpc"
        assert grammar.detectors["tennis"].protocol == "xml-rpc"

    def test_tennis_parameters_are_paths(self):
        grammar = parse_grammar(FIGURE_7)
        parameters = [str(p) for p in grammar.detectors["tennis"].parameters]
        assert parameters == ["location", "begin.frameNo", "end.frameNo"]

    def test_netplay_quantifier(self):
        grammar = parse_grammar(FIGURE_7)
        predicate = grammar.detectors["netplay"].predicate
        assert isinstance(predicate, Quantifier)
        assert predicate.kind == "some"
        assert str(predicate.binding) == "tennis.frame"
        assert str(predicate.inner) == "player.yPos <= 170.0"

    def test_type_alternatives_with_literals(self):
        grammar = parse_grammar(FIGURE_7)
        alternatives = grammar.alternatives("type")
        assert len(alternatives) == 2
        assert alternatives[0].terms[0].literal
        assert alternatives[0].terms[0].symbol == "tennis"

    def test_atom_types(self):
        grammar = parse_grammar(FIGURE_7)
        assert grammar.atom_of("yPos").name == "flt"
        assert grammar.atom_of("frameNo").name == "int"
        assert grammar.atom_of("netplay").name == "bit"


class TestFigure14:
    def test_parses(self):
        grammar = parse_grammar(FIGURE_14)
        assert "html" in grammar.rules

    def test_references_model_the_web_graph(self):
        grammar = parse_grammar(FIGURE_14)
        body = grammar.rules["body"][0].terms[0]
        assert body.reference and body.symbol == "keyword"
        assert body.multiplicity == Multiplicity.PLUS
        anchor = grammar.rules["anchor"][0].terms[0]
        assert anchor.reference and anchor.symbol == "MMO"

    def test_partial_symbols_promoted(self):
        grammar = parse_grammar(FIGURE_14)
        assert {"title", "embedded", "link", "alternative", "word",
                "MMO"} <= set(grammar.implicit_atoms)
