"""Property-based FDE tests: acceptance against regular references.

For grammars whose token-type language is regular, FDE acceptance must
coincide exactly with a regex over the token-type string — soundness
(never accepts a sentence outside L(G)) and completeness (backtracking
finds every derivable reading) in one property.  Random token sequences
come from hypothesis; the detector simply replays them.
"""

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParseError
from repro.featuregrammar.detectors import DetectorRegistry
from repro.featuregrammar.fde import FDE
from repro.featuregrammar.parser import parse_grammar


def _build(grammar_source: str, tokens):
    grammar = parse_grammar(grammar_source)
    registry = DetectorRegistry()
    registry.register("feed", lambda x: list(tokens))
    return FDE(grammar, registry)


def _accepts(grammar_source: str, tokens) -> bool:
    try:
        outcome = _build(grammar_source, tokens).parse("http://p/x")
    except ParseError:
        return False
    assert outcome.leftover_tokens == 0
    return True


def _types(tokens) -> str:
    return "".join("B" if token == "b" else
                   "I" if isinstance(token, int) else "W"
                   for token in tokens)


# item* tail with ambiguous item: L = I+ W  (items eat 1-2 ints each,
# the tail needs one int and the word)
AMBIGUOUS = """
%start S(x);
%atom str x;
%detector feed(x);
%atom int n;
%atom str w;
S : x feed;
feed : item* tail;
item : n n;
item : n;
tail : n w;
"""

_token = st.one_of(st.integers(0, 9),
                   st.sampled_from(["end", "stop"]))


@settings(max_examples=120, deadline=None)
@given(st.lists(_token, max_size=10))
def test_ambiguous_repetition_matches_regular_reference(tokens):
    expected = bool(re.fullmatch(r"I+W", _types(tokens)))
    assert _accepts(AMBIGUOUS, tokens) == expected


# blocks guarded by a literal: L = (B I*)*
BLOCKS = """
%start S(x);
%atom str x;
%detector feed(x);
%atom int n;
S : x feed;
feed : block*;
block : "b" pair*;
pair : n n;
"""


@settings(max_examples=120, deadline=None)
@given(st.lists(st.one_of(st.just("b"), st.integers(0, 9)), max_size=10))
def test_literal_guarded_blocks_match_reference(tokens):
    expected = bool(re.fullmatch(r"(B(II)*)*", _types(tokens)))
    assert _accepts(BLOCKS, tokens) == expected


# optional prefix + plus: L = W? I+
OPTIONAL_PLUS = """
%start S(x);
%atom str x;
%detector feed(x);
%atom int n;
%atom str w;
S : x feed;
feed : label? number+;
label : w;
number : n;
"""


@settings(max_examples=120, deadline=None)
@given(st.lists(_token, max_size=8))
def test_optional_plus_matches_reference(tokens):
    expected = bool(re.fullmatch(r"W?I+", _types(tokens)))
    assert _accepts(OPTIONAL_PLUS, tokens) == expected


# nested repetition with trailing obligatory element per group:
# L = ( I* W )*
GROUPS = """
%start S(x);
%atom str x;
%detector feed(x);
%atom int n;
%atom str w;
S : x feed;
feed : group*;
group : number* terminator;
number : n;
terminator : w;
"""


@settings(max_examples=120, deadline=None)
@given(st.lists(_token, max_size=10))
def test_nested_repetition_matches_reference(tokens):
    expected = bool(re.fullmatch(r"(I*W)*", _types(tokens)))
    assert _accepts(GROUPS, tokens) == expected


@pytest.mark.parametrize("tokens,expected", [
    ([1, "end"], True),             # zero items, tail=(1, end)
    ([1, 2, "end"], True),          # item=(1), tail=(2, end)
    ([1, 2, 3, "end"], True),       # item=(1,2), tail=(3, end)
    (["end"], False),               # tail needs an int first
    ([1, 2, 3], False),             # no word for the tail
    ([], False),
])
def test_ambiguous_examples(tokens, expected):
    assert _accepts(AMBIGUOUS, tokens) == expected
