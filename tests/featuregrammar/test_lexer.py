"""Feature grammar tokenizer."""

import pytest

from repro.errors import GrammarSyntaxError
from repro.featuregrammar.lexer import tokenize


def kinds(source):
    return [token.kind for token in tokenize(source)]


def values(source):
    return [token.value for token in tokenize(source)]


class TestBasics:
    def test_directive(self):
        assert kinds("%start")[:-1] == ["DIRECTIVE"]
        assert values("%start")[0] == "start"

    def test_identifiers_with_dash(self):
        tokens = list(tokenize("xml-rpc::segment"))
        assert [t.kind for t in tokens[:-1]] == ["IDENT", "DCOLON", "IDENT"]
        assert tokens[0].value == "xml-rpc"

    def test_rule_punctuation(self):
        assert kinds("a : b? c* d+ ;")[:-1] == [
            "IDENT", "COLON", "IDENT", "QMARK", "IDENT", "STAR",
            "IDENT", "PLUS", "SEMI"]

    def test_string_literal(self):
        tokens = list(tokenize('"tennis"'))
        assert tokens[0].kind == "STRING" and tokens[0].value == "tennis"

    def test_numbers(self):
        tokens = list(tokenize("170.0 42 -3"))
        assert [(t.kind, t.value) for t in tokens[:-1]] == [
            ("FLOAT", "170.0"), ("INT", "42"), ("INT", "-3")]

    def test_dot_in_path_vs_float(self):
        tokens = list(tokenize("begin.frameNo"))
        assert [t.kind for t in tokens[:-1]] == ["IDENT", "DOT", "IDENT"]

    def test_comparison_operators(self):
        assert kinds("== != <= >= < >")[:-1] == \
            ["EQ", "NE", "LE", "GE", "LT", "GT"]

    def test_reference_and_quantifier_brackets(self):
        assert kinds("&MMO some[a.b]")[:-1] == [
            "AMP", "IDENT", "IDENT", "LBRACK", "IDENT", "DOT", "IDENT",
            "RBRACK"]

    def test_comments_skipped(self):
        assert kinds("a // comment\nb # more\nc")[:-1] == ["IDENT"] * 3

    def test_positions_tracked(self):
        tokens = list(tokenize("a\n  b"))
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_eof_token_always_present(self):
        assert kinds("")[-1] == "EOF"


class TestErrors:
    def test_bare_percent(self):
        with pytest.raises(GrammarSyntaxError):
            list(tokenize("% start"))

    def test_unterminated_string(self):
        with pytest.raises(GrammarSyntaxError):
            list(tokenize('"oops'))

    def test_unexpected_character(self):
        with pytest.raises(GrammarSyntaxError):
            list(tokenize("a $ b"))

    def test_error_carries_location(self):
        try:
            list(tokenize("ok\n  $"))
        except GrammarSyntaxError as error:
            assert error.line == 2
        else:  # pragma: no cover
            raise AssertionError("expected a syntax error")
