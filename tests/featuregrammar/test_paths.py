"""Tree path resolution: visible region, scoping, quantifier bindings."""

import pytest

from repro.errors import DetectorError
from repro.featuregrammar.ast import TreePath
from repro.featuregrammar.parsetree import NodeKind, ParseNode
from repro.featuregrammar.paths import (resolve_nodes, resolve_value,
                                        resolve_within)


def _atom(name, value):
    return ParseNode(name, NodeKind.ATOM, value=value)


def _var(name, *children):
    node = ParseNode(name, NodeKind.VARIABLE)
    for child in children:
        node.add(child)
    return node


@pytest.fixture
def shot_tree():
    """segment > shot* with begin/end/tennis(frame*/player) structure."""
    def make_shot(begin, end, ys):
        frames = []
        for offset, y in enumerate(ys):
            frames.append(_var(
                "frame", _atom("frameNo", begin + offset),
                _var("player", _atom("xPos", 1.0), _atom("yPos", y))))
        tennis = _var("tennis", *frames, _var("event"))
        return _var("shot",
                    _var("begin", _atom("frameNo", begin)),
                    _var("end", _atom("frameNo", end)),
                    _var("type", tennis))
    return _var("segment",
                make_shot(0, 1, [300.0, 160.0]),
                make_shot(2, 3, [310.0, 305.0]))


class TestVisibleRegion:
    def test_preceding_sibling_found(self, shot_tree):
        shot = shot_tree.children[0]
        tennis = shot.children[2].children[0]
        value = resolve_value(tennis, TreePath.parse("begin.frameNo"))
        assert value == 0

    def test_second_shot_sees_its_own_begin(self, shot_tree):
        shot = shot_tree.children[1]
        tennis = shot.children[2].children[0]
        assert resolve_value(tennis, TreePath.parse("begin.frameNo")) == 2

    def test_ancestor_itself_matches(self, shot_tree):
        shot = shot_tree.children[1]
        event = shot.children[2].children[0].children[-1]
        nodes = resolve_nodes(event, TreePath.parse("tennis.frame"),
                              all_matches=True)
        # only the enclosing shot's frames, never the first shot's
        assert [n.child("frameNo").value for n in nodes] == [2, 3]

    def test_nearest_scope_wins(self, shot_tree):
        shot = shot_tree.children[1]
        end = shot.children[1]
        # from 'end', the nearest 'begin' is this shot's, not shot 1's
        assert resolve_value(end, TreePath.parse("begin.frameNo")) == 2

    def test_missing_path_raises(self, shot_tree):
        shot = shot_tree.children[0]
        with pytest.raises(DetectorError):
            resolve_value(shot, TreePath.parse("nonexistent"))

    def test_non_atomic_target_raises(self, shot_tree):
        event = shot_tree.children[0].children[2].children[0].children[-1]
        with pytest.raises(DetectorError):
            resolve_value(event, TreePath.parse("tennis.frame"))


class TestScopedResolution:
    def test_within_searches_subtree_only(self, shot_tree):
        frame = shot_tree.children[0].children[2].children[0].children[0]
        nodes = resolve_within(frame, TreePath.parse("player.yPos"))
        assert [n.value for n in nodes] == [300.0]

    def test_scoped_value_prefers_own_subtree(self, shot_tree):
        second_frame = \
            shot_tree.children[0].children[2].children[0].children[1]
        value = resolve_value(second_frame, TreePath.parse("player.yPos"),
                              scoped=True)
        assert value == 160.0  # not the preceding frame's 300.0

    def test_own_subtree_fallback_without_scope_flag(self, shot_tree):
        # the root has no ancestors: falls back to its own subtree
        value = resolve_value(shot_tree, TreePath.parse("begin.frameNo"))
        assert value == 0


class TestTreePath:
    def test_parse(self):
        assert TreePath.parse("a.b.c").steps == ("a", "b", "c")

    def test_str_round_trip(self):
        assert str(TreePath.parse("a.b")) == "a.b"

    def test_empty_rejected(self):
        from repro.errors import GrammarSemanticsError
        with pytest.raises(GrammarSemanticsError):
            TreePath(())
