"""The paper's extensibility claim, demonstrated.

"As announced before this grammar is easily extensible.  New multimedia
types can be (and indeed are) added by providing alternative rules for
the mm_type symbol.  Furthermore, if the segment detector would be able
to recognize soccer shots, an alternative type rule could trigger a
whole sequence of soccer specific detectors."

The test appends a soccer branch to the tennis grammar source — new
``type`` alternative, new detectors, new atoms — and shows that mixed
tennis/soccer broadcasts parse, with soccer shots flowing through the
soccer pipeline and tennis shots through the unchanged tennis one.
"""

import pytest

from repro.cobra.grammar import TENNIS_GRAMMAR
from repro.featuregrammar.detectors import DetectorRegistry
from repro.featuregrammar.fde import FDE
from repro.featuregrammar.parser import parse_grammar
from repro.featuregrammar.rpc import RpcServer, default_transports

SOCCER_EXTENSION = """
// --- the soccer extension: only additions, no edits ---
%detector xml-rpc::soccer(location, begin.frameNo, end.frameNo);
%detector goal_chance some[soccer.possession]( duration >= 50 );

%atom int teamId, duration;
%atom bit goal_chance;

type       : "soccer" soccer;
soccer     : possession* soccer_event;
possession : teamId duration;
soccer_event : goal_chance?;
"""

# location -> [(begin, end, type)]
SHOTS = {
    "http://b/mixed.mpg": [
        (0, 49, "tennis"), (50, 99, "soccer"), (100, 119, "audience"),
    ],
}
# per soccer shot: [(teamId, duration frames)]
POSSESSIONS = {
    (50, 99): [(1, 30), (2, 55), (1, 15)],
}
TENNIS_FRAMES = {
    (0, 49): [(0, 320.0, 300.0), (1, 325.0, 160.0)],
}


@pytest.fixture
def extended():
    grammar = parse_grammar(TENNIS_GRAMMAR + SOCCER_EXTENSION)
    server = RpcServer("sports")
    registry = DetectorRegistry(default_transports(server))
    registry.register("header", lambda loc: ["video", "mpeg"])

    def segment(location):
        tokens = []
        for begin, end, kind in SHOTS[location]:
            tokens.extend([begin, end, kind])
        return tokens

    def tennis(location, begin, end):
        tokens = []
        for frame, x, y in TENNIS_FRAMES.get((begin, end), []):
            tokens.extend([frame, x, y, 400, 0.5, 0.1])
        return tokens

    def soccer(location, begin, end):
        tokens = []
        for team, duration in POSSESSIONS.get((begin, end), []):
            tokens.extend([team, duration])
        return tokens

    server.register("segment", segment)
    server.register("tennis", tennis)
    server.register("soccer", soccer)
    registry.remote("xml-rpc", "segment")
    registry.remote("xml-rpc", "tennis")
    registry.remote("xml-rpc", "soccer")
    return grammar, registry


class TestSoccerExtension:
    def test_extended_grammar_parses(self, extended):
        grammar, _ = extended
        assert "soccer" in grammar.detectors
        assert len(grammar.alternatives("type")) == 5  # 4 tennis + soccer

    def test_mixed_broadcast_parses(self, extended):
        grammar, registry = extended
        outcome = FDE(grammar, registry).parse("http://b/mixed.mpg")
        assert outcome.leftover_tokens == 0
        shots = outcome.tree.find_all("shot")
        kinds = [s.child("type").children[0].name for s in shots]
        assert kinds == ["tennis", "soccer", "audience"]

    def test_soccer_pipeline_ran(self, extended):
        grammar, registry = extended
        outcome = FDE(grammar, registry).parse("http://b/mixed.mpg")
        possessions = outcome.tree.find_all("possession")
        assert len(possessions) == 3
        durations = [p.child("duration").leaf_value()
                     for p in possessions]
        assert durations == [30, 55, 15]

    def test_soccer_whitebox_event(self, extended):
        grammar, registry = extended
        outcome = FDE(grammar, registry).parse("http://b/mixed.mpg")
        # one possession lasts >= 50 frames: a goal chance
        chances = [n.value for n in outcome.tree.find_all("goal_chance")]
        assert chances == [True]

    def test_tennis_pipeline_untouched(self, extended):
        grammar, registry = extended
        outcome = FDE(grammar, registry).parse("http://b/mixed.mpg")
        netplays = [n.value for n in outcome.tree.find_all("netplay")]
        assert netplays == [True]  # the y=160 frame

    def test_soccer_detector_only_runs_on_soccer_shots(self, extended):
        grammar, registry = extended
        FDE(grammar, registry).parse("http://b/mixed.mpg")
        assert registry.executions("soccer") == 1
        assert registry.executions("tennis") == 1

    def test_dependency_graph_extends_too(self, extended):
        from repro.featuregrammar.dependency import DependencyGraph
        grammar, _ = extended
        graph = DependencyGraph.from_grammar(grammar)
        assert {"soccer", "possession", "duration"} \
            <= graph.parameters("goal_chance")
        assert graph.upward_detectors("goal_chance") == {"soccer"}
