"""Simulated external detector transports."""

import pytest

from repro.errors import DetectorError
from repro.featuregrammar.detectors import DetectorRegistry
from repro.featuregrammar.rpc import RpcServer, default_transports


class TestRpcServer:
    def test_call_round_trips_through_serialisation(self):
        server = RpcServer()
        server.register("add", lambda a, b: a + b)
        transports = default_transports(server)
        assert transports.get("xml-rpc").call("add", (2, 3)) == 5

    def test_unknown_procedure_raises(self):
        transports = default_transports()
        with pytest.raises(DetectorError):
            transports.get("xml-rpc").call("nope", ())

    def test_unknown_protocol_raises(self):
        transports = default_transports()
        with pytest.raises(DetectorError):
            transports.get("soap")

    def test_all_paper_protocols_bound(self):
        transports = default_transports()
        for protocol in ("xml-rpc", "system", "corba"):
            assert protocol in transports

    def test_unserialisable_arguments_raise(self):
        server = RpcServer()
        server.register("id", lambda x: x)
        transports = default_transports(server)
        with pytest.raises(DetectorError):
            transports.get("xml-rpc").call("id", (object(),))

    def test_marshalling_flattens_types(self):
        # tuples cross the boundary as lists: a real serialisation effect
        server = RpcServer()
        server.register("echo", lambda x: x)
        transports = default_transports(server)
        assert transports.get("corba").call("echo", ((1, 2),)) == [1, 2]

    def test_byte_accounting(self):
        server = RpcServer()
        server.register("echo", lambda x: x)
        transport = default_transports(server).get("xml-rpc")
        transport.call("echo", ("payload",))
        assert transport.bytes_sent > 0
        assert transport.bytes_received > 0
        assert server.calls == 1

    def test_malformed_call_payload_raises_detector_error(self):
        server = RpcServer(name="far-host")
        server.register("echo", lambda x: x)
        with pytest.raises(DetectorError) as excinfo:
            server.invoke("echo", "{not json")
        assert "far-host" in str(excinfo.value)
        assert "echo" in str(excinfo.value)

    def test_malformed_response_raises_detector_error_naming_server(self):
        class GarblingServer(RpcServer):
            def invoke(self, name, payload):
                return "<<binary garbage>>"

        server = GarblingServer(name="far-host")
        transport = default_transports(server).get("corba")
        with pytest.raises(DetectorError) as excinfo:
            transport.call("echo", (1,))
        message = str(excinfo.value)
        assert "far-host" in message
        assert "corba::echo" in message

    def test_calls_and_bytes_land_in_telemetry(self):
        from repro.telemetry import telemetry_session

        server = RpcServer()
        server.register("echo", lambda x: x)
        transport = default_transports(server).get("xml-rpc")
        with telemetry_session() as telemetry:
            transport.call("echo", ("payload",))
            counters = telemetry.metrics.snapshot()["counters"]
        assert counters["rpc.calls{protocol=xml-rpc}"] == 1
        assert counters["rpc.bytes_sent{protocol=xml-rpc}"] \
            == transport.bytes_sent
        assert counters["rpc.bytes_received{protocol=xml-rpc}"] \
            == transport.bytes_received

    def test_marshalling_failure_counts_as_rpc_error(self):
        from repro.telemetry import telemetry_session

        server = RpcServer()
        server.register("id", lambda x: x)
        transport = default_transports(server).get("system")
        with telemetry_session() as telemetry:
            with pytest.raises(DetectorError):
                transport.call("id", (object(),))
            counters = telemetry.metrics.snapshot()["counters"]
        assert counters["rpc.errors{protocol=system}"] == 1


class TestRegistryIntegration:
    def test_remote_detector_counts_executions(self):
        server = RpcServer()
        server.register("double", lambda x: x * 2)
        registry = DetectorRegistry(default_transports(server))
        registry.remote("xml-rpc", "double")
        assert registry.execute("double", (21,)) == 42
        assert registry.executions("double") == 1

    def test_remote_failure_becomes_detector_error(self):
        server = RpcServer()

        def broken(x):
            raise RuntimeError("remote crash")

        server.register("broken", broken)
        registry = DetectorRegistry(default_transports(server))
        registry.remote("xml-rpc", "broken")
        with pytest.raises(DetectorError):
            registry.execute("broken", (1,))

    def test_local_and_remote_coexist(self):
        server = RpcServer()
        server.register("remote_fn", lambda: "far")
        registry = DetectorRegistry(default_transports(server))
        registry.register("local_fn", lambda: "near")
        registry.remote("system", "remote_fn")
        assert registry.execute("local_fn", ()) == "near"
        assert registry.execute("remote_fn", ()) == "far"
