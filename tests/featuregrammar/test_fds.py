"""The Feature Detector Scheduler: incremental maintenance."""

import pytest

from repro.errors import SchedulerError
from repro.featuregrammar.fds import FDS, Priority
from repro.featuregrammar.versions import ChangeLevel

from tests.featuregrammar.conftest import StubWorld, build_registry


@pytest.fixture
def fds(fde, world):
    fds = FDS(fde)
    fds.add_object("http://site/match.mpg", "http://site/match.mpg")
    fds.add_object("http://site/photo.jpg", "http://site/photo.jpg")
    return fds


class TestPopulation:
    def test_trees_stored(self, fds):
        assert len(fds) == 2
        assert fds.tree("http://site/match.mpg").name == "MMO"

    def test_unknown_key_raises(self, fds):
        with pytest.raises(SchedulerError):
            fds.tree("http://nowhere")

    def test_keys(self, fds):
        assert set(fds.keys()) == {"http://site/match.mpg",
                                   "http://site/photo.jpg"}


class TestChangeClassification:
    def test_correction_takes_no_action(self, fds, registry):
        registry.set_version("segment", "1.0.1")
        level = fds.notify_detector_change("segment")
        assert level == ChangeLevel.CORRECTION
        assert fds.pending() == 0

    def test_minor_schedules_low_priority(self, fds, registry):
        registry.set_version("segment", "1.1.0")
        level = fds.notify_detector_change("segment")
        assert level == ChangeLevel.MINOR
        assert fds.pending() == 1  # only the video tree has segment nodes

    def test_major_schedules_high_priority(self, fds, registry):
        registry.set_version("segment", "2.0.0")
        assert fds.notify_detector_change("segment") == ChangeLevel.MAJOR
        registry.set_version("header", "1.1.0")
        fds.notify_detector_change("header")
        # queue drains majors (HIGH) before minors (LOW)
        task = fds._queue[0]
        assert task.priority == Priority.HIGH
        assert task.detector == "segment"

    def test_unknown_detector_rejected(self, fds):
        with pytest.raises(SchedulerError):
            fds.notify_detector_change("not_a_detector")

    def test_unchanged_version_is_none(self, fds):
        assert fds.notify_detector_change("segment") == ChangeLevel.NONE


class TestIncrementalMaintenance:
    def test_localized_rerun(self, fds, registry, world):
        """Changing segment re-runs analysis for videos only, and the
        header detector is never re-executed."""
        world.shots["http://site/match.mpg"] = [
            (0, 5, "tennis", [300.0, 280.0, 250.0, 200.0, 165.0, 150.0]),
        ]
        registry.set_version("segment", "1.1.0")
        fds.notify_detector_change("segment")
        registry.reset_executions()
        report = fds.run()
        assert report.tasks_processed >= 1
        assert registry.executions("header") == 0
        tree = fds.tree("http://site/match.mpg")
        shots = tree.find_all("shot")
        assert len(shots) == 1
        assert [n.value for n in tree.find_all("netplay")] == [True]

    def test_whitebox_revalidation_cascade(self, fds, registry, world):
        """A tennis revision that moves the player to the net makes the
        netplay whitebox true without re-running segment."""
        # shot 2 (frames 5-7) now approaches the net
        world.shots["http://site/match.mpg"][2] = \
            (5, 7, "tennis", [300.0, 200.0, 100.0])
        registry.set_version("tennis", "1.1.0")
        fds.notify_detector_change("tennis")
        registry.reset_executions()
        fds.run()
        assert registry.executions("segment") == 0
        tree = fds.tree("http://site/match.mpg")
        netplays = [n.value for n in tree.find_all("netplay")]
        assert netplays == [True, True]

    def test_full_rebuild_costs_more(self, fds, registry, world):
        registry.set_version("tennis", "1.2.0")
        fds.notify_detector_change("tennis")
        registry.reset_executions()
        fds.run()
        incremental = registry.executions()
        registry.reset_executions()
        fds.rebuild_all()
        full = registry.executions()
        assert incremental < full

    def test_untouched_objects_stay_untouched(self, fds, registry):
        photo_before = fds.tree("http://site/photo.jpg")
        registry.set_version("segment", "1.3.0")
        fds.notify_detector_change("segment")
        fds.run()
        assert fds.tree("http://site/photo.jpg") is photo_before


class TestSourceChanges:
    def test_source_change_triggers_regeneration(self, grammar):
        world = StubWorld()
        world.add_video("http://s/v.mpg", [(0, 1, "tennis", [300.0, 160.0])])
        registry = build_registry(world)
        from repro.featuregrammar.fde import FDE
        stamps = {"http://s/v.mpg": 1}
        fds = FDS(FDE(grammar, registry),
                  source_stamp=lambda key: stamps[key])
        fds.add_object("http://s/v.mpg", "http://s/v.mpg")

        assert fds.notify_source_change("http://s/v.mpg") is False
        stamps["http://s/v.mpg"] = 2
        world.shots["http://s/v.mpg"] = [(0, 2, "other", [])]
        assert fds.notify_source_change("http://s/v.mpg") is True
        report = fds.run()
        assert report.trees_regenerated == 1
        tree = fds.tree("http://s/v.mpg")
        types = [s.child("type").children[0].name
                 for s in tree.find_all("shot")]
        assert types == ["other"]

    def test_check_all_sources(self, grammar):
        world = StubWorld()
        world.add_video("http://s/a.mpg", [(0, 1, "tennis", [300.0, 300.0])])
        world.add_video("http://s/b.mpg", [(0, 1, "other", [])])
        registry = build_registry(world)
        from repro.featuregrammar.fde import FDE
        stamps = {"http://s/a.mpg": 1, "http://s/b.mpg": 1}
        fds = FDS(FDE(grammar, registry),
                  source_stamp=lambda key: stamps[key])
        fds.add_object("http://s/a.mpg", "http://s/a.mpg")
        fds.add_object("http://s/b.mpg", "http://s/b.mpg")
        stamps["http://s/b.mpg"] = 7
        assert fds.check_all_sources() == 1

    def test_source_check_without_stamp_function(self, fds):
        assert fds.notify_source_change("http://site/match.mpg") is False


class TestVersionBaselineOrdering:
    """Regression: ``add_object`` used to overwrite ``_known_versions``
    for *every* detector, so a version bump that happened between an
    add and its ``notify_detector_change`` was silently absorbed and
    the stale trees were never scheduled for revalidation."""

    def test_bump_then_add_then_notify_still_schedules(self, fds,
                                                       registry, world):
        # 1. bump the detector (no notification yet)
        registry.set_version("segment", "1.1.0")
        # 2. a new object arrives before anyone calls notify
        world.add_video("http://site/late.mpg",
                        [(0, 2, "tennis", [300.0, 250.0, 160.0])])
        fds.add_object("http://site/late.mpg", "http://site/late.mpg")
        # 3. the notification must classify against the *old* baseline
        level = fds.notify_detector_change("segment")
        assert level == ChangeLevel.MINOR
        assert fds.pending() >= 1

    def test_add_object_baselines_new_detectors_only(self, fds, registry,
                                                     world):
        known = fds.known_versions()
        registry.set_version("segment", "1.1.0")
        world.add_video("http://site/more.mpg",
                        [(0, 2, "tennis", [300.0, 250.0, 160.0])])
        fds.add_object("http://site/more.mpg", "http://site/more.mpg")
        # the tracked version is still the pre-bump baseline
        assert fds.known_versions()["segment"] == known["segment"]

    def test_notify_after_absorbing_sequence_revalidates_old_trees(
            self, fds, registry, world):
        registry.set_version("segment", "2.0.0")
        world.add_video("http://site/late.mpg",
                        [(0, 2, "tennis", [300.0, 250.0, 160.0])])
        fds.add_object("http://site/late.mpg", "http://site/late.mpg")
        assert fds.notify_detector_change("segment") == ChangeLevel.MAJOR
        report = fds.run()
        assert report.tasks_processed >= 1
