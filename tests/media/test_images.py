"""Photo/graphic classifier and portrait detector."""

import pytest

from repro.media.images import (classify_photo_graphic, detect_portrait,
                                distinct_colors, make_graphic, make_photo,
                                make_portrait, smoothness)


class TestGenerators:
    def test_shapes(self):
        image = make_portrait("http://x/p.jpg", size=(40, 30))
        assert image.pixels.shape == (40, 30, 3)

    def test_deterministic(self):
        import numpy as np
        first = make_photo("http://x/a.jpg", seed=4)
        second = make_photo("http://x/a.jpg", seed=4)
        assert np.array_equal(first.pixels, second.pixels)

    def test_kinds(self):
        assert make_portrait("u").kind == "portrait"
        assert make_photo("u").kind == "photo"
        assert make_graphic("u").kind == "graphic"
        assert make_portrait("u").is_portrait
        assert not make_photo("u").is_portrait


class TestPhotoGraphicClassifier:
    @pytest.mark.parametrize("seed", range(8))
    def test_photos_classified_photo(self, seed):
        image = make_photo("u", seed=seed)
        assert classify_photo_graphic(image.pixels) == "photo"

    @pytest.mark.parametrize("seed", range(8))
    def test_graphics_classified_graphic(self, seed):
        image = make_graphic("u", seed=seed)
        assert classify_photo_graphic(image.pixels) == "graphic"

    @pytest.mark.parametrize("seed", range(8))
    def test_portraits_are_photographs(self, seed):
        image = make_portrait("u", seed=seed)
        assert classify_photo_graphic(image.pixels) == "photo"

    def test_signal_separation(self):
        photo = make_photo("u", seed=0).pixels
        graphic = make_graphic("u", seed=0).pixels
        assert distinct_colors(photo) > distinct_colors(graphic)
        assert smoothness(graphic) >= 0.0


class TestPortraitDetector:
    @pytest.mark.parametrize("seed", range(8))
    def test_portraits_detected(self, seed):
        assert detect_portrait(make_portrait("u", seed=seed).pixels)

    @pytest.mark.parametrize("seed", range(8))
    def test_plain_photos_rejected(self, seed):
        assert not detect_portrait(make_photo("u", seed=seed).pixels)

    @pytest.mark.parametrize("seed", range(8))
    def test_graphics_rejected(self, seed):
        assert not detect_portrait(make_graphic("u", seed=seed).pixels)
