"""Trigram language identification."""

import pytest

from repro.media.language import SUPPORTED_LANGUAGES, LanguageDetector

SAMPLES = {
    "en": "The defending champion played a wonderful match on the centre "
          "court and the crowd cheered when she approached the net to "
          "volley the winning point of the tournament",
    "nl": "De titelverdedigster speelde een prachtige wedstrijd op het "
          "centrale veld en het publiek juichte toen zij naar het net "
          "liep om het winnende punt van het toernooi te slaan",
    "fr": "La championne en titre a joué un match magnifique sur le court "
          "central et le public a applaudi quand elle s'est approchée du "
          "filet pour marquer le point gagnant du tournoi",
}


@pytest.fixture(scope="module")
def detector():
    return LanguageDetector()


class TestDetection:
    @pytest.mark.parametrize("language", sorted(SAMPLES))
    def test_each_language_recognised(self, detector, language):
        assert detector.detect(SAMPLES[language]) == language

    def test_scores_cover_all_languages(self, detector):
        scores = detector.scores(SAMPLES["en"])
        assert set(scores) == set(SUPPORTED_LANGUAGES)
        assert scores["en"] > scores["fr"]
        assert scores["en"] > scores["nl"]

    def test_empty_text_returns_some_language(self, detector):
        assert detector.detect("") in SUPPORTED_LANGUAGES

    def test_case_insensitive(self, detector):
        assert detector.detect(SAMPLES["en"].upper()) == "en"

    def test_custom_corpora(self):
        detector = LanguageDetector({"xx": "zzz zzz zzz", "yy": "qqq qqq"})
        assert detector.detect("zzz zzz") == "xx"
