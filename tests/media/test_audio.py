"""Synthetic audio, classification and speaker-turn segmentation."""

import numpy as np
import pytest

from repro.errors import VideoError
from repro.media.audio import (SAMPLE_RATE, classify_audio, frame_features,
                               harmonicity, make_interview, make_jingle,
                               pause_ratio, segment_speakers,
                               spectral_flatness)


@pytest.fixture(scope="module")
def interview():
    return make_interview("http://x/iv.wav", turns=6, seed=5)


@pytest.fixture(scope="module")
def jingle():
    return make_jingle("http://x/jg.wav", seed=5)


class TestSynthesis:
    def test_waveform_shape(self, interview):
        assert interview.samples.ndim == 1
        assert interview.duration > 5.0

    def test_deterministic(self):
        first = make_interview("u", turns=3, seed=9)
        second = make_interview("u", turns=3, seed=9)
        assert np.array_equal(first.samples, second.samples)

    def test_ground_truth_alternates_speakers(self, interview):
        speakers = [speaker for _, _, speaker in interview.truth.turns]
        assert speakers == [0, 1, 0, 1, 0, 1]

    def test_zero_turns_rejected(self):
        with pytest.raises(VideoError):
            make_interview("u", turns=0)


class TestFeatures:
    def test_frame_features_shapes(self, interview):
        features = frame_features(interview.samples)
        frames = len(interview.samples) // 400
        assert features["energy"].shape == (frames,)
        assert features["centroid"].shape == (frames,)

    def test_too_short_rejected(self):
        with pytest.raises(VideoError):
            frame_features(np.zeros(10))

    def test_speech_has_pauses_music_does_not(self, interview, jingle):
        assert pause_ratio(interview.samples) > 0.05
        assert pause_ratio(jingle.samples) < 0.02

    def test_music_is_harmonic(self, interview, jingle):
        assert harmonicity(jingle.samples) > harmonicity(interview.samples)

    def test_flatness_in_unit_range(self, interview):
        flatness = spectral_flatness(interview.samples)
        assert 0.0 <= flatness <= 1.0


class TestClassification:
    @pytest.mark.parametrize("seed", range(5))
    def test_interviews_are_speech(self, seed):
        audio = make_interview("u", turns=4, seed=seed)
        assert classify_audio(audio.samples) == "speech"

    @pytest.mark.parametrize("seed", range(5))
    def test_jingles_are_music(self, seed):
        audio = make_jingle("u", seed=seed)
        assert classify_audio(audio.samples) == "music"


class TestSpeakerSegmentation:
    def test_turn_count_matches_truth(self, interview):
        turns = segment_speakers(interview.samples)
        assert len(turns) == len(interview.truth.turns)

    def test_speaker_sequence_matches_truth(self, interview):
        turns = segment_speakers(interview.samples)
        assert [turn.speaker for turn in turns] \
            == [speaker for _, _, speaker in interview.truth.turns]

    def test_boundaries_within_a_frame(self, interview):
        turns = segment_speakers(interview.samples)
        for found, (start, end, _) in zip(turns, interview.truth.turns):
            assert abs(found.start - start) <= 0.1
            assert abs(found.end - end) <= 0.1

    @pytest.mark.parametrize("seed", range(4))
    def test_robust_across_seeds(self, seed):
        audio = make_interview("u", turns=5, seed=seed + 20)
        turns = segment_speakers(audio.samples)
        assert [turn.speaker for turn in turns] \
            == [speaker for _, _, speaker in audio.truth.turns]


class TestGrammarIntegration:
    def test_interview_parses_through_the_grammar(self):
        from repro.cobra import (VideoLibrary, build_tennis_grammar,
                                 build_tennis_registry)
        from repro.featuregrammar import FDE

        library = VideoLibrary()
        audio = make_interview("http://x/iv.wav", turns=4, seed=2)
        library.add(audio, mime=("audio", "wav"))
        fde = FDE(build_tennis_grammar(), build_tennis_registry(library))
        outcome = fde.parse(audio.location)
        assert outcome.leftover_tokens == 0
        kinds = outcome.tree.find_all("audio_kind")
        assert kinds[0].children[0].name == "speech"
        assert len(outcome.tree.find_all("turn")) == 4

    def test_jingle_has_no_turns(self):
        from repro.cobra import (VideoLibrary, build_tennis_grammar,
                                 build_tennis_registry)
        from repro.featuregrammar import FDE

        library = VideoLibrary()
        audio = make_jingle("http://x/jg.wav", seed=2)
        library.add(audio, mime=("audio", "wav"))
        fde = FDE(build_tennis_grammar(), build_tennis_registry(library))
        outcome = fde.parse(audio.location)
        kinds = outcome.tree.find_all("audio_kind")
        assert kinds[0].children[0].name == "music"
        assert outcome.tree.find_all("turn") == []


class TestEngineIntegration:
    @pytest.fixture(scope="class")
    def engine(self):
        from repro.core import EngineConfig, SearchEngine
        from repro.web import build_ausopen_site
        from repro.webspace import australian_open_schema

        server, truth = build_ausopen_site(players=10, articles=4,
                                           videos=2, frames_per_shot=6)
        engine = SearchEngine(australian_open_schema(), server,
                              EngineConfig())
        engine.populate()
        return engine, truth

    def test_interviews_analysed(self, engine):
        search, truth = engine
        interviews = sum(1 for p in truth.players if p.interview_path)
        report_like = search.stats()
        assert interviews > 0
        assert search.stats()["videos"] == len(truth.videos) + interviews

    def test_audio_event_query(self, engine):
        search, truth = engine
        result = search.query(
            search.new_query()
            .from_class("p", "Player")
            .audio_event("p.interview", "speech")
            .select("p.name")
            .top(20))
        champions = {p.name for p in truth.players if p.is_champion}
        assert set(result.column("p.name")) == champions

    def test_turns_attached_to_rows(self, engine):
        search, _ = engine
        result = search.query(
            search.new_query()
            .from_class("p", "Player")
            .audio_event("p.interview", "speech")
            .select("p.name"))
        for row in result:
            assert row.turns["p"]
            speakers = {turn.speaker for turn in row.turns["p"]}
            assert speakers == {0, 1}  # interviewer and player

    def test_music_kind_matches_nothing(self, engine):
        search, _ = engine
        result = search.query(
            search.new_query()
            .from_class("p", "Player")
            .audio_event("p.interview", "music")
            .select("p.name"))
        assert len(result) == 0

    def test_audio_event_validates_type(self, engine):
        search, _ = engine
        from repro.errors import QueryError
        with pytest.raises(QueryError):
            search.new_query().from_class("p", "Player") \
                .audio_event("p.history", "speech")
        with pytest.raises(QueryError):
            search.new_query().from_class("p", "Player") \
                .audio_event("p.interview", "podcast")
