"""E13: the Internet-scale engine and the future-work portrait query."""

import pytest

from repro.media.internet import InternetSearchEngine
from repro.web.ausopen import build_ausopen_site


@pytest.fixture(scope="module")
def engine():
    server, truth = build_ausopen_site(players=10, articles=8, videos=3,
                                       frames_per_shot=6)
    engine = InternetSearchEngine(server)
    engine.populate()
    return engine, server, truth


class TestPopulation:
    def test_reference_crawl_reaches_everything(self, engine):
        search, server, _ = engine
        report = search.populate.__self__  # same engine; check stores
        assert len(search.meta_store) > 0
        # every HTML page and every image/video linked from one
        assert len(search.meta_store) == len(server)

    def test_pages_indexed_for_text(self, engine):
        search, _, truth = engine
        ranked = search.search_pages("tennis", n=50, expand=False)
        assert ranked  # articles mention tennis

    def test_parse_trees_stored_in_meta_index(self, engine):
        search, server, _ = engine
        index_url = server.absolute("index.html")
        tree = search.meta_store.reconstruct(index_url)
        assert tree.tag == "MMO"


class TestPortraitQuery:
    def test_portraits_about_champion(self, engine):
        """Fig 14's headline: portraits embedded in pages containing
        keywords semantically related to 'champion'."""
        search, server, truth = engine
        hits = search.portraits_about("champion", n=20)
        assert hits
        champion_pictures = {
            server.absolute(player.picture_path)
            for player in truth.players if player.is_champion}
        assert {hit.image_url for hit in hits} <= champion_pictures
        # Monica Seles is a champion with a portrait: she must be found
        seles = server.absolute("img/monica-seles.jpg")
        assert seles in {hit.image_url for hit in hits}

    def test_thesaurus_expansion_broadens_recall(self, engine):
        search, _, _ = engine
        # champion histories say "Winner", never the literal "champion"
        # word outside titles; expansion must find them anyway
        raw = search.search_pages("titleholder", n=20, expand=False)
        expanded = search.search_pages("titleholder", n=20, expand=True)
        assert len(expanded) >= len(raw)

    def test_non_portrait_images_never_reported(self, engine):
        search, server, _ = engine
        logo = server.absolute("img/logo.gif")
        hits = search.portraits_about("open", n=50)
        assert logo not in {hit.image_url for hit in hits}

    def test_is_portrait_predicate(self, engine):
        search, server, truth = engine
        assert search.is_portrait(
            server.absolute(truth.players[0].picture_path))
        assert not search.is_portrait(server.absolute("img/logo.gif"))
        assert not search.is_portrait("http://elsewhere/none.jpg")

    def test_page_language_detected(self, engine):
        search, server, truth = engine
        profile = server.absolute(truth.players[0].page_path)
        assert search.page_language(profile) == "en"
